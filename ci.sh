#!/bin/sh
# Local mirror of .github/workflows/ci.yml for machines without Actions.
# The workspace has no external crate dependencies, so everything runs
# with the network off.
set -eux

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings

# API docs must build clean: broken intra-doc links and malformed
# doc blocks are errors, not noise.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

# Tier-1: the root package must build in release and pass its tests.
cargo build --release --offline
cargo test -q --offline

# The full workspace (core, gridsim, scufl, wrapper, xmlish, analysis,
# registration, bench).
cargo test --workspace --offline

# Static analysis over the bundled example workflows: errors AND
# warnings fail the build (notes — e.g. grouping advice — are fine).
# `plan` runs the same lint pass plus the cardinality/transfer planner,
# so every example must also produce a clean partition report.
for wf in examples/workflows/*.xml; do
  cargo run --offline --quiet --bin moteur -- lint "$wf" --deny-warnings
  cargo run --offline --quiet --bin moteur -- plan "$wf" --deny-warnings
done

# Perf observatory: sweep the six Table-1 configurations on the ideal
# grid (deterministic, seconds of wall-clock) and gate the result
# against the committed baseline. Fails on >10% makespan regression,
# lost speed-up, or model-vs-observed drift beyond 5%. After an
# intentional perf change, refresh the baseline with
#   MOTEUR_BENCH_UPDATE_BASELINE=1 ./ci.sh
# (or run `moteur-bench gate` directly) and commit the new
# results/BENCH_baseline.json.
cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  campaign --sweep ndata=1..6 --out-dir .

# Fault injection: the campaign on an unreliable egee-2006 (middleware
# retries off, >=4% failure probability) under naive / backoff /
# timeout+replication. Fails unless timeout+replication beats naive on
# mean makespan and nothing is quarantined; writes BENCH_faults.json,
# which the gate below re-checks alongside the baseline comparison.
cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  faults --out-dir .

# Grid telemetry: the campaign with the timeline pipeline attached, in
# the ideal (byte-accounting) and queue-saturated regimes. Fails unless
# the timeline's per-link byte totals reconcile with the enactor and
# the loaded regime is attributed to the CE queues; writes
# BENCH_timeline.json, re-checked by the gate below.
cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  timeline --out-dir .

# Static planner vs observed staging: every per-edge byte interval from
# `moteur plan` must contain the bytes the enactor actually bound onto
# that (consumer, port), and the greedy site partition must beat
# centralized routing on the data-heavy bronze variant. Writes
# BENCH_plan.json, re-checked by the gate below.
cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  plan --out-dir .

# Scale campaign: a million gridsim events plus ten thousand enactor
# jobs with the self-profiler attached (release build — the point is
# hot-path throughput). Writes BENCH_scale.json; the gate re-checks the
# event/job targets, the allocation budget, and the deterministic
# allocation axes (allocs/event, peak live bytes) against the committed
# results/BENCH_scale_baseline.json at the 10% threshold.
cargo run --release --offline --quiet -p moteur-bench --bin moteur-bench -- \
  scale --out-dir .

# Streaming campaign: a million-item stream through a bounded-port
# chain (release build — the point is throughput and the memory
# high-water mark). Fails unless every item completes and the
# pipeline's peak live bytes beyond the materialised inputs stay inside
# the absolute budget while undercutting the eager per-item projection
# by >=4x; writes BENCH_stream.json, re-checked by the gate below.
cargo run --release --offline --quiet -p moteur-bench --bin moteur-bench -- \
  stream --out-dir .

# Multi-tenant daemon: a 100-submission wave across four tenants of
# one enactment daemon sharing a memo table. Fails unless every
# submission succeeds and the wave reuses >=90% of the seed tenant's
# derivations; writes BENCH_daemon.json, re-checked by the gate below
# (completion, cross-tenant hit ratio, bounded p99 time-to-first-job).
cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  daemon --out-dir .

# The protocol self-test round-trips every moteur/daemon/v1 message
# type through render + parse.
cargo run --offline --quiet --bin moteur -- daemon --check-protocol

cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  gate --faults BENCH_faults.json --timeline BENCH_timeline.json \
  --plan BENCH_plan.json --scale BENCH_scale.json --daemon BENCH_daemon.json \
  --stream BENCH_stream.json

# Data manager: cold/warm pair on the deterministic chain. Fails if the
# cold run drifts from eq. 1-4 or any warm invocation misses the cache;
# writes BENCH_warm.json.
cargo run --offline --quiet -p moteur-bench --bin moteur-bench -- \
  warm --ndata 6 --out-dir .

# Graceful degradation end-to-end: a run whose timeout budget is
# unsatisfiable must quarantine (not abort), emit a workflow report
# naming the lost items, and exit non-zero.
cargo run --offline --quiet --bin moteur -- example
if cargo run --offline --quiet --bin moteur -- \
    run bronze-standard.xml inputs-12.xml --config sp+dp \
    --timeout 40 --max-retries 0 --continue-on-error \
    --workflow-report degraded-report.json; then
  echo "continue-on-error run should exit non-zero" >&2
  exit 1
fi
grep -q '"ok":false' degraded-report.json
grep -q '"descendants"' degraded-report.json
rm -f bronze-standard.xml inputs-12.xml degraded-report.json
