#!/bin/sh
# Local mirror of .github/workflows/ci.yml for machines without Actions.
# The workspace has no external crate dependencies, so everything runs
# with the network off.
set -eux

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings

# Tier-1: the root package must build in release and pass its tests.
cargo build --release --offline
cargo test -q --offline

# The full workspace (core, gridsim, scufl, wrapper, xmlish, analysis,
# registration, bench).
cargo test --workspace --offline

# Static analysis over the bundled example workflows: errors AND
# warnings fail the build (notes — e.g. grouping advice — are fine).
for wf in examples/workflows/*.xml; do
  cargo run --offline --quiet --bin moteur -- lint "$wf" --deny-warnings
done
