//! Integration tests of the grid model's realism features: queue
//! disciplines, maintenance downtime, diurnal background load, and
//! global invariants checked property-style across random workloads.

use moteur_gridsim::config::{Downtime, QueueDiscipline};
use moteur_gridsim::{
    CeConfig, Distribution, GridConfig, GridJobSpec, GridSim, JobOutcome, NetworkConfig,
};

fn base_config() -> GridConfig {
    GridConfig {
        ces: vec![CeConfig::new("ce", 2, 1.0)],
        submission_overhead: Distribution::Constant(10.0),
        match_delay: Distribution::Constant(5.0),
        notify_delay: Distribution::Constant(1.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig {
            transfer_latency: 0.0,
            bandwidth: f64::INFINITY,
            congestion: 0.0,
        },
        typical_job_duration: 100.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

#[test]
fn user_priority_discipline_jumps_the_background_queue() {
    let run = |discipline: QueueDiscipline| -> f64 {
        let mut cfg = base_config();
        cfg.ces[0].slots = 1;
        cfg.ces[0].discipline = discipline;
        cfg.ces[0].initial_backlog = 5;
        cfg.ces[0].background_duration = Distribution::Constant(500.0);
        let mut sim = GridSim::new(cfg, 1);
        sim.submit(GridJobSpec::new("user", 50.0));
        sim.next_completion()
            .expect("completes")
            .delivered_at
            .as_secs_f64()
    };
    let fifo = run(QueueDiscipline::Fifo);
    let prio = run(QueueDiscipline::UserPriority);
    // FIFO waits behind 4 queued background jobs (one is already
    // running when the user job arrives); priority waits only for the
    // running one.
    assert!(fifo > prio + 1000.0, "fifo {fifo} vs priority {prio}");
    assert!(
        prio < 1100.0,
        "priority job waits at most one background job: {prio}"
    );
}

#[test]
fn downtime_windows_delay_dispatch_but_not_running_jobs() {
    let mut cfg = base_config();
    cfg.ces[0].downtime = Some(Downtime {
        period: 30.0,
        duration: 1000.0,
    });
    let mut sim = GridSim::new(cfg, 1);
    // Enqueued at t=15 (before the t=30 window), runs to completion at
    // t=35 even though the window opens mid-run: graceful drain.
    sim.submit(GridJobSpec::new("early", 20.0));
    let first = sim.next_completion().unwrap();
    assert!(
        first.delivered_at.as_secs_f64() < 40.0,
        "{}",
        first.delivered_at
    );
    // Next job enqueues at ~51, inside the [30, 1030) window.
    sim.submit(GridJobSpec::new("blocked", 20.0));
    let second = sim.next_completion().unwrap();
    assert!(
        second.record.started_at.as_secs_f64() >= 1030.0,
        "job must wait for CeUp at t=1030: started {}",
        second.record.started_at
    );
}

#[test]
fn diurnal_amplitude_modulates_background_pressure() {
    // Count background arrivals over the first half-day (where the
    // sin modulation raises the rate): amplitude > 0 must produce
    // more arrivals than the flat rate.
    let run = |amplitude: f64| -> u64 {
        let mut cfg = base_config();
        cfg.ces[0].slots = 64; // plenty of room, we only count arrivals
        cfg.ces[0].background_interarrival = Some(Distribution::Exponential { mean: 120.0 });
        cfg.ces[0].background_duration = Distribution::Constant(10.0);
        cfg.ces[0].diurnal_amplitude = amplitude;
        let mut sim = GridSim::new(cfg, 7);
        // A half-day-long user job keeps the clock advancing.
        sim.submit(GridJobSpec::new("anchor", 43_200.0));
        sim.next_completion().expect("anchor completes");
        sim.background_arrivals()
    };
    let flat = run(0.0);
    let diurnal = run(0.9);
    assert!(
        diurnal as f64 > flat as f64 * 1.15,
        "rising-phase diurnal load must add arrivals: flat {flat}, diurnal {diurnal}"
    );
}

/// Simulator invariants over seeded pseudo-random workloads: timestamps
/// are monotone per record and every submitted job is delivered exactly
/// once. Deterministic sweep (no external property-testing dependency:
/// the workspace builds offline).
#[test]
fn invariants_hold_over_random_workloads() {
    for case in 0u64..16 {
        // Derive a varied (seed, n_jobs, compute) triple per case.
        let seed = case * 31 + 7;
        let n_jobs = 1 + (case as usize * 13) % 39;
        let compute = 1.0 + (case as f64 * 37.3) % 499.0;
        let mut sim = GridSim::new(GridConfig::egee_2006(), seed);
        for i in 0..n_jobs {
            sim.submit(
                GridJobSpec::new(format!("j{i}"), compute)
                    .with_files(vec![1_000_000], vec![10_000])
                    .with_tag(i as u64),
            );
        }
        let mut seen = std::collections::HashSet::new();
        let mut delivered = 0;
        while let Some(c) = sim.next_completion() {
            delivered += 1;
            assert!(seen.insert(c.tag), "tag {} delivered twice", c.tag);
            let r = &c.record;
            assert!(r.submitted_at <= r.matched_at);
            assert!(r.matched_at <= r.enqueued_at);
            assert!(r.enqueued_at <= r.started_at);
            assert!(r.started_at <= r.finished_at);
            assert!(r.finished_at <= r.delivered_at);
            assert!(r.attempts >= 1);
            if c.outcome == JobOutcome::Success {
                assert!(r.compute.as_secs_f64() > 0.0);
            }
        }
        assert_eq!(delivered, n_jobs, "case {case}");
        assert_eq!(sim.outstanding(), 0, "case {case}");
    }
}

/// The overhead decomposition is consistent: turnaround equals overhead
/// plus compute.
#[test]
fn overhead_decomposition() {
    for seed in 0u64..16 {
        let mut sim = GridSim::new(GridConfig::egee_2006(), seed);
        for i in 0..5 {
            sim.submit(GridJobSpec::new(format!("j{i}"), 100.0));
        }
        while let Some(c) = sim.next_completion() {
            let r = &c.record;
            let reconstructed = r.overhead().as_secs_f64() + r.compute.as_secs_f64();
            assert!(
                (r.turnaround().as_secs_f64() - reconstructed).abs() < 1e-6,
                "turnaround {} != overhead {} + compute {}",
                r.turnaround(),
                r.overhead(),
                r.compute
            );
        }
    }
}

/// An installed observer sees every job's lifecycle in causal order and
/// exactly one terminal `JobDelivered` per tag, and observation does not
/// perturb the simulation.
#[test]
fn observer_sees_ordered_lifecycle_per_job() {
    use moteur_gridsim::SimEvent;
    use std::cell::RefCell;
    use std::rc::Rc;

    let run = |observe: bool| -> (Vec<SimEvent>, Vec<f64>) {
        let mut cfg = GridConfig::egee_2006();
        cfg.max_retries = 2;
        let mut sim = GridSim::new(cfg, 11);
        let events: Rc<RefCell<Vec<SimEvent>>> = Rc::default();
        if observe {
            let sink = Rc::clone(&events);
            sim.set_observer(Box::new(move |e| sink.borrow_mut().push(e.clone())));
        }
        for i in 0..8 {
            sim.submit(GridJobSpec::new(format!("j{i}"), 120.0).with_tag(i));
        }
        let mut delivered = Vec::new();
        while let Some(c) = sim.next_completion() {
            delivered.push(c.delivered_at.as_secs_f64());
        }
        sim.clear_observer();
        let events = Rc::try_unwrap(events)
            .expect("observer dropped")
            .into_inner();
        (events, delivered)
    };

    let (events, delivered) = run(true);
    let (_, blind) = run(false);
    assert_eq!(delivered, blind, "observer must not change outcomes");

    // Global timestamp monotonicity: the observer hears events in
    // simulation order.
    for pair in events.windows(2) {
        assert!(
            pair[0].at() <= pair[1].at(),
            "{:?} after {:?}",
            pair[1],
            pair[0]
        );
    }

    for tag in 0..8u64 {
        let mine: Vec<&SimEvent> = events.iter().filter(|e| e.tag() == Some(tag)).collect();
        assert!(
            matches!(mine.first(), Some(SimEvent::JobSubmitted { .. })),
            "tag {tag} starts with submission: {mine:?}"
        );
        let terminals = mine.iter().filter(|e| e.is_terminal()).count();
        assert_eq!(terminals, 1, "tag {tag} has exactly one terminal event");
        assert!(
            matches!(mine.last(), Some(SimEvent::JobDelivered { .. })),
            "tag {tag} ends with delivery: {mine:?}"
        );
        // Every started job was enqueued first; every delivery follows
        // at least one finish.
        let pos = |pred: fn(&&&SimEvent) -> bool| mine.iter().position(|e| pred(&e));
        let enq = pos(|e| matches!(***e, SimEvent::JobEnqueued { .. }));
        let started = pos(|e| matches!(***e, SimEvent::JobStarted { .. }));
        let finished = pos(|e| matches!(***e, SimEvent::JobFinished { .. }));
        assert!(enq < started, "tag {tag}: enqueue before start");
        assert!(started < finished, "tag {tag}: start before finish");
    }

    // Capacity snapshots carry no tag but must be present (jobs moved
    // through CE queues).
    assert!(events
        .iter()
        .any(|e| matches!(e, SimEvent::CeCapacity { .. })));
}
