//! Integration tests of the grid model's realism features: queue
//! disciplines, maintenance downtime, diurnal background load, and
//! global invariants checked property-style across random workloads.

use moteur_gridsim::config::{Downtime, QueueDiscipline};
use moteur_gridsim::{
    CeConfig, Distribution, GridConfig, GridJobSpec, GridSim, JobOutcome, NetworkConfig,
};
use proptest::prelude::*;

fn base_config() -> GridConfig {
    GridConfig {
        ces: vec![CeConfig::new("ce", 2, 1.0)],
        submission_overhead: Distribution::Constant(10.0),
        match_delay: Distribution::Constant(5.0),
        notify_delay: Distribution::Constant(1.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig { transfer_latency: 0.0, bandwidth: f64::INFINITY, congestion: 0.0 },
        typical_job_duration: 100.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

#[test]
fn user_priority_discipline_jumps_the_background_queue() {
    let run = |discipline: QueueDiscipline| -> f64 {
        let mut cfg = base_config();
        cfg.ces[0].slots = 1;
        cfg.ces[0].discipline = discipline;
        cfg.ces[0].initial_backlog = 5;
        cfg.ces[0].background_duration = Distribution::Constant(500.0);
        let mut sim = GridSim::new(cfg, 1);
        sim.submit(GridJobSpec::new("user", 50.0));
        sim.next_completion().expect("completes").delivered_at.as_secs_f64()
    };
    let fifo = run(QueueDiscipline::Fifo);
    let prio = run(QueueDiscipline::UserPriority);
    // FIFO waits behind 4 queued background jobs (one is already
    // running when the user job arrives); priority waits only for the
    // running one.
    assert!(fifo > prio + 1000.0, "fifo {fifo} vs priority {prio}");
    assert!(prio < 1100.0, "priority job waits at most one background job: {prio}");
}

#[test]
fn downtime_windows_delay_dispatch_but_not_running_jobs() {
    let mut cfg = base_config();
    cfg.ces[0].downtime = Some(Downtime { period: 30.0, duration: 1000.0 });
    let mut sim = GridSim::new(cfg, 1);
    // Enqueued at t=15 (before the t=30 window), runs to completion at
    // t=35 even though the window opens mid-run: graceful drain.
    sim.submit(GridJobSpec::new("early", 20.0));
    let first = sim.next_completion().unwrap();
    assert!(first.delivered_at.as_secs_f64() < 40.0, "{}", first.delivered_at);
    // Next job enqueues at ~51, inside the [30, 1030) window.
    sim.submit(GridJobSpec::new("blocked", 20.0));
    let second = sim.next_completion().unwrap();
    assert!(
        second.record.started_at.as_secs_f64() >= 1030.0,
        "job must wait for CeUp at t=1030: started {}",
        second.record.started_at
    );
}

#[test]
fn diurnal_amplitude_modulates_background_pressure() {
    // Count background arrivals over the first half-day (where the
    // sin modulation raises the rate): amplitude > 0 must produce
    // more arrivals than the flat rate.
    let run = |amplitude: f64| -> u64 {
        let mut cfg = base_config();
        cfg.ces[0].slots = 64; // plenty of room, we only count arrivals
        cfg.ces[0].background_interarrival = Some(Distribution::Exponential { mean: 120.0 });
        cfg.ces[0].background_duration = Distribution::Constant(10.0);
        cfg.ces[0].diurnal_amplitude = amplitude;
        let mut sim = GridSim::new(cfg, 7);
        // A half-day-long user job keeps the clock advancing.
        sim.submit(GridJobSpec::new("anchor", 43_200.0));
        sim.next_completion().expect("anchor completes");
        sim.background_arrivals()
    };
    let flat = run(0.0);
    let diurnal = run(0.9);
    assert!(
        diurnal as f64 > flat as f64 * 1.15,
        "rising-phase diurnal load must add arrivals: flat {flat}, diurnal {diurnal}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator invariants over random workloads: timestamps are
    /// monotone per record, every submitted job is delivered exactly
    /// once, and equal seeds reproduce identical timelines.
    #[test]
    fn invariants_hold_over_random_workloads(
        seed in 0u64..500,
        n_jobs in 1usize..40,
        compute in 1.0f64..500.0,
    ) {
        let mut sim = GridSim::new(GridConfig::egee_2006(), seed);
        for i in 0..n_jobs {
            sim.submit(
                GridJobSpec::new(format!("j{i}"), compute)
                    .with_files(vec![1_000_000], vec![10_000])
                    .with_tag(i as u64),
            );
        }
        let mut seen = std::collections::HashSet::new();
        let mut delivered = 0;
        while let Some(c) = sim.next_completion() {
            delivered += 1;
            prop_assert!(seen.insert(c.tag), "tag {} delivered twice", c.tag);
            let r = &c.record;
            prop_assert!(r.submitted_at <= r.matched_at);
            prop_assert!(r.matched_at <= r.enqueued_at);
            prop_assert!(r.enqueued_at <= r.started_at);
            prop_assert!(r.started_at <= r.finished_at);
            prop_assert!(r.finished_at <= r.delivered_at);
            prop_assert!(r.attempts >= 1);
            if c.outcome == JobOutcome::Success {
                prop_assert!(r.compute.as_secs_f64() > 0.0);
            }
        }
        prop_assert_eq!(delivered, n_jobs);
        prop_assert_eq!(sim.outstanding(), 0);
    }

    /// The overhead decomposition is consistent: turnaround equals
    /// overhead plus compute.
    #[test]
    fn overhead_decomposition(seed in 0u64..200) {
        let mut sim = GridSim::new(GridConfig::egee_2006(), seed);
        for i in 0..5 {
            sim.submit(GridJobSpec::new(format!("j{i}"), 100.0));
        }
        while let Some(c) = sim.next_completion() {
            let r = &c.record;
            let reconstructed = r.overhead().as_secs_f64() + r.compute.as_secs_f64();
            prop_assert!(
                (r.turnaround().as_secs_f64() - reconstructed).abs() < 1e-6,
                "turnaround {} != overhead {} + compute {}",
                r.turnaround(), r.overhead(), r.compute
            );
        }
    }
}
