//! The discrete-event grid simulator.
//!
//! Models the submission chain of a 2006-era EGEE/LCG2 grid:
//!
//! ```text
//! user interface --submission--> resource broker --match--> CE batch
//!   queue --wait--> worker (stage-in, compute, stage-out) --notify-->
//!   completion visible to submitter
//! ```
//!
//! plus multi-user background load on every computing element, an
//! information system whose staleness causes submission herding, and a
//! failure/resubmission model. All delays are drawn from configured
//! distributions with a single seeded RNG, so runs are reproducible.

use crate::config::{CeConfig, GridConfig, QueueDiscipline};
use crate::event::{Event, EventQueue};
use crate::job::{CeId, GridJobCompletion, GridJobSpec, JobId, JobOutcome, JobRecord};
use crate::obs::{SimEvent, SimObserver};
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use moteur_prof::{Prof, Subsystem};
use std::collections::VecDeque;

/// Who occupies a worker slot or a queue position.
#[derive(Debug, Clone)]
enum Occupant {
    User(JobId),
    Background { duration_secs: f64 },
}

#[derive(Debug)]
struct CeState {
    cfg: CeConfig,
    queue: VecDeque<Occupant>,
    busy: usize,
    /// False during a maintenance window: no new dispatches.
    up: bool,
    /// True while the submitter has blacklisted this CE; the broker
    /// avoids it like a down CE, but workers keep draining.
    blocked: bool,
    /// Dedicated stream for background arrivals/durations so that the
    /// user-job sampling sequence is independent of background volume.
    rng: Rng,
}

impl CeState {
    fn backlog(&self) -> usize {
        self.queue.len() + self.busy
    }
}

#[derive(Debug)]
struct JobState {
    spec: GridJobSpec,
    record: JobRecord,
    done: bool,
    /// Cancelled by the submitter: in-flight events for this job become
    /// no-ops and no completion is ever delivered.
    cancelled: bool,
}

/// The simulator. Drive it with [`GridSim::submit`] and
/// [`GridSim::next_completion`].
pub struct GridSim {
    config: GridConfig,
    clock: SimTime,
    events: EventQueue,
    rng: Rng,
    jobs: Vec<JobState>,
    ces: Vec<CeState>,
    /// The broker's (stale) view of each CE backlog, refreshed by the
    /// information system every `info_refresh_period`.
    broker_view: Vec<usize>,
    completions: VecDeque<GridJobCompletion>,
    /// User jobs submitted but not yet delivered.
    outstanding: usize,
    /// User jobs currently executing (for the congestion model).
    active_user_jobs: usize,
    finished_records: Vec<JobRecord>,
    /// Total background arrivals processed (diurnal-model testing and
    /// load introspection).
    background_arrivals: u64,
    /// Optional lifecycle observer ([`crate::obs`]); `None` keeps every
    /// emission site a cheap branch with no event construction.
    observer: Option<SimObserver>,
    /// Events popped and handled so far (the denominator for the scale
    /// campaign's events/sec and allocs-per-event figures).
    events_processed: u64,
    /// Self-profiler handle; [`Prof::off`] keeps every scope a branch.
    prof: Prof,
}

impl std::fmt::Debug for GridSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridSim")
            .field("clock", &self.clock)
            .field("jobs", &self.jobs.len())
            .field("ces", &self.ces.len())
            .finish_non_exhaustive()
    }
}

impl GridSim {
    pub fn new(config: GridConfig, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        // Steady state keeps a few events in flight per CE (worker
        // finishes, background arrivals, maintenance) plus the global
        // refresh; pre-size so the hot loop starts past the growth.
        let mut events = EventQueue::with_capacity(16 + 4 * config.ces.len());
        let mut ces = Vec::with_capacity(config.ces.len());
        for (i, cfg) in config.ces.iter().enumerate() {
            let mut ce = CeState {
                cfg: cfg.clone(),
                queue: VecDeque::new(),
                busy: 0,
                up: true,
                blocked: false,
                rng: rng.fork(i as u64 + 1),
            };
            for _ in 0..cfg.initial_backlog {
                let d = cfg.background_duration.sample(&mut ce.rng);
                ce.queue
                    .push_back(Occupant::Background { duration_secs: d });
            }
            if let Some(inter) = &cfg.background_interarrival {
                let dt = inter.sample(&mut ce.rng);
                events.schedule(
                    SimTime::ZERO + SimDuration::from_secs_f64(dt),
                    Event::BackgroundArrival { ce: CeId(i) },
                );
            }
            if let Some(dt) = cfg.downtime {
                events.schedule(
                    SimTime::from_secs_f64(dt.period),
                    Event::CeDown { ce: CeId(i) },
                );
            }
            ces.push(ce);
        }
        let broker_view = ces.iter().map(CeState::backlog).collect();
        events.schedule(
            SimTime::from_secs_f64(config.info_refresh_period),
            Event::InfoRefresh,
        );
        let mut sim = GridSim {
            config,
            clock: SimTime::ZERO,
            events,
            rng,
            jobs: Vec::new(),
            ces,
            broker_view,
            completions: VecDeque::new(),
            outstanding: 0,
            active_user_jobs: 0,
            finished_records: Vec::new(),
            background_arrivals: 0,
            observer: None,
            events_processed: 0,
            prof: Prof::off(),
        };
        // Dispatch the initial backlog so workers start busy.
        for i in 0..sim.ces.len() {
            sim.try_dispatch(CeId(i));
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Install a lifecycle observer; it receives one [`SimEvent`] per
    /// transition from now on. Replaces any previous observer.
    pub fn set_observer(&mut self, observer: SimObserver) {
        self.observer = Some(observer);
    }

    /// Remove the observer, returning emission sites to no-ops.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Install a self-profiler handle: the event queue, event dispatch
    /// and broker matchmaking become profiled scopes. A disabled handle
    /// keeps every site a single branch.
    pub fn set_prof(&mut self, prof: Prof) {
        self.prof = prof;
    }

    /// Events popped and handled since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pre-size the job table for a known campaign, avoiding repeated
    /// re-allocation while submitting large waves.
    pub fn reserve_jobs(&mut self, additional: usize) {
        self.jobs.reserve(additional);
    }

    /// Emit an event to the observer, building it only when one is
    /// installed (the hot path stays allocation-free otherwise).
    #[inline]
    fn emit(&mut self, build: impl FnOnce(&Self) -> SimEvent) {
        if self.observer.is_some() {
            let event = build(self);
            if let Some(obs) = &mut self.observer {
                obs(&event);
            }
        }
    }

    /// Emit the current occupancy of `ce`.
    fn emit_ce_capacity(&mut self, ce_id: CeId) {
        self.emit(|sim| {
            let ce = &sim.ces[ce_id.0];
            SimEvent::CeCapacity {
                at: sim.clock,
                ce: ce_id,
                busy: ce.busy,
                queued: ce.queue.len(),
                queued_user: ce
                    .queue
                    .iter()
                    .filter(|o| matches!(o, Occupant::User(_)))
                    .count(),
                slots: ce.cfg.slots,
                up: ce.up,
            }
        });
    }

    /// Number of user jobs submitted and not yet delivered.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Records of all delivered user jobs, in delivery order.
    pub fn records(&self) -> &[JobRecord] {
        &self.finished_records
    }

    /// Number of background-job arrivals processed so far.
    pub fn background_arrivals(&self) -> u64 {
        self.background_arrivals
    }

    /// Submit a job. The completion surfaces later through
    /// [`GridSim::next_completion`].
    pub fn submit(&mut self, mut spec: GridJobSpec) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        // The record takes ownership of the name; the spec's copy is
        // never read again (every emission uses the record's), so the
        // per-submission clone the profiler flagged is gone.
        let record = JobRecord {
            id,
            name: std::mem::take(&mut spec.name),
            tag: spec.tag,
            submitted_at: self.clock,
            matched_at: self.clock,
            enqueued_at: self.clock,
            started_at: self.clock,
            finished_at: self.clock,
            delivered_at: self.clock,
            ce: None,
            attempts: 0,
            stage_in: SimDuration::ZERO,
            compute: SimDuration::ZERO,
            stage_out: SimDuration::ZERO,
            outcome: JobOutcome::Success,
        };
        self.jobs.push(JobState {
            spec,
            record,
            done: false,
            cancelled: false,
        });
        self.outstanding += 1;
        let delay = self.config.submission_overhead.sample(&mut self.rng);
        self.schedule_in(delay, Event::BrokerReceives { job: id });
        self.emit(|sim| {
            let state = &sim.jobs[id.0 as usize];
            SimEvent::JobSubmitted {
                at: sim.clock,
                job: id,
                tag: state.spec.tag,
                name: state.record.name.clone(),
            }
        });
        id
    }

    /// Submit a pure data transfer: the job bypasses the broker, queue
    /// and execution pipeline entirely and is delivered after
    /// `transfer_seconds` of stage-in. Used by the data manager to
    /// model fetching a memoized result from the content store.
    pub fn submit_fetch(
        &mut self,
        name: impl Into<String>,
        transfer_seconds: f64,
        tag: u64,
    ) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        let transfer = SimDuration::from_secs_f64(transfer_seconds.max(0.0));
        let record = JobRecord {
            id,
            name: name.into(),
            tag,
            submitted_at: self.clock,
            matched_at: self.clock,
            enqueued_at: self.clock,
            started_at: self.clock,
            finished_at: self.clock + transfer,
            delivered_at: self.clock + transfer,
            ce: None,
            attempts: 1,
            stage_in: transfer,
            compute: SimDuration::ZERO,
            stage_out: SimDuration::ZERO,
            outcome: JobOutcome::Success,
        };
        // The spec's name is never read (emissions use the record's),
        // so an empty placeholder avoids the clone.
        let spec = GridJobSpec::new(String::new(), 0.0).with_tag(tag);
        self.jobs.push(JobState {
            spec,
            record,
            done: false,
            cancelled: false,
        });
        self.outstanding += 1;
        self.schedule_in(
            transfer_seconds.max(0.0),
            Event::CompletionDelivered { job: id },
        );
        id
    }

    /// Advance virtual time until the next user-job completion and
    /// return it, or `None` when no user job is outstanding.
    ///
    /// Profiling granularity: one `event_queue` scope per drain call
    /// (the loop runs millions of events per second, so a scope per
    /// event would measure the profiler, not the simulator); the events
    /// dispatched inside it are batch-counted as `sim_step`.
    pub fn next_completion(&mut self) -> Option<GridJobCompletion> {
        if let Some(c) = self.completions.pop_front() {
            return Some(c);
        }
        if self.outstanding == 0 {
            return None;
        }
        let prof = self.prof.clone();
        let _drain = prof.scope(Subsystem::EventQueue);
        let drained_from = self.events_processed;
        let result = loop {
            if let Some(c) = self.completions.pop_front() {
                break Some(c);
            }
            if self.outstanding == 0 {
                break None;
            }
            let (at, event) = self
                .events
                .pop()
                .expect("outstanding user jobs but an empty event queue");
            debug_assert!(at >= self.clock, "time went backwards");
            self.clock = at;
            self.events_processed += 1;
            self.handle(event);
        };
        prof.add_batch(Subsystem::SimStep, self.events_processed - drained_from, 0);
        result
    }

    /// Advance virtual time until the next user-job completion **or**
    /// `deadline`, whichever comes first. Returns `None` when the
    /// deadline is reached (the clock then sits exactly at `deadline`)
    /// or when nothing can ever complete. Unlike
    /// [`GridSim::next_completion`], this also advances time with zero
    /// outstanding jobs — background and maintenance events keep
    /// processing — so a submitter can wait out a backoff delay.
    pub fn next_completion_until(&mut self, deadline: SimTime) -> Option<GridJobCompletion> {
        if let Some(c) = self.completions.pop_front() {
            return Some(c);
        }
        let prof = self.prof.clone();
        let _drain = prof.scope(Subsystem::EventQueue);
        let drained_from = self.events_processed;
        let result = loop {
            if let Some(c) = self.completions.pop_front() {
                break Some(c);
            }
            match self.events.peek_time() {
                Some(at) if at <= deadline => {
                    let (at, event) = self.events.pop().expect("peeked event exists");
                    debug_assert!(at >= self.clock, "time went backwards");
                    self.clock = at;
                    self.events_processed += 1;
                    self.handle(event);
                }
                _ => {
                    self.clock = self.clock.max(deadline);
                    break None;
                }
            }
        };
        prof.add_batch(Subsystem::SimStep, self.events_processed - drained_from, 0);
        result
    }

    /// Cancel a submitted job. Returns `true` if the job was still in
    /// flight (it is removed from whatever stage it had reached and
    /// will never surface a completion), `false` if it had already been
    /// delivered or cancelled. A cancelled attempt that is mid-execution
    /// keeps its worker slot busy until the scheduled finish — the
    /// batch system cannot reclaim a running 2006-era worker — but its
    /// result is discarded.
    pub fn cancel(&mut self, job: JobId) -> bool {
        let Some(state) = self.jobs.get_mut(job.0 as usize) else {
            return false;
        };
        if state.done || state.cancelled {
            return false;
        }
        state.cancelled = true;
        self.outstanding -= 1;
        // If the job is still sitting in a CE batch queue, pull it out
        // so it does not occupy a slot later.
        for i in 0..self.ces.len() {
            if let Some(pos) = self.ces[i]
                .queue
                .iter()
                .position(|o| matches!(o, Occupant::User(j) if *j == job))
            {
                self.ces[i].queue.remove(pos);
                self.emit_ce_capacity(CeId(i));
                break;
            }
        }
        self.emit(|sim| SimEvent::JobCancelled {
            at: sim.clock,
            job,
            tag: sim.jobs[job.0 as usize].spec.tag,
        });
        true
    }

    /// Blacklist (or un-blacklist) a computing element on the
    /// submitter's side: the broker stops matching new jobs onto it,
    /// exactly as if it were down, while running and queued occupants
    /// drain normally.
    pub fn set_ce_blocked(&mut self, ce: usize, blocked: bool) {
        if let Some(state) = self.ces.get_mut(ce) {
            state.blocked = blocked;
        }
    }

    fn schedule_in(&mut self, delay_secs: f64, event: Event) {
        self.events
            .schedule(self.clock + SimDuration::from_secs_f64(delay_secs), event);
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::BrokerReceives { job } => self.on_broker_receives(job),
            Event::CeReceives { job, ce } => self.on_ce_receives(job, ce),
            Event::WorkerFinishes { ce, job } => self.on_worker_finishes(ce, job),
            Event::BackgroundArrival { ce } => self.on_background_arrival(ce),
            Event::FailureDetected { job } => self.on_failure_detected(job),
            Event::CompletionDelivered { job } => self.on_completion_delivered(job),
            Event::InfoRefresh => self.on_info_refresh(),
            Event::CeDown { ce } => self.on_ce_down(ce),
            Event::CeUp { ce } => self.on_ce_up(ce),
        }
    }

    fn on_ce_down(&mut self, ce_id: CeId) {
        self.ces[ce_id.0].up = false;
        if let Some(dt) = self.ces[ce_id.0].cfg.downtime {
            self.schedule_in(dt.duration, Event::CeUp { ce: ce_id });
        }
        self.emit_ce_capacity(ce_id);
    }

    fn on_ce_up(&mut self, ce_id: CeId) {
        self.ces[ce_id.0].up = true;
        if let Some(dt) = self.ces[ce_id.0].cfg.downtime {
            self.schedule_in(dt.period, Event::CeDown { ce: ce_id });
        }
        self.emit_ce_capacity(ce_id);
        self.try_dispatch(ce_id);
    }

    /// Rank CEs by the broker's stale backlog estimates, normalised by
    /// capacity — the LCG2 "estimated traversal time" rank. CEs that
    /// are down (maintenance window) or blacklisted by the submitter
    /// are skipped; only when every CE is unavailable does the broker
    /// fall back to the least-bad one, modelling a match that will sit
    /// in its queue until the CE returns.
    fn pick_ce(&mut self) -> CeId {
        let prof = self.prof.clone();
        let _prof = prof.scope(Subsystem::PickCe);
        let mut best_available: Option<usize> = None;
        let mut best_available_rank = f64::INFINITY;
        let mut best_any = 0usize;
        let mut best_any_rank = f64::INFINITY;
        for (i, ce) in self.ces.iter().enumerate() {
            let backlog = self.broker_view[i] as f64;
            let slots = ce.cfg.slots as f64;
            let wait_estimate =
                (backlog - slots + 1.0).max(0.0) / slots * self.config.typical_job_duration;
            // Small noise so equally-ranked CEs share the load instead
            // of all jobs herding onto index 0. Sampled for every CE —
            // available or not — so the RNG stream (and therefore any
            // same-seed timeline) does not depend on availability.
            let rank = wait_estimate / ce.cfg.speed
                + self.rng.uniform() * 0.05 * self.config.typical_job_duration;
            if rank < best_any_rank {
                best_any_rank = rank;
                best_any = i;
            }
            if ce.up && !ce.blocked && rank < best_available_rank {
                best_available_rank = rank;
                best_available = Some(i);
            }
        }
        let best = best_available.unwrap_or(best_any);
        // The broker optimistically counts its own decision.
        self.broker_view[best] += 1;
        CeId(best)
    }

    fn on_broker_receives(&mut self, job: JobId) {
        if self.jobs[job.0 as usize].cancelled {
            return;
        }
        let ce = self.pick_ce();
        self.jobs[job.0 as usize].record.matched_at = self.clock;
        let delay = self.config.match_delay.sample(&mut self.rng);
        self.schedule_in(delay, Event::CeReceives { job, ce });
        self.emit(|sim| SimEvent::JobMatched {
            at: sim.clock,
            job,
            tag: sim.jobs[job.0 as usize].spec.tag,
            ce,
        });
    }

    fn on_ce_receives(&mut self, job: JobId, ce: CeId) {
        if self.jobs[job.0 as usize].cancelled {
            return;
        }
        {
            let rec = &mut self.jobs[job.0 as usize].record;
            rec.enqueued_at = self.clock;
            rec.ce = Some(ce);
            rec.attempts += 1;
        }
        self.ces[ce.0].queue.push_back(Occupant::User(job));
        self.emit(|sim| SimEvent::JobEnqueued {
            at: sim.clock,
            job,
            tag: sim.jobs[job.0 as usize].spec.tag,
            ce,
            attempt: sim.jobs[job.0 as usize].record.attempts,
        });
        self.emit_ce_capacity(ce);
        self.try_dispatch(ce);
    }

    /// Move queued occupants onto free worker slots.
    fn try_dispatch(&mut self, ce_id: CeId) {
        let mut dispatched = false;
        loop {
            let ce = &mut self.ces[ce_id.0];
            if !ce.up || ce.busy >= ce.cfg.slots || ce.queue.is_empty() {
                break;
            }
            let occupant = match ce.cfg.discipline {
                QueueDiscipline::Fifo => ce.queue.pop_front().expect("checked non-empty"),
                QueueDiscipline::UserPriority => {
                    let pos = ce
                        .queue
                        .iter()
                        .position(|o| matches!(o, Occupant::User(_)))
                        .unwrap_or(0);
                    ce.queue.remove(pos).expect("position is in range")
                }
            };
            ce.busy += 1;
            dispatched = true;
            match occupant {
                Occupant::Background { duration_secs } => {
                    self.schedule_in(
                        duration_secs,
                        Event::WorkerFinishes {
                            ce: ce_id,
                            job: None,
                        },
                    );
                }
                Occupant::User(job) => {
                    let speed = self.ces[ce_id.0].cfg.speed;
                    let runtime = self.start_user_job(job, speed);
                    self.schedule_in(
                        runtime,
                        Event::WorkerFinishes {
                            ce: ce_id,
                            job: Some(job),
                        },
                    );
                    self.emit(|sim| SimEvent::JobStarted {
                        at: sim.clock,
                        job,
                        tag: sim.jobs[job.0 as usize].spec.tag,
                        ce: ce_id,
                    });
                    self.emit(|sim| {
                        let state = &sim.jobs[job.0 as usize];
                        SimEvent::LinkTransfer {
                            at: sim.clock,
                            job,
                            tag: state.spec.tag,
                            ce: ce_id,
                            bytes_in: state.spec.total_input_bytes(),
                            bytes_out: state.spec.total_output_bytes(),
                            stage_in_secs: state.record.stage_in.as_secs_f64(),
                            stage_out_secs: state.record.stage_out.as_secs_f64(),
                        }
                    });
                }
            }
        }
        if dispatched {
            self.emit_ce_capacity(ce_id);
        }
    }

    /// Record start-of-execution bookkeeping; returns the wall runtime
    /// (stage-in + compute + stage-out) in seconds.
    fn start_user_job(&mut self, job: JobId, speed: f64) -> f64 {
        let congestion = 1.0 + self.config.network.congestion * self.active_user_jobs as f64;
        self.active_user_jobs += 1;
        let jitter = self.config.compute_jitter.sample(&mut self.rng);
        let state = &mut self.jobs[job.0 as usize];
        let net = &self.config.network;
        let xfer = |bytes: u64| (net.transfer_latency + bytes as f64 / net.bandwidth) * congestion;
        let stage_in: f64 = state.spec.input_files.iter().map(|&b| xfer(b)).sum();
        let stage_out: f64 = state.spec.output_files.iter().map(|&b| xfer(b)).sum();
        let compute = state.spec.compute_seconds * jitter / speed;
        state.record.started_at = self.clock;
        state.record.stage_in = SimDuration::from_secs_f64(stage_in);
        state.record.compute = SimDuration::from_secs_f64(compute);
        state.record.stage_out = SimDuration::from_secs_f64(stage_out);
        stage_in + compute + stage_out
    }

    fn on_worker_finishes(&mut self, ce: CeId, job: Option<JobId>) {
        self.ces[ce.0].busy -= 1;
        if let Some(job) = job {
            self.active_user_jobs -= 1;
            if self.jobs[job.0 as usize].cancelled {
                // The slot drained; the discarded result goes nowhere.
                self.emit_ce_capacity(ce);
                self.try_dispatch(ce);
                return;
            }
            let attempts = self.jobs[job.0 as usize].record.attempts;
            let failed = self.rng.chance(self.config.failure_probability);
            if failed && attempts <= self.config.max_retries {
                let delay = self.config.failure_detection.sample(&mut self.rng);
                self.schedule_in(delay, Event::FailureDetected { job });
                self.emit(|sim| SimEvent::JobFinished {
                    at: sim.clock,
                    job,
                    tag: sim.jobs[job.0 as usize].spec.tag,
                    ce,
                    outcome: JobOutcome::Failed,
                });
            } else {
                let outcome = if failed {
                    JobOutcome::Failed
                } else {
                    JobOutcome::Success
                };
                let rec = &mut self.jobs[job.0 as usize].record;
                rec.finished_at = self.clock;
                rec.outcome = outcome;
                let delay = self.config.notify_delay.sample(&mut self.rng);
                self.schedule_in(delay, Event::CompletionDelivered { job });
                self.emit(|sim| SimEvent::JobFinished {
                    at: sim.clock,
                    job,
                    tag: sim.jobs[job.0 as usize].spec.tag,
                    ce,
                    outcome,
                });
            }
        }
        self.emit_ce_capacity(ce);
        self.try_dispatch(ce);
    }

    fn on_background_arrival(&mut self, ce_id: CeId) {
        self.background_arrivals += 1;
        let now_secs = self.clock.as_secs_f64();
        let ce = &mut self.ces[ce_id.0];
        let duration = ce.cfg.background_duration.sample(&mut ce.rng);
        ce.queue.push_back(Occupant::Background {
            duration_secs: duration,
        });
        if let Some(inter) = ce.cfg.background_interarrival.clone() {
            let mut dt = inter.sample(&mut ce.rng);
            if ce.cfg.diurnal_amplitude > 0.0 {
                // Higher arrival rate (shorter inter-arrival) around the
                // diurnal peak.
                let phase = std::f64::consts::TAU * now_secs / 86_400.0;
                let rate = 1.0 + ce.cfg.diurnal_amplitude.min(0.95) * phase.sin();
                dt /= rate.max(0.05);
            }
            self.schedule_in(dt, Event::BackgroundArrival { ce: ce_id });
        }
        self.try_dispatch(ce_id);
    }

    /// A failed attempt becomes visible; resubmit through the whole
    /// chain (the paper: "D0 was submitted twice because an error
    /// occurred").
    fn on_failure_detected(&mut self, job: JobId) {
        if self.jobs[job.0 as usize].cancelled {
            return;
        }
        let delay = self.config.submission_overhead.sample(&mut self.rng);
        self.schedule_in(delay, Event::BrokerReceives { job });
        self.emit(|sim| SimEvent::JobResubmitted {
            at: sim.clock,
            job,
            tag: sim.jobs[job.0 as usize].spec.tag,
            attempt: sim.jobs[job.0 as usize].record.attempts,
        });
    }

    fn on_completion_delivered(&mut self, job: JobId) {
        let state = &mut self.jobs[job.0 as usize];
        if state.cancelled {
            return;
        }
        debug_assert!(!state.done, "double delivery for {job:?}");
        state.done = true;
        state.record.delivered_at = self.clock;
        self.outstanding -= 1;
        let tag = state.spec.tag;
        let outcome = state.record.outcome;
        // Move the canonical record into the delivery log and clone only
        // the completion's copy — a delivered JobState's record is never
        // read again, so this halves the per-delivery allocations the
        // profiler flagged.
        let record = std::mem::replace(&mut state.record, Self::drained_record(job));
        self.completions.push_back(GridJobCompletion {
            id: job,
            tag,
            outcome,
            delivered_at: self.clock,
            record: record.clone(),
        });
        self.finished_records.push(record);
        self.emit(|sim| SimEvent::JobDelivered {
            at: sim.clock,
            job,
            tag,
            outcome,
        });
    }

    /// Allocation-free placeholder left in a delivered [`JobState`]'s
    /// record slot (never read again: `done` gates every later access).
    fn drained_record(job: JobId) -> JobRecord {
        JobRecord {
            id: job,
            name: String::new(),
            tag: 0,
            submitted_at: SimTime::ZERO,
            matched_at: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
            started_at: SimTime::ZERO,
            finished_at: SimTime::ZERO,
            delivered_at: SimTime::ZERO,
            ce: None,
            attempts: 0,
            stage_in: SimDuration::ZERO,
            compute: SimDuration::ZERO,
            stage_out: SimDuration::ZERO,
            outcome: JobOutcome::Success,
        }
    }

    fn on_info_refresh(&mut self) {
        for (view, ce) in self.broker_view.iter_mut().zip(&self.ces) {
            *view = ce.backlog();
        }
        let period = self.config.info_refresh_period;
        self.schedule_in(period, Event::InfoRefresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::rng::Distribution;

    fn quiet_config() -> GridConfig {
        // Deterministic single-CE grid with fixed overheads.
        GridConfig {
            ces: vec![CeConfig::new("ce", 2, 1.0)],
            submission_overhead: Distribution::Constant(10.0),
            match_delay: Distribution::Constant(5.0),
            notify_delay: Distribution::Constant(1.0),
            failure_probability: 0.0,
            failure_detection: Distribution::Constant(0.0),
            max_retries: 0,
            network: NetworkConfig {
                transfer_latency: 2.0,
                bandwidth: 1e6,
                congestion: 0.0,
            },
            typical_job_duration: 100.0,
            info_refresh_period: 60.0,
            compute_jitter: Distribution::Constant(1.0),
        }
    }

    #[test]
    fn single_job_timeline_is_exact() {
        let mut sim = GridSim::new(quiet_config(), 1);
        sim.submit(GridJobSpec::new("j", 100.0).with_files(vec![1_000_000], vec![2_000_000]));
        let c = sim.next_completion().expect("job completes");
        // 10 submit + 5 match + 0 queue + (2+1) stage-in + 100 compute
        // + (2+2) stage-out + 1 notify = 123.
        assert_eq!(c.outcome, JobOutcome::Success);
        assert!(
            (c.delivered_at.as_secs_f64() - 123.0).abs() < 1e-6,
            "{}",
            c.delivered_at
        );
        assert!((c.record.queue_wait().as_secs_f64()).abs() < 1e-6);
        assert_eq!(c.record.attempts, 1);
    }

    #[test]
    fn no_jobs_means_no_completion_and_no_time_advance() {
        let mut sim = GridSim::new(quiet_config(), 1);
        assert!(sim.next_completion().is_none());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn two_slots_run_two_jobs_in_parallel_third_queues() {
        let mut sim = GridSim::new(quiet_config(), 1);
        for _ in 0..3 {
            sim.submit(GridJobSpec::new("j", 100.0));
        }
        let mut deliveries: Vec<f64> = (0..3)
            .map(|_| sim.next_completion().unwrap().delivered_at.as_secs_f64())
            .collect();
        deliveries.sort_by(f64::total_cmp);
        // First two at 15 + 100 + 1 = 116; third waits 100s: 216.
        assert!((deliveries[0] - 116.0).abs() < 1e-6, "{deliveries:?}");
        assert!((deliveries[1] - 116.0).abs() < 1e-6, "{deliveries:?}");
        assert!((deliveries[2] - 216.0).abs() < 1e-6, "{deliveries:?}");
    }

    #[test]
    fn failures_cause_resubmission_and_extra_attempts() {
        let mut cfg = quiet_config();
        cfg.failure_probability = 1.0; // every attempt fails
        cfg.max_retries = 2;
        cfg.failure_detection = Distribution::Constant(50.0);
        let mut sim = GridSim::new(cfg, 1);
        sim.submit(GridJobSpec::new("j", 100.0));
        let c = sim.next_completion().unwrap();
        assert_eq!(c.outcome, JobOutcome::Failed);
        assert_eq!(c.record.attempts, 3); // initial + 2 retries
                                          // Each attempt costs 15 + 100; retries add 50 detect + 10 + 5.
        assert!(c.delivered_at.as_secs_f64() > 300.0);
    }

    #[test]
    fn retry_can_succeed_when_failure_is_probabilistic() {
        let mut cfg = quiet_config();
        cfg.failure_probability = 0.5;
        cfg.max_retries = 10;
        cfg.failure_detection = Distribution::Constant(5.0);
        let mut sim = GridSim::new(cfg, 7);
        for _ in 0..20 {
            sim.submit(GridJobSpec::new("j", 10.0));
        }
        let mut successes = 0;
        let mut max_attempts = 0;
        while let Some(c) = sim.next_completion() {
            if c.outcome == JobOutcome::Success {
                successes += 1;
            }
            max_attempts = max_attempts.max(c.record.attempts);
        }
        assert_eq!(
            successes, 20,
            "p=0.5 with 10 retries virtually always succeeds"
        );
        assert!(max_attempts > 1, "some job should have retried");
    }

    #[test]
    fn background_load_delays_user_jobs() {
        let mut cfg = quiet_config();
        cfg.ces[0].initial_backlog = 4; // 2 slots busy + 2 queued
        cfg.ces[0].background_duration = Distribution::Constant(1000.0);
        let mut sim = GridSim::new(cfg, 1);
        sim.submit(GridJobSpec::new("j", 100.0));
        let c = sim.next_completion().unwrap();
        // Must wait for two background waves: queue wait ≈ 2000 - 15.
        assert!(
            c.record.queue_wait().as_secs_f64() > 1900.0,
            "{:?}",
            c.record.queue_wait()
        );
    }

    #[test]
    fn same_seed_same_timeline_different_seed_differs() {
        let run = |seed: u64| {
            let mut sim = GridSim::new(GridConfig::egee_2006(), seed);
            for i in 0..10 {
                sim.submit(
                    GridJobSpec::new(format!("j{i}"), 120.0)
                        .with_files(vec![7_800_000], vec![1_000_000]),
                );
            }
            let mut times = Vec::new();
            while let Some(c) = sim.next_completion() {
                times.push(c.delivered_at.0);
            }
            times
        };
        assert_eq!(run(42), run(42), "same seed must reproduce exactly");
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn egee_overheads_are_minutes_scale_and_variable() {
        let mut sim = GridSim::new(GridConfig::egee_2006(), 11);
        for i in 0..60 {
            sim.submit(
                GridJobSpec::new(format!("j{i}"), 120.0).with_files(vec![7_800_000], vec![500_000]),
            );
        }
        let mut overheads = Vec::new();
        while let Some(c) = sim.next_completion() {
            if c.outcome == JobOutcome::Success {
                overheads.push(c.record.overhead().as_secs_f64());
            }
        }
        assert!(overheads.len() > 50);
        let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
        let var = overheads
            .iter()
            .map(|o| (o - mean) * (o - mean))
            .sum::<f64>()
            / overheads.len() as f64;
        // Paper: "around 10 minutes ... quite variable (± 5 minutes)".
        assert!(mean > 180.0 && mean < 2400.0, "mean overhead {mean}");
        assert!(
            var.sqrt() > 60.0,
            "overhead std-dev {} too small",
            var.sqrt()
        );
    }

    #[test]
    fn ideal_grid_job_takes_exactly_its_compute_time() {
        let mut sim = GridSim::new(GridConfig::ideal(), 3);
        sim.submit(GridJobSpec::new("j", 250.0).with_files(vec![10], vec![10]));
        let c = sim.next_completion().unwrap();
        assert!((c.delivered_at.as_secs_f64() - 250.0).abs() < 1e-6);
        assert_eq!(c.record.overhead(), SimDuration::ZERO);
    }

    #[test]
    fn ideal_grid_runs_thousands_of_jobs_fully_parallel() {
        let mut sim = GridSim::new(GridConfig::ideal(), 3);
        for _ in 0..2000 {
            sim.submit(GridJobSpec::new("j", 100.0));
        }
        let mut last = 0.0f64;
        let mut n = 0;
        while let Some(c) = sim.next_completion() {
            last = last.max(c.delivered_at.as_secs_f64());
            n += 1;
        }
        assert_eq!(n, 2000);
        assert!(
            (last - 100.0).abs() < 1e-6,
            "all jobs run concurrently: {last}"
        );
    }

    #[test]
    fn records_accumulate_in_delivery_order() {
        let mut sim = GridSim::new(quiet_config(), 1);
        sim.submit(GridJobSpec::new("a", 10.0).with_tag(1));
        sim.submit(GridJobSpec::new("b", 20.0).with_tag(2));
        while sim.next_completion().is_some() {}
        let recs = sim.records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].delivered_at <= recs[1].delivered_at);
        assert_eq!(recs[0].tag, 1);
    }

    fn two_ce_config() -> GridConfig {
        let mut cfg = quiet_config();
        cfg.ces = vec![CeConfig::new("ce0", 2, 1.0), CeConfig::new("ce1", 2, 1.0)];
        cfg
    }

    #[test]
    fn broker_skips_a_down_ce_while_another_has_free_slots() {
        use crate::config::Downtime;
        let mut cfg = two_ce_config();
        // CE 0 goes down at t=5 for a very long window — before any
        // submission (constant 10s overhead) reaches the broker.
        cfg.ces[0].downtime = Some(Downtime {
            period: 5.0,
            duration: 1_000_000.0,
        });
        let mut sim = GridSim::new(cfg, 1);
        for _ in 0..2 {
            sim.submit(GridJobSpec::new("j", 100.0));
        }
        while let Some(c) = sim.next_completion() {
            assert_eq!(c.record.ce, Some(CeId(1)), "matched onto the down CE");
            assert!(
                c.delivered_at.as_secs_f64() < 1_000.0,
                "job waited out the downtime: {}",
                c.delivered_at
            );
        }
    }

    #[test]
    fn broker_falls_back_to_a_down_ce_only_when_all_are_down() {
        use crate::config::Downtime;
        let mut cfg = quiet_config();
        cfg.ces[0].downtime = Some(Downtime {
            period: 5.0,
            duration: 500.0,
        });
        let mut sim = GridSim::new(cfg, 1);
        sim.submit(GridJobSpec::new("j", 100.0));
        let c = sim.next_completion().expect("delivered after the window");
        assert_eq!(c.record.ce, Some(CeId(0)));
        assert!(
            c.record.queue_wait().as_secs_f64() > 400.0,
            "job should sit in the queue until CeUp: {:?}",
            c.record.queue_wait()
        );
    }

    #[test]
    fn blocked_ce_receives_no_new_matches() {
        let mut sim = GridSim::new(two_ce_config(), 1);
        sim.set_ce_blocked(0, true);
        for _ in 0..4 {
            sim.submit(GridJobSpec::new("j", 50.0));
        }
        let mut n = 0;
        while let Some(c) = sim.next_completion() {
            assert_eq!(c.record.ce, Some(CeId(1)));
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn cancelled_job_never_surfaces_a_completion() {
        let mut sim = GridSim::new(quiet_config(), 1);
        let keep = sim.submit(GridJobSpec::new("keep", 100.0));
        let drop = sim.submit(GridJobSpec::new("drop", 100.0));
        assert!(sim.cancel(drop), "first cancel succeeds");
        assert!(!sim.cancel(drop), "second cancel is a no-op");
        assert_eq!(sim.outstanding(), 1);
        let c = sim.next_completion().expect("surviving job completes");
        assert_eq!(c.id, keep);
        assert!(sim.next_completion().is_none());
    }

    #[test]
    fn cancelling_a_queued_job_frees_its_queue_slot() {
        let mut sim = GridSim::new(quiet_config(), 1);
        // Two slots: jobs 0 and 1 run, job 2 queues behind them.
        let ids: Vec<JobId> = (0..3)
            .map(|_| sim.submit(GridJobSpec::new("j", 100.0)))
            .collect();
        // Wait past dispatch (t=15) by polling to the first completion.
        let first = sim.next_completion().unwrap();
        assert!((first.delivered_at.as_secs_f64() - 116.0).abs() < 1e-6);
        assert!(sim.cancel(ids[2]), "queued job can be cancelled");
        let second = sim.next_completion().unwrap();
        assert!((second.delivered_at.as_secs_f64() - 116.0).abs() < 1e-6);
        assert!(sim.next_completion().is_none(), "third was cancelled");
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut sim = GridSim::new(quiet_config(), 1);
        let id = sim.submit(GridJobSpec::new("j", 10.0));
        let _ = sim.next_completion().unwrap();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn next_completion_until_stops_at_the_deadline() {
        let mut sim = GridSim::new(quiet_config(), 1);
        sim.submit(GridJobSpec::new("j", 100.0)); // completes at t=116
        let none = sim.next_completion_until(SimTime::from_secs_f64(50.0));
        assert!(none.is_none());
        assert!((sim.now().as_secs_f64() - 50.0).abs() < 1e-6);
        let some = sim.next_completion_until(SimTime::from_secs_f64(500.0));
        let c = some.expect("completion before the second deadline");
        assert!((c.delivered_at.as_secs_f64() - 116.0).abs() < 1e-6);
    }

    #[test]
    fn next_completion_until_advances_time_with_nothing_outstanding() {
        let mut sim = GridSim::new(quiet_config(), 1);
        assert!(sim
            .next_completion_until(SimTime::from_secs_f64(42.0))
            .is_none());
        assert!((sim.now().as_secs_f64() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn max_retries_n_means_n_plus_one_attempts() {
        for n in [0u32, 1, 3] {
            let mut cfg = quiet_config();
            cfg.failure_probability = 1.0;
            cfg.max_retries = n;
            cfg.failure_detection = Distribution::Constant(1.0);
            let mut sim = GridSim::new(cfg, 1);
            sim.submit(GridJobSpec::new("j", 10.0));
            let c = sim.next_completion().unwrap();
            assert_eq!(c.outcome, JobOutcome::Failed);
            assert_eq!(c.record.attempts, n + 1, "max_retries={n}");
        }
    }

    #[test]
    fn congestion_slows_transfers_when_many_jobs_active() {
        let mut cfg = quiet_config();
        cfg.ces[0].slots = 100;
        cfg.network.congestion = 0.05;
        let mut sim = GridSim::new(cfg, 1);
        for _ in 0..50 {
            sim.submit(GridJobSpec::new("j", 10.0).with_files(vec![10_000_000], vec![]));
        }
        let mut max_stage_in = 0.0f64;
        let mut min_stage_in = f64::INFINITY;
        while let Some(c) = sim.next_completion() {
            max_stage_in = max_stage_in.max(c.record.stage_in.as_secs_f64());
            min_stage_in = min_stage_in.min(c.record.stage_in.as_secs_f64());
        }
        assert!(
            max_stage_in > 1.5 * min_stage_in,
            "later dispatches should see congestion: {min_stage_in} vs {max_stage_in}"
        );
    }
}
