//! # moteur-gridsim
//!
//! A discrete-event simulator of a 2006-era production grid (EGEE /
//! LCG2), built as the execution substrate for the MOTEUR-RS workflow
//! enactor.
//!
//! The paper's experiments ran on the real EGEE infrastructure, whose
//! defining property for the evaluation is that per-job grid overhead
//! (submission + brokering + batch-queue wait + transfers) is *large* —
//! around ten minutes — and *highly variable*. That variability is
//! exactly why service parallelism pays off beyond data parallelism
//! (paper §3.5.4/§5.2) and why job grouping pays off at all (§3.6).
//! This crate reproduces the mechanism rather than the numbers:
//!
//! - a **user interface** with stochastic submission cost,
//! - a **resource broker** ranking computing elements by *stale*
//!   information-system snapshots (causing realistic herding),
//! - **computing elements** running FIFO batch queues over worker
//!   slots of heterogeneous speed, loaded by Poisson background jobs
//!   from other grid users,
//! - a **network/storage model** (per-transfer latency, bandwidth,
//!   congestion) for stage-in/stage-out,
//! - **failures with resubmission**, the paper's "D0 was submitted
//!   twice because an error occurred".
//!
//! Runs are deterministic per seed: all randomness flows from one
//! seeded xoshiro256++ stream ([`rng::Rng`]).
//!
//! ```
//! use moteur_gridsim::{GridConfig, GridJobSpec, GridSim};
//!
//! let mut sim = GridSim::new(GridConfig::egee_2006(), 42);
//! sim.submit(GridJobSpec::new("crestLines", 90.0).with_files(vec![7_800_000; 2], vec![400_000]));
//! let done = sim.next_completion().unwrap();
//! assert!(done.record.overhead().as_secs_f64() > 0.0);
//! ```

pub mod config;
pub mod event;
pub mod job;
pub mod obs;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use config::{CeConfig, GridConfig, NetworkConfig};
pub use job::{CeId, GridJobCompletion, GridJobSpec, JobId, JobOutcome, JobRecord};
pub use obs::{SimEvent, SimObserver};
pub use rng::{Distribution, Rng};
pub use sim::GridSim;
pub use time::{SimDuration, SimTime};
pub use trace::{percentile, summarize, TraceSummary};
