//! Grid job descriptions, lifecycle records and outcomes.

use crate::time::{SimDuration, SimTime};

/// Identifier of a job inside one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Identifier of a computing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CeId(pub usize);

/// What the caller asks the grid to run.
///
/// `compute_seconds` is the job's duration on a reference-speed worker;
/// the assigned CE's speed factor scales it. File sizes drive the
/// stage-in/stage-out transfer model. The `tag` is opaque to the
/// simulator and lets the enactor correlate completions with workflow
/// invocations.
#[derive(Debug, Clone)]
pub struct GridJobSpec {
    pub name: String,
    pub compute_seconds: f64,
    /// Sizes (bytes) of files staged in before execution.
    pub input_files: Vec<u64>,
    /// Sizes (bytes) of files registered on storage after execution.
    pub output_files: Vec<u64>,
    pub tag: u64,
}

impl GridJobSpec {
    pub fn new(name: impl Into<String>, compute_seconds: f64) -> Self {
        GridJobSpec {
            name: name.into(),
            compute_seconds,
            input_files: Vec::new(),
            output_files: Vec::new(),
            tag: 0,
        }
    }

    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    pub fn with_files(mut self, input: Vec<u64>, output: Vec<u64>) -> Self {
        self.input_files = input;
        self.output_files = output;
        self
    }

    pub fn total_input_bytes(&self) -> u64 {
        self.input_files.iter().sum()
    }

    pub fn total_output_bytes(&self) -> u64 {
        self.output_files.iter().sum()
    }
}

/// Final state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed successfully (possibly after resubmissions).
    Success,
    /// Failed and exhausted its resubmission budget.
    Failed,
}

/// Timestamped record of one job's trip through the grid; the paper's
/// overhead analysis (submission + scheduling + queuing + transfers) is
/// computed from these fields.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: JobId,
    pub name: String,
    pub tag: u64,
    /// When the user interface accepted the job.
    pub submitted_at: SimTime,
    /// When the resource broker picked a CE (last attempt).
    pub matched_at: SimTime,
    /// When the job entered the CE batch queue (last attempt).
    pub enqueued_at: SimTime,
    /// When a worker started executing it (last attempt).
    pub started_at: SimTime,
    /// When execution (incl. stage-out) finished.
    pub finished_at: SimTime,
    /// When the completion became visible to the submitter.
    pub delivered_at: SimTime,
    pub ce: Option<CeId>,
    /// 1 for a job that succeeded first time.
    pub attempts: u32,
    pub stage_in: SimDuration,
    pub compute: SimDuration,
    pub stage_out: SimDuration,
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Total time from submission to delivery.
    pub fn turnaround(&self) -> SimDuration {
        self.delivered_at.since(self.submitted_at)
    }

    /// Grid overhead: everything except the (scaled) compute time —
    /// submission, brokering, queuing, transfers and notification,
    /// accumulated over all attempts.
    pub fn overhead(&self) -> SimDuration {
        self.turnaround() - self.compute
    }

    /// Time spent waiting in batch queues (last attempt only).
    pub fn queue_wait(&self) -> SimDuration {
        self.started_at.since(self.enqueued_at)
    }
}

/// Completion event returned to the submitter.
#[derive(Debug, Clone)]
pub struct GridJobCompletion {
    pub id: JobId,
    pub tag: u64,
    pub outcome: JobOutcome,
    pub delivered_at: SimTime,
    pub record: JobRecord,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            id: JobId(1),
            name: "j".into(),
            tag: 7,
            submitted_at: SimTime::from_secs_f64(0.0),
            matched_at: SimTime::from_secs_f64(10.0),
            enqueued_at: SimTime::from_secs_f64(20.0),
            started_at: SimTime::from_secs_f64(120.0),
            finished_at: SimTime::from_secs_f64(200.0),
            delivered_at: SimTime::from_secs_f64(205.0),
            ce: Some(CeId(0)),
            attempts: 1,
            stage_in: SimDuration::from_secs(5),
            compute: SimDuration::from_secs(70),
            stage_out: SimDuration::from_secs(5),
            outcome: JobOutcome::Success,
        }
    }

    #[test]
    fn turnaround_spans_submit_to_delivery() {
        assert_eq!(record().turnaround(), SimDuration::from_secs(205));
    }

    #[test]
    fn overhead_excludes_compute() {
        assert_eq!(record().overhead(), SimDuration::from_secs(135));
    }

    #[test]
    fn queue_wait_is_enqueue_to_start() {
        assert_eq!(record().queue_wait(), SimDuration::from_secs(100));
    }

    #[test]
    fn spec_byte_totals() {
        let s = GridJobSpec::new("x", 1.0).with_files(vec![10, 20], vec![5]);
        assert_eq!(s.total_input_bytes(), 30);
        assert_eq!(s.total_output_bytes(), 5);
    }
}
