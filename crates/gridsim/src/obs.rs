//! Simulator-side observability: structured lifecycle events.
//!
//! The simulator is a black box to the enactor — completions surface
//! minutes of virtual time after submission with no visibility into
//! brokering, queuing or CE capacity. [`SimEvent`]s open that box: the
//! simulator emits one event per lifecycle transition to an optional
//! observer callback installed with [`crate::GridSim::set_observer`].
//!
//! Design constraints:
//!
//! - **zero cost when off** — every emission site is guarded by an
//!   `is_some()` check and builds the event only when an observer is
//!   installed; the hot path allocates nothing otherwise;
//! - **correlation** — every job event carries both the simulator's
//!   [`JobId`] and the submitter's opaque `tag` (the enactor stores its
//!   invocation id there), so grid-level events join against
//!   enactor-level events without a lookup table;
//! - **no new dependencies** — the observer is a plain boxed `FnMut`.

use crate::job::{CeId, JobId, JobOutcome};
use crate::time::SimTime;

/// One lifecycle transition inside the simulator.
///
/// `at` is always the virtual time at which the transition happened;
/// `tag` is the submitter's correlation id from
/// [`crate::GridJobSpec::with_tag`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The user interface accepted a job.
    JobSubmitted {
        at: SimTime,
        job: JobId,
        tag: u64,
        name: String,
    },
    /// The resource broker matched the job to a computing element.
    JobMatched {
        at: SimTime,
        job: JobId,
        tag: u64,
        ce: CeId,
    },
    /// The job entered a CE batch queue (`attempt` counts from 1).
    JobEnqueued {
        at: SimTime,
        job: JobId,
        tag: u64,
        ce: CeId,
        attempt: u32,
    },
    /// A worker slot started executing the job.
    JobStarted {
        at: SimTime,
        job: JobId,
        tag: u64,
        ce: CeId,
    },
    /// Execution finished (stage-out included) with the given outcome.
    /// A failed attempt with retry budget left is followed by
    /// [`SimEvent::JobResubmitted`] rather than delivery.
    JobFinished {
        at: SimTime,
        job: JobId,
        tag: u64,
        ce: CeId,
        outcome: JobOutcome,
    },
    /// A failed attempt became visible and re-entered the submission
    /// chain (`attempt` is the number of attempts made so far).
    JobResubmitted {
        at: SimTime,
        job: JobId,
        tag: u64,
        attempt: u32,
    },
    /// The completion reached the submitter — terminal.
    JobDelivered {
        at: SimTime,
        job: JobId,
        tag: u64,
        outcome: JobOutcome,
    },
    /// The submitter cancelled the job before delivery — terminal. The
    /// job vanishes from whatever stage of the chain it had reached; a
    /// running attempt drains its worker slot silently.
    JobCancelled { at: SimTime, job: JobId, tag: u64 },
    /// A computing element's occupancy or availability changed.
    /// `queued_user` counts only user (non-background) jobs, so it
    /// returns to zero once a workload drains. `slots` is the CE's
    /// worker-slot capacity, so observers can derive utilization
    /// (`busy / slots`) without a config lookup.
    CeCapacity {
        at: SimTime,
        ce: CeId,
        busy: usize,
        queued: usize,
        queued_user: usize,
        slots: usize,
        up: bool,
    },
    /// A user job started executing and committed its stage-in and
    /// stage-out transfers to the CE's network link. The byte amounts
    /// and transfer durations (congestion included) are known at
    /// dispatch time, so one event carries the whole transfer plan of
    /// the attempt; retried attempts emit again.
    LinkTransfer {
        at: SimTime,
        job: JobId,
        tag: u64,
        ce: CeId,
        bytes_in: u64,
        bytes_out: u64,
        stage_in_secs: f64,
        stage_out_secs: f64,
    },
}

impl SimEvent {
    /// Virtual time of the transition.
    pub fn at(&self) -> SimTime {
        match self {
            SimEvent::JobSubmitted { at, .. }
            | SimEvent::JobMatched { at, .. }
            | SimEvent::JobEnqueued { at, .. }
            | SimEvent::JobStarted { at, .. }
            | SimEvent::JobFinished { at, .. }
            | SimEvent::JobResubmitted { at, .. }
            | SimEvent::JobDelivered { at, .. }
            | SimEvent::JobCancelled { at, .. }
            | SimEvent::CeCapacity { at, .. }
            | SimEvent::LinkTransfer { at, .. } => *at,
        }
    }

    /// The correlation tag, for job events.
    pub fn tag(&self) -> Option<u64> {
        match self {
            SimEvent::JobSubmitted { tag, .. }
            | SimEvent::JobMatched { tag, .. }
            | SimEvent::JobEnqueued { tag, .. }
            | SimEvent::JobStarted { tag, .. }
            | SimEvent::JobFinished { tag, .. }
            | SimEvent::JobResubmitted { tag, .. }
            | SimEvent::JobDelivered { tag, .. }
            | SimEvent::JobCancelled { tag, .. }
            | SimEvent::LinkTransfer { tag, .. } => Some(*tag),
            SimEvent::CeCapacity { .. } => None,
        }
    }

    /// True for the terminal job events: [`SimEvent::JobDelivered`] and
    /// [`SimEvent::JobCancelled`].
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SimEvent::JobDelivered { .. } | SimEvent::JobCancelled { .. }
        )
    }
}

/// Observer callback installed on a [`crate::GridSim`].
pub type SimObserver = Box<dyn FnMut(&SimEvent)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let t = SimTime::from_secs_f64(4.0);
        let e = SimEvent::JobSubmitted {
            at: t,
            job: JobId(1),
            tag: 9,
            name: "j".into(),
        };
        assert_eq!(e.at(), t);
        assert_eq!(e.tag(), Some(9));
        assert!(!e.is_terminal());
        let d = SimEvent::JobDelivered {
            at: t,
            job: JobId(1),
            tag: 9,
            outcome: JobOutcome::Success,
        };
        assert!(d.is_terminal());
        let c = SimEvent::CeCapacity {
            at: t,
            ce: CeId(0),
            busy: 1,
            queued: 2,
            queued_user: 0,
            slots: 4,
            up: true,
        };
        assert_eq!(c.tag(), None);
        assert_eq!(c.at(), t);
        let l = SimEvent::LinkTransfer {
            at: t,
            job: JobId(1),
            tag: 9,
            ce: CeId(0),
            bytes_in: 1_000,
            bytes_out: 500,
            stage_in_secs: 2.0,
            stage_out_secs: 1.0,
        };
        assert_eq!(l.tag(), Some(9));
        assert!(!l.is_terminal());
    }
}
