//! Virtual time for the discrete-event simulator.
//!
//! Time is an integer number of microseconds so that event ordering is
//! exact and runs are bit-reproducible; the paper reports seconds, so
//! conversion helpers to/from `f64` seconds are provided.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time (µs since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

/// Convert non-negative seconds to µs, clamping NaN/negative to 0.
fn secs_to_micros(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        0
    } else {
        (secs * 1e6).round().min(u64::MAX as f64) as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips_at_microsecond_precision() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-6);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_secs_f64(2.5);
        assert!((t.as_secs_f64() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(4.0);
        assert_eq!(b.since(a), SimDuration::from_secs_f64(3.0));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(3);
        assert_eq!(b - a, SimDuration::from_secs(2));
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_secs_f64(1.0) < SimTime::from_secs_f64(1.000001));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(2.0).to_string(), "2.000s");
    }
}
