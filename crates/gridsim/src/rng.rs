//! Deterministic random streams and the non-uniform distributions the
//! grid model needs.
//!
//! The simulator must be bit-reproducible across runs and platforms
//! given a seed, and it needs lognormal / Weibull / exponential samplers
//! that the `rand` crate only provides through `rand_distr`. Both needs
//! are met by a small from-scratch implementation: a splitmix64 seeder
//! feeding xoshiro256++ (public-domain reference algorithms), plus
//! inverse-transform and Box–Muller samplers on top.

/// xoshiro256++ pseudo-random generator, seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream (for per-component RNGs).
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        // 53 high-quality bits → [0,1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi).
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in [0, n). Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires n > 0");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
        // draw, negligible for simulation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (one value per call; the pair's
    /// second value is discarded to keep the stream position simple).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential with the given mean (inverse transform).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Lognormal parameterised by the *location/scale of the underlying
    /// normal* (`mu`, `sigma`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Weibull with scale `lambda` and shape `k` (inverse transform).
    pub fn weibull(&mut self, lambda: f64, k: f64) -> f64 {
        lambda * (-(1.0 - self.uniform()).ln()).powf(1.0 / k)
    }
}

/// A distribution over non-negative durations in seconds, used to
/// configure every stochastic delay in the grid model.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Always the same value.
    Constant(f64),
    /// Uniform in [lo, hi].
    Uniform { lo: f64, hi: f64 },
    /// Normal truncated at zero.
    Normal { mean: f64, std_dev: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Lognormal given the *median* and the shape `sigma` of the
    /// underlying normal. `median = exp(mu)`; the mean is
    /// `median * exp(sigma^2 / 2)`.
    LogNormal { median: f64, sigma: f64 },
    /// Weibull with scale and shape.
    Weibull { scale: f64, shape: f64 },
    /// A two-component mixture: with probability `p_second`, draw from
    /// `second`, else from `first`. Used for "mostly fast, sometimes
    /// very slow" grid behaviour (e.g. resubmitted or blocked jobs).
    Mixture {
        first: Box<Distribution>,
        second: Box<Distribution>,
        p_second: f64,
    },
}

impl Distribution {
    /// Draw a sample; always finite and non-negative.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let v = match self {
            Distribution::Constant(v) => *v,
            Distribution::Uniform { lo, hi } => rng.uniform_range(*lo, *hi),
            Distribution::Normal { mean, std_dev } => rng.normal_ms(*mean, *std_dev),
            Distribution::Exponential { mean } => rng.exponential(*mean),
            Distribution::LogNormal { median, sigma } => rng.lognormal(median.ln(), *sigma),
            Distribution::Weibull { scale, shape } => rng.weibull(*scale, *shape),
            Distribution::Mixture {
                first,
                second,
                p_second,
            } => {
                if rng.chance(*p_second) {
                    second.sample(rng)
                } else {
                    first.sample(rng)
                }
            }
        };
        if v.is_finite() {
            v.max(0.0)
        } else {
            0.0
        }
    }

    /// Analytic mean of the distribution (used by the broker's naive
    /// response-time estimates and by tests).
    pub fn mean(&self) -> f64 {
        match self {
            Distribution::Constant(v) => *v,
            Distribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            // Truncation at zero shifts the mean slightly; the model
            // keeps configurations well above zero so we ignore it.
            Distribution::Normal { mean, .. } => mean.max(0.0),
            Distribution::Exponential { mean } => *mean,
            Distribution::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Distribution::Weibull { scale, shape } => scale * gamma(1.0 + 1.0 / shape),
            Distribution::Mixture {
                first,
                second,
                p_second,
            } => (1.0 - p_second) * first.mean() + p_second * second.mean(),
        }
    }
}

/// Lanczos approximation of the gamma function (needed for the Weibull
/// mean). Accurate to ~1e-13 over the range we use (x > 1).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_810,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653,
        -176.615_029_162_141,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + G + 0.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dist: &Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let mut parent = Rng::new(7);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        let v1 = f1.next_u64();
        let v2 = f2.next_u64();
        assert_ne!(v1, v2);
        assert_ne!(v1, parent.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval_with_correct_mean() {
        let mut rng = Rng::new(1);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 20_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut rng = Rng::new(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.index(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts={counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn index_zero_panics() {
        Rng::new(0).index(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_ms(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Distribution::Exponential { mean: 300.0 };
        assert!((sample_mean(&d, 60_000, 4) - 300.0).abs() < 6.0);
    }

    #[test]
    fn lognormal_median_and_mean_match_parameterisation() {
        let d = Distribution::LogNormal {
            median: 200.0,
            sigma: 0.8,
        };
        let mut rng = Rng::new(5);
        let mut xs: Vec<f64> = (0..40_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[20_000];
        assert!((median - 200.0).abs() < 10.0, "median={median}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean / d.mean() - 1.0).abs() < 0.05,
            "mean={mean} expect={}",
            d.mean()
        );
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        let d = Distribution::Weibull {
            scale: 100.0,
            shape: 1.5,
        };
        assert!((sample_mean(&d, 60_000, 6) / d.mean() - 1.0).abs() < 0.03);
    }

    #[test]
    fn mixture_blends_components() {
        let d = Distribution::Mixture {
            first: Box::new(Distribution::Constant(10.0)),
            second: Box::new(Distribution::Constant(1000.0)),
            p_second: 0.1,
        };
        assert!((d.mean() - 109.0).abs() < 1e-9);
        assert!((sample_mean(&d, 60_000, 7) - 109.0).abs() < 5.0);
    }

    #[test]
    fn samples_are_never_negative_or_nan() {
        let dists = [
            Distribution::Normal {
                mean: 1.0,
                std_dev: 10.0,
            },
            Distribution::Uniform { lo: 0.0, hi: 1.0 },
            Distribution::LogNormal {
                median: 1.0,
                sigma: 2.0,
            },
            Distribution::Weibull {
                scale: 1.0,
                shape: 0.5,
            },
        ];
        let mut rng = Rng::new(8);
        for d in &dists {
            for _ in 0..5_000 {
                let v = d.sample(&mut rng);
                assert!(v.is_finite() && v >= 0.0, "{d:?} produced {v}");
            }
        }
    }

    #[test]
    fn gamma_function_reference_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn chance_probability() {
        let mut rng = Rng::new(9);
        let hits = (0..50_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 50_000.0 - 0.25).abs() < 0.01);
    }
}
