//! Grid model configuration and the presets used by the experiments.

use crate::rng::Distribution;

/// How a computing element's batch scheduler orders its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Strict arrival order, user and background jobs interleaved.
    #[default]
    Fifo,
    /// User (grid-VO) jobs are dispatched before queued background
    /// jobs — a cluster granting the virtual organisation elevated
    /// batch priority.
    UserPriority,
}

/// Periodic maintenance: every `period` seconds the CE stops accepting
/// work for `duration` seconds (running jobs drain gracefully).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Downtime {
    pub period: f64,
    pub duration: f64,
}

/// Configuration of one computing element (a batch-scheduled cluster).
#[derive(Debug, Clone)]
pub struct CeConfig {
    pub name: String,
    /// Number of worker slots.
    pub slots: usize,
    /// Relative worker speed (1.0 = reference machine; compute time is
    /// divided by this).
    pub speed: f64,
    /// Mean inter-arrival time (s) of background (other-user) jobs;
    /// `None` disables background load on this CE.
    pub background_interarrival: Option<Distribution>,
    /// Duration distribution of background jobs.
    pub background_duration: Distribution,
    /// Background jobs already queued when the simulation starts.
    pub initial_backlog: usize,
    /// Batch queue ordering.
    pub discipline: QueueDiscipline,
    /// Optional periodic maintenance windows.
    pub downtime: Option<Downtime>,
    /// Diurnal modulation of the background arrival rate: the rate is
    /// multiplied by `1 + amplitude·sin(2πt/86400)`. 0 disables it.
    pub diurnal_amplitude: f64,
}

impl CeConfig {
    pub fn new(name: impl Into<String>, slots: usize, speed: f64) -> Self {
        CeConfig {
            name: name.into(),
            slots,
            speed,
            background_interarrival: None,
            background_duration: Distribution::Constant(0.0),
            initial_backlog: 0,
            discipline: QueueDiscipline::Fifo,
            downtime: None,
            diurnal_amplitude: 0.0,
        }
    }
}

/// Network and storage model shared by all transfers.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Per-transfer fixed cost (s): SRM negotiation, catalog lookup…
    pub transfer_latency: f64,
    /// Storage-element bandwidth seen by one transfer (bytes/s).
    pub bandwidth: f64,
    /// Transfer slowdown per concurrently running user job
    /// (`effective_time = base * (1 + congestion * active_jobs)`).
    pub congestion: f64,
}

/// Full grid model configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    pub ces: Vec<CeConfig>,
    /// User-interface submission overhead (UI → broker).
    pub submission_overhead: Distribution,
    /// Broker matchmaking delay (broker → CE queue).
    pub match_delay: Distribution,
    /// Delay between job termination and the submitter seeing it.
    pub notify_delay: Distribution,
    /// Probability that an attempt fails at the end of execution.
    pub failure_probability: f64,
    /// Delay before a failure is detected and the job resubmitted.
    pub failure_detection: Distribution,
    /// Resubmission budget after the first attempt.
    pub max_retries: u32,
    pub network: NetworkConfig,
    /// Job duration the broker assumes when ranking CE queues (s).
    pub typical_job_duration: f64,
    /// Period (s) at which the information system refreshes the
    /// broker's view of CE queues; staleness causes herding.
    pub info_refresh_period: f64,
    /// Per-job multiplicative compute-time jitter (sampled once per
    /// attempt), modelling worker heterogeneity inside a CE.
    pub compute_jitter: Distribution,
}

impl GridConfig {
    /// An idealised infinite grid: one enormous CE, zero overheads, no
    /// failures, reference-speed workers. On this backend the enactor's
    /// makespan must match the theoretical model of paper §3.5 exactly.
    pub fn ideal() -> Self {
        GridConfig {
            ces: vec![CeConfig::new("ideal", 1_000_000, 1.0)],
            submission_overhead: Distribution::Constant(0.0),
            match_delay: Distribution::Constant(0.0),
            notify_delay: Distribution::Constant(0.0),
            failure_probability: 0.0,
            failure_detection: Distribution::Constant(0.0),
            max_retries: 0,
            network: NetworkConfig {
                transfer_latency: 0.0,
                bandwidth: f64::INFINITY,
                congestion: 0.0,
            },
            typical_job_duration: 1.0,
            info_refresh_period: 1.0,
            compute_jitter: Distribution::Constant(1.0),
        }
    }

    /// A model of the 2006 EGEE production infrastructure as the paper
    /// describes it: thousands of slots split across many computing
    /// centres, submission/scheduling/queuing overhead of the order of
    /// ten minutes with a ±five-minute spread and a heavy tail
    /// (resubmitted or blocked jobs), multi-user background load, and a
    /// non-negligible failure rate.
    pub fn egee_2006() -> Self {
        let mut ces = Vec::new();
        // A few large, fast centres and many small, loaded ones — the
        // paper's "pool of thousands computing resources assembled in
        // computing centers, each running its internal batch scheduler".
        for i in 0..4 {
            let mut ce = CeConfig::new(format!("large-{i}"), 120, 1.0 + 0.1 * i as f64);
            ce.background_interarrival = Some(Distribution::Exponential { mean: 25.0 });
            ce.background_duration = Distribution::LogNormal {
                median: 1800.0,
                sigma: 1.0,
            };
            ce.initial_backlog = 40;
            ces.push(ce);
        }
        for i in 0..12 {
            let mut ce = CeConfig::new(format!("small-{i}"), 24, 0.7 + 0.05 * (i % 6) as f64);
            ce.background_interarrival = Some(Distribution::Exponential { mean: 90.0 });
            ce.background_duration = Distribution::LogNormal {
                median: 2400.0,
                sigma: 1.1,
            };
            ce.initial_backlog = 15;
            ces.push(ce);
        }
        GridConfig {
            ces,
            // "around 10 minutes and quite variable (± 5 minutes)",
            // split across the submission chain. Medians chosen so the
            // chain's total overhead has median ≈ 8–10 min with a heavy
            // upper tail.
            submission_overhead: Distribution::LogNormal {
                median: 45.0,
                sigma: 0.5,
            },
            match_delay: Distribution::Mixture {
                first: Box::new(Distribution::LogNormal {
                    median: 90.0,
                    sigma: 0.6,
                }),
                // Occasionally the RB is saturated and matching stalls.
                second: Box::new(Distribution::LogNormal {
                    median: 900.0,
                    sigma: 0.5,
                }),
                p_second: 0.05,
            },
            notify_delay: Distribution::LogNormal {
                median: 30.0,
                sigma: 0.5,
            },
            failure_probability: 0.04,
            failure_detection: Distribution::LogNormal {
                median: 600.0,
                sigma: 0.4,
            },
            max_retries: 3,
            network: NetworkConfig {
                // SRM/catalog negotiation dominates small transfers.
                transfer_latency: 8.0,
                bandwidth: 2.0e6, // 2 MB/s per stream, 2006 WAN
                congestion: 0.002,
            },
            typical_job_duration: 600.0,
            info_refresh_period: 240.0,
            compute_jitter: Distribution::Uniform { lo: 0.85, hi: 1.3 },
        }
    }

    /// Total worker slots across the grid.
    pub fn total_slots(&self) -> usize {
        self.ces.iter().map(|c| c.slots).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_grid_has_no_overhead_sources() {
        let c = GridConfig::ideal();
        assert_eq!(c.submission_overhead.mean(), 0.0);
        assert_eq!(c.failure_probability, 0.0);
        assert_eq!(c.ces.len(), 1);
        assert!(c.total_slots() >= 1_000_000);
    }

    #[test]
    fn egee_preset_matches_paper_scale_description() {
        let c = GridConfig::egee_2006();
        // "thousands of computing resources": several hundred slots at
        // least, spread over many centres.
        assert!(c.ces.len() >= 10);
        assert!(c.total_slots() >= 500);
        // Overhead chain mean of the order of minutes.
        let chain_mean =
            c.submission_overhead.mean() + c.match_delay.mean() + c.notify_delay.mean();
        assert!(
            chain_mean > 120.0 && chain_mean < 1200.0,
            "chain mean {chain_mean}"
        );
        assert!(c.failure_probability > 0.0);
    }

    #[test]
    fn all_ces_have_positive_speed_and_slots() {
        for ce in GridConfig::egee_2006().ces {
            assert!(ce.speed > 0.0);
            assert!(ce.slots > 0);
        }
    }
}
