//! Time-ordered event queue.
//!
//! Ties are broken by insertion sequence number so that simulation runs
//! are fully deterministic regardless of `BinaryHeap` internals.

use crate::job::{CeId, JobId};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything that can happen inside the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The user-interface submission delay elapsed; the resource broker
    /// now sees the job.
    BrokerReceives { job: JobId },
    /// The broker's matchmaking delay elapsed; the job enters a CE
    /// batch queue.
    CeReceives { job: JobId, ce: CeId },
    /// A worker slot finished its current occupant.
    WorkerFinishes { ce: CeId, job: Option<JobId> },
    /// A background (other-user) job arrives at a CE queue.
    BackgroundArrival { ce: CeId },
    /// A failed job's failure becomes visible; triggers resubmission.
    FailureDetected { job: JobId },
    /// The completion of a finished job reaches the submitter.
    CompletionDelivered { job: JobId },
    /// The information system republishes CE states to the broker.
    InfoRefresh,
    /// A computing element enters a maintenance window: it stops
    /// starting new jobs (running ones drain gracefully).
    CeDown { ce: CeId },
    /// The maintenance window ends.
    CeUp { ce: CeId },
}

#[derive(Debug, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of scheduled events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue with room for `capacity` events before the first heap
    /// growth — the simulator pre-sizes for its steady-state depth so
    /// the hot loop does not re-allocate while warming up.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), Event::InfoRefresh);
        q.schedule(t(1.0), Event::BrokerReceives { job: JobId(1) });
        q.schedule(t(2.0), Event::BrokerReceives { job: JobId(2) });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(at, _)| at.as_secs_f64())
            .collect();
        assert_eq!(order, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), Event::BrokerReceives { job: JobId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::BrokerReceives { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), Event::InfoRefresh);
        assert_eq!(q.peek_time(), Some(t(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
