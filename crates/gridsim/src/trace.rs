//! Aggregate statistics over job records — the raw material for the
//! paper's overhead discussion (§5.1) and for calibration tests.

use crate::job::{JobOutcome, JobRecord};

/// Summary statistics of a set of job records.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    pub jobs: usize,
    pub failures: usize,
    pub resubmissions: u32,
    pub mean_overhead_secs: f64,
    pub std_overhead_secs: f64,
    /// Overhead distribution tails — the paper stresses that grid
    /// overhead is "quite variable", so the mean alone under-describes
    /// it.
    pub p50_overhead_secs: f64,
    pub p95_overhead_secs: f64,
    pub p99_overhead_secs: f64,
    pub mean_queue_wait_secs: f64,
    pub mean_compute_secs: f64,
    /// Time of the last delivery (the campaign makespan when all jobs
    /// belong to one run).
    pub makespan_secs: f64,
}

/// Linearly-interpolated percentile of an unsorted sample (`q` in
/// `[0, 1]`). Deterministic on every input: empty yields `0.0`, a
/// single sample is every percentile of itself, and NaNs order via IEEE
/// `totalOrder` (after all finite values) instead of destabilising the
/// sort.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Compute a [`TraceSummary`] over records (empty input → all zeros).
pub fn summarize(records: &[JobRecord]) -> TraceSummary {
    if records.is_empty() {
        return TraceSummary {
            jobs: 0,
            failures: 0,
            resubmissions: 0,
            mean_overhead_secs: 0.0,
            std_overhead_secs: 0.0,
            p50_overhead_secs: 0.0,
            p95_overhead_secs: 0.0,
            p99_overhead_secs: 0.0,
            mean_queue_wait_secs: 0.0,
            mean_compute_secs: 0.0,
            makespan_secs: 0.0,
        };
    }
    let n = records.len() as f64;
    let overheads: Vec<f64> = records.iter().map(|r| r.overhead().as_secs_f64()).collect();
    let mean_overhead = overheads.iter().sum::<f64>() / n;
    let var = overheads
        .iter()
        .map(|o| (o - mean_overhead) * (o - mean_overhead))
        .sum::<f64>()
        / n;
    TraceSummary {
        jobs: records.len(),
        failures: records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Failed)
            .count(),
        resubmissions: records.iter().map(|r| r.attempts.saturating_sub(1)).sum(),
        mean_overhead_secs: mean_overhead,
        std_overhead_secs: var.sqrt(),
        p50_overhead_secs: percentile(&overheads, 0.50),
        p95_overhead_secs: percentile(&overheads, 0.95),
        p99_overhead_secs: percentile(&overheads, 0.99),
        mean_queue_wait_secs: records
            .iter()
            .map(|r| r.queue_wait().as_secs_f64())
            .sum::<f64>()
            / n,
        mean_compute_secs: records.iter().map(|r| r.compute.as_secs_f64()).sum::<f64>() / n,
        makespan_secs: records
            .iter()
            .map(|r| r.delivered_at.as_secs_f64())
            .fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CeId, JobId};
    use crate::time::{SimDuration, SimTime};

    fn rec(submit: f64, deliver: f64, compute: f64, attempts: u32, ok: bool) -> JobRecord {
        JobRecord {
            id: JobId(0),
            name: "j".into(),
            tag: 0,
            submitted_at: SimTime::from_secs_f64(submit),
            matched_at: SimTime::from_secs_f64(submit),
            enqueued_at: SimTime::from_secs_f64(submit),
            started_at: SimTime::from_secs_f64(submit + 10.0),
            finished_at: SimTime::from_secs_f64(deliver),
            delivered_at: SimTime::from_secs_f64(deliver),
            ce: Some(CeId(0)),
            attempts,
            stage_in: SimDuration::ZERO,
            compute: SimDuration::from_secs_f64(compute),
            stage_out: SimDuration::ZERO,
            outcome: if ok {
                JobOutcome::Success
            } else {
                JobOutcome::Failed
            },
        }
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.makespan_secs, 0.0);
    }

    #[test]
    fn summary_counts_and_means() {
        let records = vec![
            rec(0.0, 100.0, 60.0, 1, true),
            rec(0.0, 200.0, 60.0, 2, true),
            rec(0.0, 300.0, 60.0, 3, false),
        ];
        let s = summarize(&records);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.failures, 1);
        assert_eq!(s.resubmissions, 3); // 0 + 1 + 2
        assert!((s.mean_compute_secs - 60.0).abs() < 1e-9);
        // Overheads: 40, 140, 240 → mean 140.
        assert!((s.mean_overhead_secs - 140.0).abs() < 1e-9);
        assert!((s.makespan_secs - 300.0).abs() < 1e-9);
        assert!((s.mean_queue_wait_secs - 10.0).abs() < 1e-9);
        let expected_std = (((100.0f64).powi(2) * 2.0) / 3.0).sqrt();
        assert!((s.std_overhead_secs - expected_std).abs() < 1e-9);
        // Overheads 40/140/240: median interpolates to 140.
        assert!((s.p50_overhead_secs - 140.0).abs() < 1e-9);
        assert!(s.p95_overhead_secs <= s.p99_overhead_secs);
        assert!(s.p99_overhead_secs <= 240.0);
    }

    #[test]
    fn percentile_interpolates_and_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let v = [4.0, 1.0, 3.0, 2.0]; // sorted: 1 2 3 4
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_zero_one_and_two_samples_are_deterministic() {
        // 0 samples: every quantile is the 0.0 sentinel, never NaN.
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert_eq!(percentile(&[], q), 0.0);
        }
        // 1 sample: every quantile is that sample, even out-of-range q.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(percentile(&[42.5], q), 42.5);
        }
        // 2 samples: straight line between them, clamped outside [0,1].
        let two = [10.0, 20.0];
        assert_eq!(percentile(&two, 0.0), 10.0);
        assert_eq!(percentile(&two, -1.0), 10.0);
        assert!((percentile(&two, 0.5) - 15.0).abs() < 1e-12);
        assert!((percentile(&two, 0.25) - 12.5).abs() < 1e-12);
        assert_eq!(percentile(&two, 1.0), 20.0);
        assert_eq!(percentile(&two, 5.0), 20.0);
    }

    #[test]
    fn percentile_is_stable_under_nan_samples() {
        // NaNs sort last under totalOrder, so the finite quantiles of
        // any permutation agree — the sort cannot destabilise.
        let a = [f64::NAN, 1.0, 3.0, 2.0];
        let b = [3.0, 2.0, f64::NAN, 1.0];
        for q in [0.0, 0.3, 2.0 / 3.0] {
            let pa = percentile(&a, q);
            let pb = percentile(&b, q);
            assert!(pa == pb && pa.is_finite(), "q={q}: {pa} vs {pb}");
        }
        assert!((percentile(&a, 2.0 / 3.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_record_summary_is_deterministic() {
        let s = summarize(&[rec(0.0, 100.0, 60.0, 1, true)]);
        assert_eq!(s.jobs, 1);
        assert_eq!(s.std_overhead_secs, 0.0);
        // All overhead percentiles collapse to the single overhead (40).
        assert!((s.p50_overhead_secs - 40.0).abs() < 1e-9);
        assert!((s.p95_overhead_secs - 40.0).abs() < 1e-9);
        assert!((s.p99_overhead_secs - 40.0).abs() < 1e-9);
        assert!(s.p50_overhead_secs.is_finite());
    }

    #[test]
    fn two_record_summary_interpolates_percentiles() {
        let s = summarize(&[
            rec(0.0, 100.0, 60.0, 1, true),
            rec(0.0, 200.0, 60.0, 1, true),
        ]);
        // Overheads 40 and 140.
        assert!((s.p50_overhead_secs - 90.0).abs() < 1e-9);
        assert!((s.p95_overhead_secs - 135.0).abs() < 1e-9);
        assert!((s.p99_overhead_secs - 139.0).abs() < 1e-9);
    }
}
