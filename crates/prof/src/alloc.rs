//! Opt-in counting global allocator.
//!
//! This is the single module in the workspace allowed to contain
//! `unsafe` code: forwarding [`GlobalAlloc`] to the system allocator
//! while bumping process-wide counters. Binaries opt in with the
//! (safe) static declaration:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: moteur_prof::alloc::CountingAlloc = moteur_prof::alloc::CountingAlloc;
//! ```
//!
//! When no binary installs it, every counter stays at zero and the
//! profiler's allocation columns read 0 — deliberately, so the
//! canonical profile JSON of the uninstrumented binaries stays
//! deterministic. The counters are relaxed atomics: totals are exact,
//! only inter-thread ordering is unspecified.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: usize) {
    // Saturating: a dealloc of memory allocated before the counters
    // were first read must not wrap the live gauge.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(size as u64))
    });
}

/// Cumulative allocation count since process start (0 when the
/// counting allocator is not installed).
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Cumulative allocated bytes since process start.
pub fn allocated_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Currently live heap bytes. Sampling this around a phase isolates
/// that phase's retained footprint, which the process-wide
/// [`peak_bytes`] high-water mark cannot do.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// `(allocs, allocated_bytes)` in one call — what [`crate::Prof`]
/// snapshots at scope entry/exit.
pub fn totals() -> (u64, u64) {
    (allocs(), allocated_bytes())
}

/// Whether the counting allocator appears to be installed: true once
/// any allocation has been observed. (The declaring binary allocates
/// long before user code runs, so by `main` this is reliable.)
pub fn installed() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

/// Counting wrapper over the system allocator. Install via
/// `#[global_allocator]` (see module docs); construction is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter updates touch no allocator
// state and cannot themselves allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Accounted as dealloc(old) + alloc(new): the cumulative
            // counters then track total traffic, and the live gauge
            // nets out to the size delta.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}
