//! # moteur-prof
//!
//! A deterministic, always-compiled self-profiler for the enactor and
//! the grid simulator: scoped RAII timers over a *fixed* set of
//! subsystems, with call counts, inclusive wall-time totals and
//! allocation accounting (when the [`alloc::CountingAlloc`] global
//! allocator is installed by the binary — see the module docs).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** [`Prof::off`] carries no state; taking a
//!    [`ProfScope`] on a disabled handle is one branch — no clock read,
//!    no atomics, no allocation. The profiler is always compiled in
//!    (no feature flags), so instrumentation sites never rot.
//! 2. **Deterministic canonical output.** The subsystem set is a closed
//!    enum with a fixed order; call counts and call-path counts are
//!    functions of the (seed-deterministic) program, never of the
//!    machine. Wall-clock durations and allocator figures are *measured*
//!    and therefore excluded from the canonical JSON document (see
//!    [`ProfReport`]) — they surface in the human hot-spot table, the
//!    collapsed-stack export and the OpenMetrics counters instead.
//! 3. **Cheap when on.** Slots are relaxed atomics; a scope costs two
//!    monotonic clock reads plus a handful of uncontended atomic adds.
//!
//! Timers are *inclusive*: a `provenance_key` scope entered inside the
//! `enactor_loop` scope counts toward both. The per-path table (used by
//! the collapsed-stack export) keeps the nesting exact, so exclusive
//! time can be recovered by subtracting children from parents.

pub mod alloc;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The instrumented subsystems. A closed set: adding a variant is an
/// API change (extend [`Subsystem::ALL`] and [`Subsystem::name`]), which
/// keeps every export stable and every report comparable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    /// The enactor's fire/wait/route event loop, inclusive of all work
    /// below it.
    EnactorLoop,
    /// Firing phase: matching tokens, composing jobs, submission.
    Fire,
    /// The simulator broker's `pick_ce` matchmaking scan.
    PickCe,
    /// `provenance_key` hashing (value bytes + serialised history tree).
    ProvenanceKey,
    /// Data-manager store operations: probe, lookup, insert, save/load.
    StoreIo,
    /// The discrete-event queue: scheduling and popping events.
    EventQueue,
    /// Simulator event dispatch (one popped event, handling included).
    SimStep,
    /// Fan-out of trace events into the attached sinks (JSONL, metrics,
    /// spans, timeline).
    Sinks,
}

impl Subsystem {
    /// Every subsystem, in canonical report order.
    pub const ALL: [Subsystem; 8] = [
        Subsystem::EnactorLoop,
        Subsystem::Fire,
        Subsystem::PickCe,
        Subsystem::ProvenanceKey,
        Subsystem::StoreIo,
        Subsystem::EventQueue,
        Subsystem::SimStep,
        Subsystem::Sinks,
    ];

    /// Stable snake_case name used in every export.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::EnactorLoop => "enactor_loop",
            Subsystem::Fire => "fire",
            Subsystem::PickCe => "pick_ce",
            Subsystem::ProvenanceKey => "provenance_key",
            Subsystem::StoreIo => "store_io",
            Subsystem::EventQueue => "event_queue",
            Subsystem::SimStep => "sim_step",
            Subsystem::Sinks => "sinks",
        }
    }

    /// Inverse of [`Subsystem::name`].
    pub fn from_name(name: &str) -> Option<Subsystem> {
        Subsystem::ALL.iter().copied().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }

    fn from_index(i: usize) -> Option<Subsystem> {
        Subsystem::ALL.get(i).copied()
    }
}

const N_SUBSYSTEMS: usize = Subsystem::ALL.len();

/// One subsystem's accumulators. Relaxed atomics: totals are exact (no
/// sample loss), only cross-slot ordering is unspecified, which a
/// post-run snapshot never observes.
#[derive(Debug, Default)]
struct Slot {
    calls: AtomicU64,
    wall_nanos: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
}

/// Per-call-path accumulators, keyed by the packed path.
#[derive(Debug, Default, Clone, Copy)]
struct PathStat {
    calls: u64,
    wall_nanos: u64,
}

#[derive(Debug)]
struct ProfInner {
    slots: [Slot; N_SUBSYSTEMS],
    /// Packed call path → stats. `BTreeMap` so snapshots iterate in a
    /// deterministic order regardless of discovery order.
    paths: Mutex<BTreeMap<u64, PathStat>>,
}

thread_local! {
    /// The current call path on this thread, packed one byte per level
    /// (`subsystem index + 1`, outermost in the most significant
    /// occupied byte). Shared by all [`Prof`] handles; guards save and
    /// restore it, so interleaved profilers stay correct.
    static CURRENT_PATH: Cell<u64> = const { Cell::new(0) };
}

/// Maximum tracked nesting depth (one byte per level in the packed
/// path). Deeper scopes still count toward their subsystem totals; only
/// the path table saturates.
const MAX_DEPTH: u32 = 8;

fn push_path(path: u64, subsystem: Subsystem) -> u64 {
    if path >> ((MAX_DEPTH - 1) * 8) != 0 {
        // Saturated: keep the existing path rather than corrupting it.
        return path;
    }
    (path << 8) | (subsystem.index() as u64 + 1)
}

/// Unpack a path into subsystem names, outermost first.
fn unpack_path(mut path: u64) -> Vec<&'static str> {
    let mut rev = Vec::new();
    while path != 0 {
        let idx = (path & 0xff) as usize;
        if let Some(s) = Subsystem::from_index(idx - 1) {
            rev.push(s.name());
        }
        path >>= 8;
    }
    rev.reverse();
    rev
}

/// Cheap cloneable profiler handle, mirroring the `Obs` idiom: a
/// disabled handle ([`Prof::off`]) makes every instrumentation site a
/// single branch.
#[derive(Debug, Clone, Default)]
pub struct Prof {
    inner: Option<Arc<ProfInner>>,
}

impl Prof {
    /// Profiling disabled: scopes are no-ops, reports are empty.
    pub fn off() -> Prof {
        Prof { inner: None }
    }

    /// Profiling enabled with fresh counters.
    pub fn enabled() -> Prof {
        Prof {
            inner: Some(Arc::new(ProfInner {
                slots: Default::default(),
                paths: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Enter `subsystem`: returns an RAII guard that accumulates the
    /// scope's call count, inclusive wall time and allocator deltas on
    /// drop. On a disabled handle this is a no-op (no clock read).
    #[inline]
    pub fn scope(&self, subsystem: Subsystem) -> ProfScope<'_> {
        match &self.inner {
            None => ProfScope { active: None },
            Some(inner) => {
                let prev_path = CURRENT_PATH.with(Cell::get);
                let path = push_path(prev_path, subsystem);
                CURRENT_PATH.with(|c| c.set(path));
                let (start_allocs, start_bytes) = alloc::totals();
                ProfScope {
                    active: Some(ActiveScope {
                        inner,
                        subsystem,
                        start: Instant::now(),
                        start_allocs,
                        start_bytes,
                        prev_path,
                        path,
                    }),
                }
            }
        }
    }

    /// Record `calls` completed invocations of `subsystem` totalling
    /// `wall_nanos`, attributed one level below the current call path,
    /// without opening a scope per invocation.
    ///
    /// Hot loops use this instead of [`Prof::scope`]: the simulator
    /// dispatches millions of events per second, and a scope per event
    /// would spend more time reading the clock and updating the path
    /// table than stepping the simulation. The enclosing drain loop
    /// opens one real scope (which carries the wall time and the
    /// allocator deltas) and batch-counts its iterations through here.
    pub fn add_batch(&self, subsystem: Subsystem, calls: u64, wall_nanos: u64) {
        let Some(inner) = &self.inner else { return };
        if calls == 0 && wall_nanos == 0 {
            return;
        }
        let slot = &inner.slots[subsystem.index()];
        slot.calls.fetch_add(calls, Ordering::Relaxed);
        slot.wall_nanos.fetch_add(wall_nanos, Ordering::Relaxed);
        let path = push_path(CURRENT_PATH.with(Cell::get), subsystem);
        let mut paths = inner.paths.lock().expect("prof path lock poisoned");
        let stat = paths.entry(path).or_default();
        stat.calls += calls;
        stat.wall_nanos += wall_nanos;
    }

    /// Snapshot the counters into an immutable report.
    pub fn report(&self) -> ProfReport {
        let Some(inner) = &self.inner else {
            return ProfReport::default();
        };
        let subsystems = Subsystem::ALL
            .iter()
            .map(|&s| {
                let slot = &inner.slots[s.index()];
                SubsystemStat {
                    subsystem: s,
                    calls: slot.calls.load(Ordering::Relaxed),
                    wall_nanos: slot.wall_nanos.load(Ordering::Relaxed),
                    allocs: slot.allocs.load(Ordering::Relaxed),
                    alloc_bytes: slot.alloc_bytes.load(Ordering::Relaxed),
                }
            })
            .collect();
        let paths = inner
            .paths
            .lock()
            .expect("prof path lock poisoned")
            .iter()
            .map(|(&packed, &stat)| PathEntry {
                stack: unpack_path(packed).join(";"),
                calls: stat.calls,
                wall_nanos: stat.wall_nanos,
            })
            .collect();
        ProfReport { subsystems, paths }
    }
}

struct ActiveScope<'a> {
    inner: &'a ProfInner,
    subsystem: Subsystem,
    start: Instant,
    start_allocs: u64,
    start_bytes: u64,
    prev_path: u64,
    path: u64,
}

impl std::fmt::Debug for ActiveScope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveScope")
            .field("subsystem", &self.subsystem)
            .finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Prof::scope`]; accumulates on drop.
#[derive(Debug)]
pub struct ProfScope<'a> {
    active: Option<ActiveScope<'a>>,
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        let Some(scope) = self.active.take() else {
            return;
        };
        let nanos = u64::try_from(scope.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (allocs, bytes) = alloc::totals();
        let slot = &scope.inner.slots[scope.subsystem.index()];
        slot.calls.fetch_add(1, Ordering::Relaxed);
        slot.wall_nanos.fetch_add(nanos, Ordering::Relaxed);
        slot.allocs
            .fetch_add(allocs.saturating_sub(scope.start_allocs), Ordering::Relaxed);
        slot.alloc_bytes
            .fetch_add(bytes.saturating_sub(scope.start_bytes), Ordering::Relaxed);
        CURRENT_PATH.with(|c| c.set(scope.prev_path));
        let mut paths = scope.inner.paths.lock().expect("prof path lock poisoned");
        let stat = paths.entry(scope.path).or_default();
        stat.calls += 1;
        stat.wall_nanos += nanos;
    }
}

/// Measured totals of one subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsystemStat {
    pub subsystem: Subsystem,
    pub calls: u64,
    /// Inclusive wall time (measured; excluded from the canonical JSON).
    pub wall_nanos: u64,
    /// Allocations observed while the scope was open (0 unless the
    /// counting allocator is installed).
    pub allocs: u64,
    pub alloc_bytes: u64,
}

/// One nesting path (`"enactor_loop;fire;pick_ce"`) with its totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEntry {
    pub stack: String,
    pub calls: u64,
    pub wall_nanos: u64,
}

/// A point-in-time snapshot of a [`Prof`]. Rendering lives here (human
/// table, collapsed stacks); the canonical JSON codec lives in
/// `moteur::obs::prof`, next to the JSON parser.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfReport {
    /// One entry per [`Subsystem`], in [`Subsystem::ALL`] order.
    pub subsystems: Vec<SubsystemStat>,
    /// Call paths sorted by packed path value (deterministic).
    pub paths: Vec<PathEntry>,
}

impl ProfReport {
    /// Total measured wall nanos across root scopes (paths of depth 1),
    /// the denominator for per-subsystem fractions.
    pub fn root_wall_nanos(&self) -> u64 {
        self.paths
            .iter()
            .filter(|p| !p.stack.contains(';'))
            .map(|p| p.wall_nanos)
            .sum()
    }

    /// Wall-time fraction of one subsystem relative to the root total;
    /// 0 when nothing was measured.
    pub fn fraction(&self, subsystem: Subsystem) -> f64 {
        let total = self.root_wall_nanos();
        if total == 0 {
            return 0.0;
        }
        let mine = self
            .subsystems
            .iter()
            .find(|s| s.subsystem == subsystem)
            .map_or(0, |s| s.wall_nanos);
        mine as f64 / total as f64
    }

    /// The sorted hot-spot table (wall-time descending, zero-call
    /// subsystems omitted).
    pub fn render_table(&self) -> String {
        let mut rows: Vec<&SubsystemStat> =
            self.subsystems.iter().filter(|s| s.calls > 0).collect();
        rows.sort_by(|a, b| {
            b.wall_nanos
                .cmp(&a.wall_nanos)
                .then(a.subsystem.cmp(&b.subsystem))
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "prof: subsystem hot spots (inclusive wall time)\n  {:<16} {:>12} {:>12} {:>8} {:>12} {:>12}",
            "subsystem", "calls", "wall_ms", "share", "allocs", "alloc_kb"
        );
        for s in rows {
            let _ = writeln!(
                out,
                "  {:<16} {:>12} {:>12.3} {:>7.1}% {:>12} {:>12.1}",
                s.subsystem.name(),
                s.calls,
                s.wall_nanos as f64 / 1e6,
                self.fraction(s.subsystem) * 100.0,
                s.allocs,
                s.alloc_bytes as f64 / 1024.0,
            );
        }
        out
    }

    /// Collapsed-stack export, one `frame;frame;... weight` line per
    /// call path with *exclusive* wall nanos as the weight —
    /// `inferno`/`flamegraph.pl` consume this directly. Every frame is
    /// prefixed with a `moteur` root so independent runs collapse into
    /// one flame graph.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for entry in &self.paths {
            // Exclusive weight: subtract the wall time of the entry's
            // direct children (paths extending it by one frame).
            let prefix = format!("{};", entry.stack);
            let children: u64 = self
                .paths
                .iter()
                .filter(|p| p.stack.starts_with(&prefix) && !p.stack[prefix.len()..].contains(';'))
                .map(|p| p.wall_nanos)
                .sum();
            let exclusive = entry.wall_nanos.saturating_sub(children);
            let _ = writeln!(out, "moteur;{} {exclusive}", entry.stack);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prof_counts_nothing() {
        let prof = Prof::off();
        {
            let _a = prof.scope(Subsystem::EnactorLoop);
            let _b = prof.scope(Subsystem::PickCe);
        }
        assert!(!prof.is_enabled());
        let report = prof.report();
        assert!(report.subsystems.is_empty());
        assert!(report.paths.is_empty());
        assert_eq!(report.root_wall_nanos(), 0);
    }

    #[test]
    fn scopes_count_calls_and_nesting() {
        let prof = Prof::enabled();
        for _ in 0..3 {
            let _outer = prof.scope(Subsystem::EnactorLoop);
            for _ in 0..2 {
                let _inner = prof.scope(Subsystem::PickCe);
            }
        }
        let report = prof.report();
        let stat = |s: Subsystem| {
            report
                .subsystems
                .iter()
                .find(|x| x.subsystem == s)
                .copied()
                .unwrap()
        };
        assert_eq!(stat(Subsystem::EnactorLoop).calls, 3);
        assert_eq!(stat(Subsystem::PickCe).calls, 6);
        assert_eq!(stat(Subsystem::Fire).calls, 0);
        // Paths: the root and the nested pair.
        let stacks: Vec<(&str, u64)> = report
            .paths
            .iter()
            .map(|p| (p.stack.as_str(), p.calls))
            .collect();
        assert_eq!(
            stacks,
            vec![("enactor_loop", 3), ("enactor_loop;pick_ce", 6)]
        );
        // The root total excludes nested paths.
        assert_eq!(
            report.root_wall_nanos(),
            report.paths[0].wall_nanos,
            "only depth-1 paths are roots"
        );
    }

    #[test]
    fn sibling_scopes_do_not_inherit_each_other() {
        let prof = Prof::enabled();
        {
            let _a = prof.scope(Subsystem::Fire);
        }
        {
            let _b = prof.scope(Subsystem::Sinks);
        }
        let report = prof.report();
        let stacks: Vec<&str> = report.paths.iter().map(|p| p.stack.as_str()).collect();
        assert_eq!(stacks, vec!["fire", "sinks"]);
    }

    #[test]
    fn collapsed_export_uses_exclusive_weights() {
        let prof = Prof::enabled();
        {
            let _outer = prof.scope(Subsystem::EnactorLoop);
            let _inner = prof.scope(Subsystem::ProvenanceKey);
        }
        let report = prof.report();
        let collapsed = report.render_collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("moteur;enactor_loop "));
        assert!(lines[1].starts_with("moteur;enactor_loop;provenance_key "));
        let weight = |line: &str| -> u64 { line.rsplit(' ').next().unwrap().parse().unwrap() };
        let outer = report.paths[0].wall_nanos;
        let inner = report.paths[1].wall_nanos;
        assert_eq!(weight(lines[0]), outer - inner);
        assert_eq!(weight(lines[1]), inner);
    }

    #[test]
    fn table_renders_nonzero_rows_sorted_by_wall() {
        let prof = Prof::enabled();
        {
            let _s = prof.scope(Subsystem::StoreIo);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _s = prof.scope(Subsystem::PickCe);
        }
        let table = prof.report().render_table();
        let store = table.find("store_io").unwrap();
        let pick = table.find("pick_ce").unwrap();
        assert!(store < pick, "slower subsystem listed first:\n{table}");
        assert!(!table.contains("event_queue"), "zero rows omitted");
    }

    #[test]
    fn batch_counts_attribute_under_the_enclosing_scope() {
        let prof = Prof::enabled();
        {
            let _drain = prof.scope(Subsystem::EventQueue);
            prof.add_batch(Subsystem::SimStep, 1000, 0);
        }
        prof.add_batch(Subsystem::SimStep, 0, 0); // no-op
        let report = prof.report();
        let steps = report
            .subsystems
            .iter()
            .find(|s| s.subsystem == Subsystem::SimStep)
            .unwrap();
        assert_eq!(steps.calls, 1000);
        assert_eq!(steps.wall_nanos, 0);
        let nested = report
            .paths
            .iter()
            .find(|p| p.stack == "event_queue;sim_step")
            .expect("batch lands below the open scope");
        assert_eq!(nested.calls, 1000);
        // A disabled handle swallows batches like it swallows scopes.
        Prof::off().add_batch(Subsystem::SimStep, 5, 5);
        assert!(Prof::off().report().subsystems.is_empty());
    }

    #[test]
    fn subsystem_names_round_trip() {
        for s in Subsystem::ALL {
            assert_eq!(Subsystem::from_name(s.name()), Some(s));
        }
        assert_eq!(Subsystem::from_name("nope"), None);
    }

    #[test]
    fn deep_nesting_saturates_instead_of_corrupting() {
        let prof = Prof::enabled();
        fn recurse(prof: &Prof, depth: u32) {
            if depth == 0 {
                return;
            }
            let _s = prof.scope(Subsystem::Fire);
            recurse(prof, depth - 1);
        }
        recurse(&prof, MAX_DEPTH + 4);
        let report = prof.report();
        let fire = report
            .subsystems
            .iter()
            .find(|s| s.subsystem == Subsystem::Fire)
            .unwrap();
        assert_eq!(fire.calls, u64::from(MAX_DEPTH) + 4);
        // The path table holds at most MAX_DEPTH levels.
        let deepest = report
            .paths
            .iter()
            .map(|p| p.stack.matches(';').count() + 1)
            .max()
            .unwrap();
        assert_eq!(deepest, MAX_DEPTH as usize);
    }
}
