//! Fault-injection benchmark: the Bronze-Standard campaign under an
//! unreliable grid, enacted once per fault-tolerance strategy.
//!
//! The grid is `egee_2006` with its middleware-level resubmission
//! disabled (`max_retries = 0`), so every failure — at the configured
//! `failure_probability`, ≥ the preset's 4% — surfaces to the enactor
//! and the retry policies actually differ. Three strategies compete:
//!
//! - **naive** — the legacy enactor: immediate fixed resubmission, no
//!   timeout. An RB-saturation stall (the 5% long-tail match delay) or
//!   a slow failure detection holds the whole makespan hostage.
//! - **backoff** — exponential backoff between resubmissions. Kinder
//!   to the broker under correlated failure bursts, but each retry
//!   waits, so the makespan is not expected to improve.
//! - **timeout+replication** — a percentile-adaptive timeout declares
//!   outliers and races a speculative replica against each (first
//!   completion wins). This is the strategy that should beat naive.
//!
//! `BENCH_faults.json` records the per-strategy makespans and the
//! timeout/replica/resubmission traffic; the CI gate requires
//! `timeout+replication` to beat `naive` on mean makespan.

use crate::bronze::{bronze_inputs, bronze_workflow};
use moteur::obs::json::{self, JsonObject};
use moteur::{
    run_fault_tolerant, EnactorConfig, FtConfig, FtPolicy, MoteurError, Obs, RetryPolicy,
    RingBufferSink, SimBackend, TimeoutAction, TimeoutPolicy,
};
use moteur_gridsim::GridConfig;

/// Schema tag of [`render_faults_json`].
pub const FAULTS_SCHEMA: &str = "moteur-bench/faults/v1";

/// The competing fault-tolerance strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStrategy {
    Naive,
    Backoff,
    TimeoutReplication,
}

impl FaultStrategy {
    pub const ALL: [FaultStrategy; 3] = [
        FaultStrategy::Naive,
        FaultStrategy::Backoff,
        FaultStrategy::TimeoutReplication,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultStrategy::Naive => "naive",
            FaultStrategy::Backoff => "backoff",
            FaultStrategy::TimeoutReplication => "timeout+replication",
        }
    }

    /// The enactor configuration this strategy stands for.
    pub fn ft_config(self) -> FtConfig {
        let policy = match self {
            FaultStrategy::Naive => FtPolicy::fixed(3),
            FaultStrategy::Backoff => FtPolicy {
                retry: RetryPolicy::ExponentialBackoff {
                    max_retries: 3,
                    base_delay: 30.0,
                    factor: 2.0,
                    max_delay: 300.0,
                },
                timeout: TimeoutPolicy::None,
                on_timeout: TimeoutAction::Resubmit,
            },
            FaultStrategy::TimeoutReplication => FtPolicy {
                retry: RetryPolicy::Fixed { max_retries: 3 },
                // 2 × the observed p75: tight enough to catch the RB
                // stalls and slow failure detections, loose enough that
                // ordinary queueing noise never trips it. Warm-up
                // (fallback ∞) leaves the first completions untimed.
                timeout: TimeoutPolicy::Adaptive {
                    percentile: 0.75,
                    multiplier: 2.0,
                    min_samples: 3,
                    fallback: f64::INFINITY,
                },
                on_timeout: TimeoutAction::Replicate { max_replicas: 2 },
            },
        };
        // Quarantine instead of aborting so one astronomically unlucky
        // item cannot void a whole campaign; the report counts them.
        FtConfig::from_legacy(3)
            .with_default(policy)
            .with_continue_on_error(true)
    }
}

/// What one strategy did over all repeats.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    pub strategy: &'static str,
    pub makespans_secs: Vec<f64>,
    pub mean_makespan_secs: f64,
    pub max_makespan_secs: f64,
    /// Totals across all repeats.
    pub jobs_submitted: usize,
    pub timeouts: u64,
    pub replicas: u64,
    pub resubmissions: u64,
    pub quarantined: usize,
}

/// Campaign shape: size, seeds, and how unreliable the grid is.
#[derive(Debug, Clone)]
pub struct FaultsSpec {
    pub n_data: usize,
    pub seed: u64,
    pub repeats: usize,
    /// Per-attempt failure probability (the `egee_2006` preset is 4%).
    pub failure_probability: f64,
}

impl Default for FaultsSpec {
    fn default() -> Self {
        FaultsSpec {
            n_data: 6,
            seed: 2006,
            repeats: 5,
            failure_probability: GridConfig::egee_2006().failure_probability,
        }
    }
}

impl FaultsSpec {
    /// The grid under test: `egee_2006` with middleware resubmission
    /// disabled so every failure reaches the enactor.
    fn grid(&self) -> GridConfig {
        let mut grid = GridConfig::egee_2006();
        grid.failure_probability = self.failure_probability;
        grid.max_retries = 0;
        grid
    }
}

/// The full campaign result (`BENCH_faults.json`).
#[derive(Debug, Clone)]
pub struct FaultsReport {
    pub spec: FaultsSpec,
    /// One outcome per strategy, in [`FaultStrategy::ALL`] order.
    pub outcomes: Vec<StrategyOutcome>,
}

impl FaultsReport {
    pub fn outcome(&self, strategy: &str) -> Option<&StrategyOutcome> {
        self.outcomes.iter().find(|o| o.strategy == strategy)
    }

    /// The gate predicate: speculative replication must beat the legacy
    /// strategy on mean makespan, and nothing may be quarantined.
    pub fn ok(&self) -> bool {
        let (Some(naive), Some(repl)) = (
            self.outcome(FaultStrategy::Naive.name()),
            self.outcome(FaultStrategy::TimeoutReplication.name()),
        ) else {
            return false;
        };
        repl.mean_makespan_secs < naive.mean_makespan_secs
            && self.outcomes.iter().all(|o| o.quarantined == 0)
    }

    /// `naive_mean / replication_mean` — headline speed-up.
    pub fn replication_speedup(&self) -> f64 {
        match (
            self.outcome(FaultStrategy::Naive.name()),
            self.outcome(FaultStrategy::TimeoutReplication.name()),
        ) {
            (Some(n), Some(r)) if r.mean_makespan_secs > 0.0 => {
                n.mean_makespan_secs / r.mean_makespan_secs
            }
            _ => f64::NAN,
        }
    }
}

/// Run the campaign: every strategy over the same seeds on the same
/// unreliable grid.
pub fn run_faults(spec: &FaultsSpec) -> Result<FaultsReport, MoteurError> {
    if spec.n_data == 0 || spec.repeats == 0 {
        return Err(MoteurError::new(
            "faults campaign needs n_data and repeats > 0",
        ));
    }
    let workflow = bronze_workflow();
    let inputs = bronze_inputs(spec.n_data);
    let mut outcomes = Vec::new();
    for strategy in FaultStrategy::ALL {
        let ft = strategy.ft_config();
        let mut makespans = Vec::new();
        let (mut jobs, mut timeouts, mut replicas, mut resubs, mut quarantined) = (0, 0, 0, 0, 0);
        for r in 0..spec.repeats {
            let seed = spec.seed + 1000 * r as u64;
            let (sink, buffer) = RingBufferSink::new(1 << 16);
            let obs = Obs::new(vec![Box::new(sink)]);
            let mut backend = SimBackend::with_obs(spec.grid(), seed, &obs);
            let config = EnactorConfig::sp_dp().with_seed(seed);
            let result = run_fault_tolerant(&workflow, &inputs, config, &ft, &mut backend, obs)?;
            makespans.push(result.makespan.as_secs_f64());
            jobs += result.jobs_submitted;
            quarantined += result.quarantined.len();
            for event in buffer.snapshot() {
                match event.kind() {
                    "job_timed_out" => timeouts += 1,
                    "job_replicated" => replicas += 1,
                    "job_resubmitted" => resubs += 1,
                    _ => {}
                }
            }
        }
        let mean = makespans.iter().sum::<f64>() / makespans.len() as f64;
        let max = makespans.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        outcomes.push(StrategyOutcome {
            strategy: strategy.name(),
            makespans_secs: makespans,
            mean_makespan_secs: mean,
            max_makespan_secs: max,
            jobs_submitted: jobs,
            timeouts,
            replicas,
            resubmissions: resubs,
            quarantined,
        });
    }
    Ok(FaultsReport {
        spec: spec.clone(),
        outcomes,
    })
}

/// Serialise the report (`BENCH_faults.json`).
pub fn render_faults_json(report: &FaultsReport) -> String {
    let outcomes = json::array(report.outcomes.iter().map(|o| {
        JsonObject::new()
            .str("strategy", o.strategy)
            .num("mean_makespan_secs", o.mean_makespan_secs)
            .num("max_makespan_secs", o.max_makespan_secs)
            .raw(
                "makespans_secs",
                &json::array(o.makespans_secs.iter().map(f64::to_string)),
            )
            .uint("jobs_submitted", o.jobs_submitted as u64)
            .uint("timeouts", o.timeouts)
            .uint("replicas", o.replicas)
            .uint("resubmissions", o.resubmissions)
            .uint("quarantined", o.quarantined as u64)
            .finish()
    }));
    JsonObject::new()
        .str("schema", FAULTS_SCHEMA)
        .str("workflow", "bronze")
        .str("grid", "egee-2006 (middleware retries off)")
        .str("config", "sp+dp")
        .uint("n_data", report.spec.n_data as u64)
        .uint("seed", report.spec.seed)
        .uint("repeats", report.spec.repeats as u64)
        .num("failure_probability", report.spec.failure_probability)
        .bool("ok", report.ok())
        .num("replication_speedup", report.replication_speedup())
        .raw("strategies", &outcomes)
        .finish()
}

/// Human rendering, one strategy per block.
pub fn render_faults(report: &FaultsReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault injection: bronze on egee-2006 (p_fail {:.0}%, middleware retries off), \
         sp+dp, n_data {} x {} seeds",
        report.spec.failure_probability * 100.0,
        report.spec.n_data,
        report.spec.repeats,
    );
    for o in &report.outcomes {
        let _ = writeln!(
            out,
            "  {:<20} mean {:>9.1} s  max {:>9.1} s  ({} jobs, {} resubmissions, \
             {} timeouts, {} replicas, {} quarantined)",
            o.strategy,
            o.mean_makespan_secs,
            o.max_makespan_secs,
            o.jobs_submitted,
            o.resubmissions,
            o.timeouts,
            o.replicas,
            o.quarantined,
        );
    }
    let _ = writeln!(
        out,
        "  replication vs naive: {:.2}x {}",
        report.replication_speedup(),
        if report.ok() { "(ok)" } else { "(GATE FAILS)" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> FaultsSpec {
        FaultsSpec {
            n_data: 4,
            seed: 2006,
            repeats: 3,
            ..FaultsSpec::default()
        }
    }

    #[test]
    fn replication_beats_naive_on_the_unreliable_grid() {
        let report = run_faults(&quick_spec()).unwrap();
        assert_eq!(report.outcomes.len(), 3);
        let naive = report.outcome("naive").unwrap();
        let repl = report.outcome("timeout+replication").unwrap();
        assert!(
            repl.mean_makespan_secs < naive.mean_makespan_secs,
            "replication {} vs naive {}",
            repl.mean_makespan_secs,
            naive.mean_makespan_secs
        );
        assert!(repl.timeouts > 0, "the adaptive timeout never fired");
        assert!(repl.replicas > 0, "no replica was launched");
        assert!(report.ok());
        assert!(report.replication_speedup() > 1.0);
    }

    #[test]
    fn failures_surface_to_the_enactor_as_resubmissions() {
        let report = run_faults(&quick_spec()).unwrap();
        // With middleware retries off and p_fail 4%, at least one of
        // naive's 3 × 25 jobs must have failed and been resubmitted.
        let naive = report.outcome("naive").unwrap();
        assert!(naive.resubmissions > 0, "no failure reached the enactor");
        assert_eq!(naive.quarantined, 0, "nothing should fail terminally");
    }

    #[test]
    fn faults_json_carries_the_schema_and_all_strategies() {
        let report = run_faults(&FaultsSpec {
            n_data: 2,
            seed: 7,
            repeats: 1,
            ..FaultsSpec::default()
        })
        .unwrap();
        let json = render_faults_json(&report);
        assert!(json.contains("\"schema\":\"moteur-bench/faults/v1\""));
        assert!(json.contains("\"naive\""));
        assert!(json.contains("\"backoff\""));
        assert!(json.contains("\"timeout+replication\""));
        assert!(json.contains("\"replication_speedup\""));
        let human = render_faults(&report);
        assert!(human.contains("fault injection"));
        assert!(human.contains("naive"));
    }
}
