//! E1 — regenerate **Table 1**: Bronze-Standard execution time (s) for
//! each optimization configuration over 12, 66 and 126 image pairs on
//! the simulated EGEE grid.
//!
//! Usage: `table1 [--quick] [--seed N] [--repeats N]`

use moteur_analysis::{bootstrap_mean_ci, fmt_secs, Table};
use moteur_bench::{run_campaign, PAPER_SIZES, QUICK_SIZES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = arg_value(&args, "--seed").unwrap_or(2006);
    let repeats = arg_value(&args, "--repeats").unwrap_or(1) as usize;
    let sizes: Vec<usize> = if quick {
        QUICK_SIZES.to_vec()
    } else {
        PAPER_SIZES.to_vec()
    };

    eprintln!(
        "running 6 configurations x {sizes:?} image pairs (seed {seed}, {repeats} repeat(s))..."
    );
    let results = run_campaign(&sizes, seed, repeats);

    let mut header: Vec<String> = vec!["Configuration".into()];
    header.extend(sizes.iter().map(|n| format!("{n} pairs")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for (series, points) in &results {
        let mut row = vec![series.label.clone()];
        for (n, t) in &series.points {
            if repeats > 1 {
                // 95% bootstrap CI over the seed repeats.
                let samples: Vec<f64> = points
                    .iter()
                    .filter(|p| p.n_pairs as f64 == *n)
                    .map(|p| p.makespan_secs)
                    .collect();
                match bootstrap_mean_ci(&samples, 400, 0.95, 42) {
                    Some(ci) => row.push(format!(
                        "{} [{}..{}]",
                        fmt_secs(*t),
                        fmt_secs(ci.lo),
                        fmt_secs(ci.hi)
                    )),
                    None => row.push(fmt_secs(*t)),
                }
            } else {
                row.push(fmt_secs(*t));
            }
        }
        table.add_row(row);
    }
    println!("Table 1 reproduction - execution time (s) per configuration");
    println!("(paper, 12/66/126 pairs: NOP 32855/76354/133493 ... SP+DP+JG 5524/9053/14547)");
    println!();
    println!("{}", table.render());

    // Jobs submitted per configuration at the largest size.
    let largest = *sizes.last().expect("non-empty sizes") as f64;
    for (series, points) in &results {
        if let Some(p) = points.iter().find(|p| p.n_pairs as f64 == largest) {
            println!(
                "{:10} {} jobs submitted at {} pairs",
                series.label, p.jobs_submitted, p.n_pairs
            );
        }
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
