//! E8 — the §5.2/§5.3 analysis: speed-ups, slope ratios and
//! y-intercept ratios between configurations, computed over a fresh
//! campaign and printed next to the paper's measured values.
//!
//! Usage: `speedups [--quick] [--seed N] [--repeats N]`

use moteur_analysis::{compare, Series};
use moteur_bench::{run_campaign, PAPER_SIZES, QUICK_SIZES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = arg_value(&args, "--seed").unwrap_or(2006);
    let repeats = arg_value(&args, "--repeats").unwrap_or(3) as usize;
    let sizes: Vec<usize> = if quick {
        QUICK_SIZES.to_vec()
    } else {
        PAPER_SIZES.to_vec()
    };

    eprintln!(
        "running 6 configurations x {sizes:?} image pairs (seed {seed}, {repeats} repeat(s))..."
    );
    let results = run_campaign(&sizes, seed, repeats);
    let series: Vec<Series> = results.into_iter().map(|(s, _)| s).collect();
    let get = |label: &str| -> &Series {
        series
            .iter()
            .find(|s| s.label == label)
            .expect("campaign produces all labels")
    };

    let cases = [
        ("DP", "NOP", "S5.2 DP vs NOP           (paper speed-ups 1.86/2.89/3.92, slope ratio 6.18, y-int ratio 1.27)"),
        ("SP+DP", "DP", "S5.2 (DP+SP) vs DP       (paper speed-ups 2.26/2.17/1.90, slope ratio 1.62, y-int ratio 2.46)"),
        ("JG", "NOP", "S5.3 JG vs NOP           (paper speed-ups 1.43/1.12/1.06, slope ratio 0.98, y-int ratio 1.87)"),
        ("SP+DP+JG", "SP+DP", "S5.3 (JG+SP+DP) vs SP+DP (paper speed-ups 1.42/1.34/1.23, slope ratio 1.11, y-int ratio 1.54)"),
        ("SP+DP+JG", "NOP", "abstract: full optimization vs NOP (paper ~9x at 126 pairs)"),
    ];
    for (analyzed, reference, caption) in cases {
        let c = compare(get(reference), get(analyzed));
        println!("{caption}");
        let sp: Vec<String> = c
            .speedups
            .iter()
            .map(|(n, s)| format!("{s:.2}x @ {n:.0}"))
            .collect();
        println!("  measured speed-ups: {}", sp.join(", "));
        println!(
            "  measured slope ratio: {}   y-intercept ratio: {}",
            c.slope_ratio.map_or("-".into(), |r| format!("{r:.2}")),
            c.y_intercept_ratio
                .map_or("-".into(), |r| format!("{r:.2}")),
        );
        println!();
    }
    println!("Shape claims to check: DP dominates the slope ratio; JG and SP mainly");
    println!("improve the y-intercept; SP yields a real speed-up on top of DP even");
    println!("though the constant-time model predicts none.");
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
