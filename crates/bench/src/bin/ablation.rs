//! Ablation (DESIGN.md §5, beyond the paper's figures): how the
//! SP-over-DP speed-up depends on grid-overhead *variability*.
//!
//! §3.5.4 proves S_SDP = 1 under constant execution times and argues
//! the measured ≈2× comes entirely from the production grid's
//! variability. This harness sweeps the overhead's lognormal shape σ
//! while holding its *mean* fixed, runs the Bronze-Standard workflow
//! under DP and DP+SP, and shows the speed-up rising from ≈1 with the
//! variability — a quantitative confirmation of the paper's argument.

use moteur::{run, EnactorConfig, SimBackend};
use moteur_analysis::Table;
use moteur_bench::{bronze_inputs, bronze_workflow};
use moteur_gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};

/// Unloaded grid whose only stochastic element is the matchmaking
/// delay: lognormal with mean fixed at `mean` and shape `sigma`.
fn grid_with_sigma(mean: f64, sigma: f64) -> GridConfig {
    // mean = median·exp(σ²/2)  ⇒  median = mean·exp(−σ²/2).
    let median = mean * (-sigma * sigma / 2.0).exp();
    GridConfig {
        ces: vec![CeConfig::new("ce", 5000, 1.0)],
        submission_overhead: Distribution::Constant(60.0),
        match_delay: if sigma == 0.0 {
            Distribution::Constant(mean)
        } else {
            Distribution::LogNormal { median, sigma }
        },
        notify_delay: Distribution::Constant(30.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig {
            transfer_latency: 5.0,
            bandwidth: 2.0e6,
            congestion: 0.0,
        },
        typical_job_duration: 600.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_pairs = if args.iter().any(|a| a == "--quick") {
        6
    } else {
        20
    };
    let repeats = 5u64;
    let workflow = bronze_workflow();
    let inputs = bronze_inputs(n_pairs);

    println!("SP benefit vs overhead variability ({n_pairs} image pairs, mean overhead 500 s, {repeats} seeds)");
    println!();
    let mut table = Table::new(&["overhead sigma", "DP (s)", "DP+SP (s)", "SP speed-up"]);
    for sigma in [0.0, 0.3, 0.6, 0.9, 1.2, 1.5] {
        let mut dp_total = 0.0;
        let mut dsp_total = 0.0;
        for seed in 0..repeats {
            let mut b1 = SimBackend::new(grid_with_sigma(500.0, sigma), seed);
            dp_total += run(&workflow, &inputs, EnactorConfig::dp(), &mut b1)
                .expect("dp run")
                .makespan
                .as_secs_f64();
            let mut b2 = SimBackend::new(grid_with_sigma(500.0, sigma), seed);
            dsp_total += run(&workflow, &inputs, EnactorConfig::sp_dp(), &mut b2)
                .expect("dsp run")
                .makespan
                .as_secs_f64();
        }
        let (dp, dsp) = (dp_total / repeats as f64, dsp_total / repeats as f64);
        table.add_row(vec![
            format!("{sigma:.1}"),
            format!("{dp:.0}"),
            format!("{dsp:.0}"),
            format!("{:.2}x", dp / dsp),
        ]);
    }
    println!("{}", table.render());
    println!("At sigma = 0 the speed-up collapses towards the theoretical S_SDP = 1;");
    println!("it grows with the variability — the paper's explanation of its S5.2 result.");
}
