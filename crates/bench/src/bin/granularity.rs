//! §5.4 future work: sweep the data-batching granularity on the
//! simulated grid and compare against the probabilistic model's
//! prediction of the optimal batch size.
//!
//! A single-service, massively data-parallel workflow (the §3.5.4
//! "massively data-parallel" limit) processes `n` data with batch
//! size g ∈ {1, 2, …}: larger batches pay fewer draws from the heavy
//! tailed overhead distribution but serialise more compute.

use moteur::prelude::*;
use moteur::GranularityModel;
use moteur_analysis::Table;
use moteur_gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn workflow(compute: f64) -> Workflow {
    let descriptor = ExecutableDescriptor {
        executable: FileItem {
            name: "process".into(),
            access: AccessMethod::Local,
            value: "process".into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    };
    let mut wf = Workflow::new("sweep");
    let src = wf.add_source("data");
    let svc = wf.add_service(
        "process",
        &["in"],
        &["out"],
        ServiceBinding::descriptor(descriptor, ServiceProfile::new(compute)),
    );
    let sink = wf.add_sink("sink");
    wf.connect(src, "out", svc, "in").unwrap();
    wf.connect(svc, "out", sink, "in").unwrap();
    wf
}

fn grid(median: f64, sigma: f64) -> GridConfig {
    GridConfig {
        ces: vec![CeConfig::new("ce", 5000, 1.0)],
        submission_overhead: Distribution::LogNormal { median, sigma },
        match_delay: Distribution::Constant(0.0),
        notify_delay: Distribution::Constant(0.0),
        failure_probability: 0.0,
        failure_detection: Distribution::Constant(0.0),
        max_retries: 0,
        network: NetworkConfig {
            transfer_latency: 0.0,
            bandwidth: f64::INFINITY,
            congestion: 0.0,
        },
        typical_job_duration: 300.0,
        info_refresh_period: 3600.0,
        compute_jitter: Distribution::Constant(1.0),
    }
}

fn main() {
    let n_data = 126;
    let compute = 60.0;
    let (median, sigma) = (300.0, 1.0);
    let repeats = 8u64;

    let wf = workflow(compute);
    let inputs = InputData::new().set(
        "data",
        (0..n_data)
            .map(|j| DataValue::File {
                gfn: format!("gfn://d/{j}"),
                bytes: 1_000,
            })
            .collect(),
    );
    let model = GranularityModel {
        overhead_median: median,
        overhead_sigma: sigma,
        compute_seconds: compute,
        n_data,
    };

    println!(
        "Batch-size sweep: {n_data} data, {compute:.0} s compute each, lognormal overhead (median {median:.0} s, sigma {sigma})"
    );
    println!();
    let mut table = Table::new(&[
        "batch g",
        "jobs",
        "simulated makespan (s)",
        "model prediction (s)",
    ]);
    for g in [1usize, 2, 3, 4, 6, 9, 14, 21, 42, 126] {
        let mut total = 0.0;
        for seed in 0..repeats {
            let mut backend = SimBackend::new(grid(median, sigma), seed);
            total += run(
                &wf,
                &inputs,
                EnactorConfig::sp_dp().with_batching(g),
                &mut backend,
            )
            .expect("sweep run")
            .makespan
            .as_secs_f64();
        }
        table.add_row(vec![
            g.to_string(),
            n_data.div_ceil(g).to_string(),
            format!("{:.0}", total / repeats as f64),
            format!("{:.0}", model.expected_makespan(g)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "model-recommended batch size: g* = {} (expected makespan {:.0} s)",
        model.optimal_batch(),
        model.expected_makespan(model.optimal_batch())
    );
    println!("The measured optimum should sit near g*: the trade-off between data");
    println!("parallelism and per-job overhead that the paper left as future work.");
}
