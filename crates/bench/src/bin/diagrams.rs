//! E4/E5/E6 — regenerate the execution diagrams of **Figures 4, 5
//! and 6**: the Fig. 1 three-service chain over three data sets on an
//! ideal backend, under data parallelism (Fig. 4), service parallelism
//! (Fig. 5), and both with non-constant execution times (Fig. 6,
//! with/without SP).

use moteur::prelude::*;
use moteur::{diagram, TimeMatrix};
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn pass_through(name: &str) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    }
}

/// The Fig. 1 chain P1 → P2 → P3 with per-(service, data) durations.
fn chain(t: &TimeMatrix) -> Workflow {
    let mut wf = Workflow::new("fig1");
    let src = wf.add_source("source");
    let mut prev = src;
    for i in 0..t.n_services() {
        let row: Vec<f64> = (0..t.n_data()).map(|j| t.get(i, j)).collect();
        let name = format!("P{}", i + 1);
        let svc = wf.add_service(
            &name,
            &["in"],
            &["out"],
            ServiceBinding::descriptor(
                pass_through(&name),
                ServiceProfile::new(0.0)
                    .with_cost(CostModel::by_index(move |idx| row[idx.0[0] as usize])),
            ),
        );
        wf.connect(prev, "out", svc, "in").unwrap();
        prev = svc;
    }
    let sink = wf.add_sink("sink");
    wf.connect(prev, "out", sink, "in").unwrap();
    wf
}

fn enact(t: &TimeMatrix, config: EnactorConfig) -> WorkflowResult {
    let inputs = InputData::new().set(
        "source",
        (0..t.n_data())
            .map(|j| DataValue::File {
                gfn: format!("gfn://d{j}"),
                bytes: 0,
            })
            .collect(),
    );
    let mut backend = VirtualBackend::new();
    run(&chain(t), &inputs, config, &mut backend).expect("diagram runs succeed")
}

fn show(title: &str, result: &WorkflowResult) {
    println!("{title}  (total {} s)", result.makespan.as_secs_f64());
    println!(
        "{}",
        diagram::render(&result.invocations, &["P3", "P2", "P1"])
    );
}

fn main() {
    let constant = TimeMatrix::constant(3, 3, 1.0);

    println!("=== Figure 4: data-parallel execution (DP on, SP off), constant T ===");
    show("DP", &enact(&constant, EnactorConfig::dp()));

    println!("=== Figure 5: service-parallel execution (SP on, DP off), constant T ===");
    show("SP", &enact(&constant, EnactorConfig::sp()));

    // Fig. 6: D0 takes twice as long on P1 (submitted twice after an
    // error); D1 takes three times as long on P2 (blocked in a queue).
    let variable = TimeMatrix::new(vec![
        vec![2.0, 1.0, 1.0],
        vec![1.0, 3.0, 1.0],
        vec![1.0, 1.0, 1.0],
    ]);
    println!("=== Figure 6 left: DP only, variable T ===");
    show("DP, variable T", &enact(&variable, EnactorConfig::dp()));
    println!("=== Figure 6 right: DP + SP, variable T (computations overlap) ===");
    show(
        "DP+SP, variable T",
        &enact(&variable, EnactorConfig::sp_dp()),
    );

    println!(
        "Fig. 6 conclusion: with variable execution times, enabling SP on top of DP\n\
         shortens the makespan ({} s -> {} s) even though the constant-time model\n\
         predicts no gain (S_SDP = 1).",
        enact(&variable, EnactorConfig::dp()).makespan.as_secs_f64(),
        enact(&variable, EnactorConfig::sp_dp())
            .makespan
            .as_secs_f64(),
    );
}
