//! E3 — regenerate **Figure 10**: execution time (hours) against the
//! number of input image pairs, one curve per optimization
//! configuration, rendered as an ASCII chart plus the raw series.
//!
//! Usage: `fig10 [--quick] [--seed N]`

use moteur_analysis::render_chart;
use moteur_bench::run_campaign;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = arg_value(&args, "--seed").unwrap_or(2006);
    // A denser size grid than Table 1, like the figure's x axis.
    let sizes: Vec<usize> = if quick {
        vec![2, 6, 10, 14]
    } else {
        vec![12, 40, 66, 96, 126]
    };

    eprintln!("running 6 configurations x {sizes:?} image pairs (seed {seed})...");
    let results = run_campaign(&sizes, seed, 1);
    let series: Vec<_> = results.into_iter().map(|(s, _)| s).collect();

    println!("Figure 10 reproduction - execution time vs number of input image pairs");
    println!();
    println!(
        "{}",
        render_chart(&series, 72, 24, true, "number of input image pairs")
    );
    println!("raw series (seconds):");
    for s in &series {
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|(n, t)| format!("({n:.0}, {t:.0})"))
            .collect();
        println!("  {:10} {}", s.label, pts.join(" "));
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
