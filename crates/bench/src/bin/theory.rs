//! E7 — §3.5 theoretical model: print the four Σ expressions and the
//! asymptotic speed-ups for the paper's application shape (n_W = 5,
//! n_D ∈ {12, 66, 126}) under the constant-time assumption, and verify
//! the enactor agrees with the model on an ideal backend.

use moteur::model::{speedup_dp_constant, speedup_dp_given_sp_constant, speedup_sp_constant};
use moteur::prelude::*;
use moteur_analysis::Table;
use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

fn pass_through(name: &str) -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    }
}

fn measured(t: &TimeMatrix, config: EnactorConfig) -> f64 {
    let mut wf = Workflow::new("chain");
    let src = wf.add_source("source");
    let mut prev = src;
    for i in 0..t.n_services() {
        let row: Vec<f64> = (0..t.n_data()).map(|j| t.get(i, j)).collect();
        let svc = wf.add_service(
            format!("S{i}").as_str(),
            &["in"],
            &["out"],
            ServiceBinding::descriptor(
                pass_through(&format!("S{i}")),
                ServiceProfile::new(0.0)
                    .with_cost(CostModel::by_index(move |idx| row[idx.0[0] as usize])),
            ),
        );
        wf.connect(prev, "out", svc, "in").unwrap();
        prev = svc;
    }
    let sink = wf.add_sink("sink");
    wf.connect(prev, "out", sink, "in").unwrap();
    let inputs = InputData::new().set(
        "source",
        (0..t.n_data())
            .map(|j| DataValue::File {
                gfn: format!("gfn://d{j}"),
                bytes: 0,
            })
            .collect(),
    );
    let mut backend = VirtualBackend::new();
    run(&wf, &inputs, config, &mut backend)
        .expect("ideal run")
        .makespan
        .as_secs_f64()
}

fn main() {
    let nw = 5; // the paper's application: 5 services on the critical path
    let t_unit = 100.0;
    println!("S3.5 theoretical model, constant T = {t_unit} s, n_W = {nw}");
    println!();
    let mut table = Table::new(&[
        "n_D",
        "Sigma",
        "Sigma_DP",
        "Sigma_SP",
        "Sigma_DSP",
        "S_DP",
        "S_SP",
        "S_DSP",
        "enactor=model",
    ]);
    for nd in [12usize, 66, 126] {
        let t = TimeMatrix::constant(nw, nd, t_unit);
        let (seq, dp, sp, dsp) = (
            t.sigma_sequential(),
            t.sigma_dp(),
            t.sigma_sp(),
            t.sigma_dsp(),
        );
        // Enactor agreement on the smallest case (larger ones follow by
        // the tested invariants; keep the binary fast).
        let agree = if nd == 12 {
            let ok = (measured(&t, EnactorConfig::nop()) - seq).abs() < 1e-6
                && (measured(&t, EnactorConfig::dp()) - dp).abs() < 1e-6
                && (measured(&t, EnactorConfig::sp()) - sp).abs() < 1e-6
                && (measured(&t, EnactorConfig::sp_dp()) - dsp).abs() < 1e-6;
            if ok {
                "yes"
            } else {
                "NO"
            }
        } else {
            "-"
        };
        table.add_row(vec![
            nd.to_string(),
            format!("{seq:.0}"),
            format!("{dp:.0}"),
            format!("{sp:.0}"),
            format!("{dsp:.0}"),
            format!("{:.2}", speedup_dp_constant(nd)),
            format!("{:.2}", speedup_sp_constant(nw, nd)),
            format!("{:.2}", speedup_dp_given_sp_constant(nw, nd)),
            agree.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Under constant T, SP adds nothing once DP is on (Sigma_DP = Sigma_DSP);");
    println!("the production-grid experiments (table1/speedups) show why that breaks:");
    println!("grid overhead is large and variable, so T is never constant (S3.5.4).");
}
