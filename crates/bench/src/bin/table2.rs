//! E2 — regenerate **Table 2**: y-intercept (s) and slope (s/data set)
//! of the execution-time-vs-size regression line for each
//! configuration, as in paper §5.1.
//!
//! Usage: `table2 [--quick] [--seed N] [--repeats N]`

use moteur_analysis::{fmt_secs, Table};
use moteur_bench::{run_campaign, PAPER_SIZES, QUICK_SIZES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = arg_value(&args, "--seed").unwrap_or(2006);
    let repeats = arg_value(&args, "--repeats").unwrap_or(3) as usize;
    let sizes: Vec<usize> = if quick {
        QUICK_SIZES.to_vec()
    } else {
        PAPER_SIZES.to_vec()
    };

    eprintln!(
        "running 6 configurations x {sizes:?} image pairs (seed {seed}, {repeats} repeat(s))..."
    );
    let results = run_campaign(&sizes, seed, repeats);

    let mut table = Table::new(&[
        "Configuration",
        "y-intercept (s)",
        "slope (s/data set)",
        "r^2",
    ]);
    for (series, _) in &results {
        match series.fit() {
            Some(line) => table.add_row(vec![
                series.label.clone(),
                fmt_secs(line.intercept),
                format!("{:.0}", line.slope),
                format!("{:.3}", line.r_squared),
            ]),
            None => table.add_row(vec![
                series.label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!("Table 2 reproduction - linear regression of execution time vs data-set size");
    println!("(paper: NOP 20784/884, JG 11093/900, SP 6382/897, DP 16328/143,");
    println!(" SP+DP 6625/88, SP+DP+JG 4310/79)");
    println!();
    println!("{}", table.render());
    println!("Expected shape: DP-enabled rows collapse the slope (data scalability);");
    println!("JG rows mainly lower the intercept (infrastructure overhead).");
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
