//! `moteur-bench` — the perf observatory's campaign and regression-gate
//! driver.
//!
//! ```text
//! moteur-bench campaign [--sweep ndata=1..6] [--seed N]
//!                       [--workflow chain|bronze] [--grid ideal|egee]
//!                       [--overhead SECS] [--tolerance FRAC]
//!                       [--out-dir DIR]
//! moteur-bench gate [--summary PATH] [--baseline PATH] [--threshold FRAC]
//!                   [--faults PATH] [--timeline PATH] [--plan PATH]
//!                   [--scale PATH] [--scale-baseline PATH] [--daemon PATH]
//!                   [--stream PATH]
//! moteur-bench warm [--ndata N] [--seed N] [--out-dir DIR]
//! moteur-bench faults [--ndata N] [--seed N] [--repeats R]
//!                     [--failure-probability P] [--out-dir DIR]
//! moteur-bench timeline [--ideal-ndata N] [--loaded-ndata N] [--seed N]
//!                       [--out-dir DIR]
//! moteur-bench plan [--ndata N] [--seed N] [--out-dir DIR]
//! moteur-bench scale [--events N] [--jobs N] [--seed N] [--out-dir DIR]
//! moteur-bench stream [--items N] [--capacity N] [--eager-items N]
//!                     [--seed N] [--out-dir DIR]
//! moteur-bench daemon [--workflows N] [--tenants N] [--ndata N]
//!                     [--out-dir DIR]
//! ```
//!
//! `campaign` runs the six Table-1 configurations over the sweep and
//! writes `BENCH_point.json` (raw cells) and `BENCH_summary.json`
//! (fits, drift, speed-ups) into `--out-dir` (default: the current
//! directory). `gate` compares a summary against the committed baseline
//! and exits non-zero on regression; setting
//! `MOTEUR_BENCH_UPDATE_BASELINE=1` rewrites the baseline from the
//! current summary instead (use after an intentional perf change).
//! `warm` enacts one campaign twice against a shared data manager and
//! writes the cold-vs-warm comparison to `BENCH_warm.json`.
//! `faults` enacts the campaign on an unreliable grid under the three
//! fault-tolerance strategies and writes `BENCH_faults.json`, exiting
//! non-zero unless timeout+replication beats the naive strategy.
//! `timeline` enacts the campaign with the telemetry pipeline attached
//! (ideal and queue-saturated regimes) and writes
//! `BENCH_timeline.json`, exiting non-zero unless the byte accounting
//! reconciles and the loaded regime is attributed to the CE queues.
//! `plan` checks `moteur plan`'s static per-edge byte bounds against
//! the enactor's observed per-port staging and writes
//! `BENCH_plan.json`, exiting non-zero unless every interval contains
//! the observed bytes and the site partition beats centralized routing
//! on the data-heavy bronze variant.
//! `daemon` submits a concurrent wave of identical Bronze-Standard
//! chains across several tenants of one enactment daemon sharing a
//! memo table, and writes throughput, time-to-first-job percentiles
//! and the cross-tenant cache-hit ratio to `BENCH_daemon.json`,
//! exiting non-zero unless every submission succeeds and the wave
//! reuses ≥ 90% of the seed tenant's derivations.
//! `scale` pushes the simulator through a million events and the
//! enactor through ten thousand jobs with the self-profiler attached
//! and writes `BENCH_scale.json` (throughput, allocations per event,
//! peak live bytes, per-subsystem wall shares), exiting non-zero when
//! a target is missed or the allocation budget is blown.
//! `stream` pushes a million-item stream through a bounded-port chain
//! and writes `BENCH_stream.json` (throughput, input vs pipeline peak
//! bytes, the eager projection), exiting non-zero unless the pipeline
//! high-water mark stays O(port-capacity).

use moteur_bench::daemon::{render_daemon, render_daemon_json, run_daemon_campaign};
use moteur_bench::faults::{render_faults, render_faults_json, run_faults, FaultsSpec};
use moteur_bench::gate::{
    check_daemon, check_faults, check_gate, check_plan, check_scale, check_stream, check_timeline,
    DEFAULT_THRESHOLD,
};
use moteur_bench::plan::{render_plan_bench, render_plan_bench_json, run_plan_bench, PlanSpec};
use moteur_bench::scale::{render_scale, render_scale_json, run_scale, ScaleSpec};
use moteur_bench::stream::{render_stream, render_stream_json, run_stream, StreamSpec};
use moteur_bench::sweep::{
    render_points_json, render_summary, render_summary_json, run_sweep, SweepGrid, SweepSpec,
    SweepWorkflow,
};
use moteur_bench::timeline::{render_timeline, render_timeline_json, run_timeline, TimelineSpec};
use moteur_bench::warm::{render_warm, render_warm_json, run_warm_pair};
use std::path::Path;
use std::process::ExitCode;

/// The scale campaign reports real allocation counts and the live-heap
/// high-water mark, so this binary routes every allocation through the
/// profiler's counting wrapper around the system allocator.
#[global_allocator]
static ALLOC: moteur_prof::alloc::CountingAlloc = moteur_prof::alloc::CountingAlloc;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("moteur-bench: {msg}");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    eprintln!("usage: moteur-bench campaign [--sweep ndata=1..6] [--seed N]");
    eprintln!("                    [--workflow chain|bronze] [--grid ideal|egee]");
    eprintln!("                    [--overhead SECS] [--tolerance FRAC] [--out-dir DIR]");
    eprintln!("       moteur-bench gate [--summary PATH] [--baseline PATH] [--threshold FRAC]");
    eprintln!("                    [--faults PATH] [--timeline PATH] [--plan PATH]");
    eprintln!("                    [--scale PATH] [--scale-baseline PATH] [--daemon PATH]");
    eprintln!("                    [--stream PATH]");
    eprintln!("       moteur-bench warm [--ndata N] [--seed N] [--out-dir DIR]");
    eprintln!("       moteur-bench faults [--ndata N] [--seed N] [--repeats R]");
    eprintln!("                    [--failure-probability P] [--out-dir DIR]");
    eprintln!("       moteur-bench timeline [--ideal-ndata N] [--loaded-ndata N] [--seed N]");
    eprintln!("                    [--out-dir DIR]");
    eprintln!("       moteur-bench plan [--ndata N] [--seed N] [--out-dir DIR]");
    eprintln!("       moteur-bench scale [--events N] [--jobs N] [--seed N] [--out-dir DIR]");
    eprintln!("       moteur-bench stream [--items N] [--capacity N] [--eager-items N]");
    eprintln!("                    [--seed N] [--out-dir DIR]");
    eprintln!("       moteur-bench daemon [--workflows N] [--tenants N] [--ndata N]");
    eprintln!("                    [--out-dir DIR]");
    eprintln!();
    eprintln!("env: MOTEUR_BENCH_UPDATE_BASELINE=1  rewrite the gate baseline and pass");
    ExitCode::from(2)
}

/// Parse `ndata=1..6` / `1..6` / `ndata=2,4,8` into sizes.
fn parse_sweep(spec: &str) -> Option<Vec<usize>> {
    let spec = spec.strip_prefix("ndata=").unwrap_or(spec);
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: usize = lo.parse().ok()?;
        let hi: usize = hi.parse().ok()?;
        if lo == 0 || hi < lo {
            return None;
        }
        return Some((lo..=hi).collect());
    }
    let sizes: Vec<usize> = spec
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<_>>()?;
    (!sizes.is_empty() && !sizes.contains(&0)).then_some(sizes)
}

fn cmd_campaign(args: &[String]) -> ExitCode {
    let Some(sizes) = parse_sweep(flag_value(args, "--sweep").unwrap_or("ndata=1..6")) else {
        return fail("--sweep needs `ndata=LO..HI` or `ndata=A,B,C` (all > 0)");
    };
    let mut spec = SweepSpec::new(sizes);
    if let Some(s) = flag_value(args, "--seed") {
        match s.parse() {
            Ok(v) => spec.seed = v,
            Err(_) => return fail("--seed needs an integer"),
        }
    }
    if let Some(s) = flag_value(args, "--workflow") {
        match SweepWorkflow::parse(s) {
            Some(w) => spec.workflow = w,
            None => return fail(format!("unknown workflow `{s}` (chain|bronze)")),
        }
    }
    if let Some(s) = flag_value(args, "--grid") {
        match SweepGrid::parse(s) {
            Some(g) => spec.grid = g,
            None => return fail(format!("unknown grid `{s}` (ideal|egee)")),
        }
    }
    if let Some(s) = flag_value(args, "--overhead") {
        match s.parse() {
            Ok(v) => spec.overhead = v,
            Err(_) => return fail("--overhead needs a number (seconds)"),
        }
    }
    if let Some(s) = flag_value(args, "--tolerance") {
        match s.parse() {
            Ok(v) => spec.tolerance = v,
            Err(_) => return fail("--tolerance needs a fraction (e.g. 0.05)"),
        }
    }
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "sweeping {} on the {} grid over n_data {:?}...",
        spec.workflow.name(),
        spec.grid.name(),
        spec.sizes
    );
    let (points, summary) = match run_sweep(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_summary(&summary));

    let point_path = out_dir.join("BENCH_point.json");
    if let Err(e) = std::fs::write(&point_path, render_points_json(&spec, &points) + "\n") {
        return fail(format!("writing {}: {e}", point_path.display()));
    }
    let summary_path = out_dir.join("BENCH_summary.json");
    if let Err(e) = std::fs::write(&summary_path, render_summary_json(&summary) + "\n") {
        return fail(format!("writing {}: {e}", summary_path.display()));
    }
    println!(
        "wrote {} ({} points) and {}",
        point_path.display(),
        points.len(),
        summary_path.display()
    );
    if summary.configs.iter().all(|c| c.drift_ok) {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: model-vs-observed drift beyond tolerance (see summary)");
        ExitCode::FAILURE
    }
}

fn cmd_gate(args: &[String]) -> ExitCode {
    let summary_path = flag_value(args, "--summary").unwrap_or("BENCH_summary.json");
    let baseline_path = flag_value(args, "--baseline").unwrap_or("results/BENCH_baseline.json");
    let threshold: f64 = match flag_value(args, "--threshold").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(DEFAULT_THRESHOLD),
        Err(_) => return fail("--threshold needs a fraction (e.g. 0.10)"),
    };
    let current = match std::fs::read_to_string(summary_path) {
        Ok(s) => s,
        Err(e) => return fail(format!("reading {summary_path}: {e}")),
    };
    let scale_path = flag_value(args, "--scale");
    let scale_implicit = scale_path.is_none();
    let scale_path = scale_path.unwrap_or("BENCH_scale.json");
    let scale_baseline_path =
        flag_value(args, "--scale-baseline").unwrap_or("results/BENCH_scale_baseline.json");
    if std::env::var("MOTEUR_BENCH_UPDATE_BASELINE").as_deref() == Ok("1") {
        if let Err(e) = std::fs::write(baseline_path, &current) {
            return fail(format!("updating {baseline_path}: {e}"));
        }
        println!("baseline {baseline_path} updated from {summary_path}");
        // Re-seed the scale baseline too when a fresh document is
        // around; its deterministic axes are machine-independent.
        match std::fs::read_to_string(scale_path) {
            Ok(scale) => {
                if let Err(e) = std::fs::write(scale_baseline_path, &scale) {
                    return fail(format!("updating {scale_baseline_path}: {e}"));
                }
                println!("baseline {scale_baseline_path} updated from {scale_path}");
            }
            Err(_) if scale_implicit => {}
            Err(e) => return fail(format!("reading {scale_path}: {e}")),
        }
        return ExitCode::SUCCESS;
    }
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            return fail(format!(
                "reading {baseline_path}: {e} (run with MOTEUR_BENCH_UPDATE_BASELINE=1 to seed it)"
            ))
        }
    };
    let mut report = match check_gate(&baseline, &current, threshold) {
        Ok(report) => report,
        Err(e) => return fail(e),
    };
    // Fold the fault-injection checks in when a faults document is
    // around: explicitly via --faults, or implicitly when the default
    // artifact sits next to the summary.
    let faults_path = flag_value(args, "--faults");
    let implicit = faults_path.is_none();
    let faults_path = faults_path.unwrap_or("BENCH_faults.json");
    match std::fs::read_to_string(faults_path) {
        Ok(json) => match check_faults(&json) {
            Ok(mut checks) => report.checks.append(&mut checks),
            Err(e) => return fail(e),
        },
        Err(_) if implicit => {}
        Err(e) => return fail(format!("reading {faults_path}: {e}")),
    }
    // Same convention for the telemetry document.
    let timeline_path = flag_value(args, "--timeline");
    let implicit = timeline_path.is_none();
    let timeline_path = timeline_path.unwrap_or("BENCH_timeline.json");
    match std::fs::read_to_string(timeline_path) {
        Ok(json) => match check_timeline(&json) {
            Ok(mut checks) => report.checks.append(&mut checks),
            Err(e) => return fail(e),
        },
        Err(_) if implicit => {}
        Err(e) => return fail(format!("reading {timeline_path}: {e}")),
    }
    // And for the static-planner document.
    let plan_path = flag_value(args, "--plan");
    let implicit = plan_path.is_none();
    let plan_path = plan_path.unwrap_or("BENCH_plan.json");
    match std::fs::read_to_string(plan_path) {
        Ok(json) => match check_plan(&json) {
            Ok(mut checks) => report.checks.append(&mut checks),
            Err(e) => return fail(e),
        },
        Err(_) if implicit => {}
        Err(e) => return fail(format!("reading {plan_path}: {e}")),
    }
    // And for the daemon wave.
    let daemon_path = flag_value(args, "--daemon");
    let implicit = daemon_path.is_none();
    let daemon_path = daemon_path.unwrap_or("BENCH_daemon.json");
    match std::fs::read_to_string(daemon_path) {
        Ok(json) => match check_daemon(&json) {
            Ok(mut checks) => report.checks.append(&mut checks),
            Err(e) => return fail(e),
        },
        Err(_) if implicit => {}
        Err(e) => return fail(format!("reading {daemon_path}: {e}")),
    }
    // And for the scale campaign, with its own committed baseline for
    // the deterministic allocation axes.
    match std::fs::read_to_string(scale_path) {
        Ok(json) => {
            let scale_baseline = std::fs::read_to_string(scale_baseline_path).ok();
            match check_scale(&json, scale_baseline.as_deref(), threshold) {
                Ok(mut checks) => report.checks.append(&mut checks),
                Err(e) => return fail(e),
            }
        }
        Err(_) if scale_implicit => {}
        Err(e) => return fail(format!("reading {scale_path}: {e}")),
    }
    // And for the streaming campaign (absolute checks only).
    let stream_path = flag_value(args, "--stream");
    let implicit = stream_path.is_none();
    let stream_path = stream_path.unwrap_or("BENCH_stream.json");
    match std::fs::read_to_string(stream_path) {
        Ok(json) => match check_stream(&json) {
            Ok(mut checks) => report.checks.append(&mut checks),
            Err(e) => return fail(e),
        },
        Err(_) if implicit => {}
        Err(e) => return fail(format!("reading {stream_path}: {e}")),
    }
    print!("{}", report.render());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_warm(args: &[String]) -> ExitCode {
    let n_data: usize = match flag_value(args, "--ndata").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(6),
        Err(_) => return fail("--ndata needs a positive integer"),
    };
    if n_data == 0 {
        return fail("--ndata needs a positive integer");
    }
    let seed: u64 = match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(2006),
        Err(_) => return fail("--seed needs an integer"),
    };
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!("warm-restart pair: bronze-chain, ideal grid, sp+dp, n_data {n_data}...");
    let report = match run_warm_pair(n_data, seed) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_warm(&report));
    let path = out_dir.join("BENCH_warm.json");
    if let Err(e) = std::fs::write(&path, render_warm_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.drift_ok && report.misses == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: warm pair failed (cold drift or unexpected warm misses)");
        ExitCode::FAILURE
    }
}

fn cmd_faults(args: &[String]) -> ExitCode {
    let mut spec = FaultsSpec::default();
    match flag_value(args, "--ndata").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.n_data = v,
        Ok(Some(_)) => return fail("--ndata needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--ndata needs a positive integer"),
    }
    match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => spec.seed = v.unwrap_or(spec.seed),
        Err(_) => return fail("--seed needs an integer"),
    }
    match flag_value(args, "--repeats").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.repeats = v,
        Ok(Some(_)) => return fail("--repeats needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--repeats needs a positive integer"),
    }
    match flag_value(args, "--failure-probability")
        .map(str::parse::<f64>)
        .transpose()
    {
        Ok(Some(p)) if (0.0..=1.0).contains(&p) => spec.failure_probability = p,
        Ok(Some(_)) => return fail("--failure-probability needs a fraction in [0, 1]"),
        Ok(None) => {}
        Err(_) => return fail("--failure-probability needs a fraction in [0, 1]"),
    }
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "fault injection: bronze on unreliable egee-2006 (p_fail {:.0}%), n_data {} x {} seeds...",
        spec.failure_probability * 100.0,
        spec.n_data,
        spec.repeats
    );
    let report = match run_faults(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_faults(&report));
    let path = out_dir.join("BENCH_faults.json");
    if let Err(e) = std::fs::write(&path, render_faults_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: timeout+replication did not beat the naive strategy");
        ExitCode::FAILURE
    }
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    let mut spec = TimelineSpec::default();
    match flag_value(args, "--ideal-ndata")
        .map(str::parse)
        .transpose()
    {
        Ok(Some(v)) if v > 0 => spec.ideal_n_data = v,
        Ok(Some(_)) => return fail("--ideal-ndata needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--ideal-ndata needs a positive integer"),
    }
    match flag_value(args, "--loaded-ndata")
        .map(str::parse)
        .transpose()
    {
        Ok(Some(v)) if v > 0 => spec.loaded_n_data = v,
        Ok(Some(_)) => return fail("--loaded-ndata needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--loaded-ndata needs a positive integer"),
    }
    match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => spec.seed = v.unwrap_or(spec.seed),
        Err(_) => return fail("--seed needs an integer"),
    }
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "timeline telemetry: bronze sp+dp, ideal n_data {} / egee n_data {}...",
        spec.ideal_n_data, spec.loaded_n_data
    );
    let report = match run_timeline(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_timeline(&report));
    let path = out_dir.join("BENCH_timeline.json");
    if let Err(e) = std::fs::write(&path, render_timeline_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: byte accounting or queue attribution failed");
        ExitCode::FAILURE
    }
}

fn cmd_plan(args: &[String]) -> ExitCode {
    let mut spec = PlanSpec::default();
    match flag_value(args, "--ndata").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.n_data = v,
        Ok(Some(_)) => return fail("--ndata needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--ndata needs a positive integer"),
    }
    match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => spec.seed = v.unwrap_or(spec.seed),
        Err(_) => return fail("--seed needs an integer"),
    }
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "static plan check: bronze + cross sweep on the ideal grid, n_data {}...",
        spec.n_data
    );
    let report = match run_plan_bench(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_plan_bench(&report));
    let path = out_dir.join("BENCH_plan.json");
    if let Err(e) = std::fs::write(&path, render_plan_bench_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: static bounds missed observed staging or the partition lost");
        ExitCode::FAILURE
    }
}

fn cmd_scale(args: &[String]) -> ExitCode {
    let mut spec = ScaleSpec::default();
    match flag_value(args, "--events").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.target_events = v,
        Ok(Some(_)) => return fail("--events needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--events needs a positive integer"),
    }
    match flag_value(args, "--jobs").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.enact_jobs = v,
        Ok(Some(_)) => return fail("--jobs needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--jobs needs a positive integer"),
    }
    match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => spec.seed = v.unwrap_or(spec.seed),
        Err(_) => return fail("--seed needs an integer"),
    }
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "scale campaign: {} gridsim events + {} enactor jobs (seed {})...",
        spec.target_events, spec.enact_jobs, spec.seed
    );
    let report = match run_scale(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_scale(&report));
    let path = out_dir.join("BENCH_scale.json");
    if let Err(e) = std::fs::write(&path, render_scale_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: scale campaign missed a target or blew the allocation budget");
        ExitCode::FAILURE
    }
}

fn cmd_stream(args: &[String]) -> ExitCode {
    let mut spec = StreamSpec::default();
    match flag_value(args, "--items").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.n_items = v,
        Ok(Some(_)) => return fail("--items needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--items needs a positive integer"),
    }
    match flag_value(args, "--capacity").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => spec.port_capacity = v,
        Ok(Some(_)) => return fail("--capacity needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--capacity needs a positive integer"),
    }
    match flag_value(args, "--eager-items")
        .map(str::parse)
        .transpose()
    {
        Ok(Some(v)) if v > 0 => spec.eager_items = v,
        Ok(Some(_)) => return fail("--eager-items needs a positive integer"),
        Ok(None) => {}
        Err(_) => return fail("--eager-items needs a positive integer"),
    }
    match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => spec.seed = v.unwrap_or(spec.seed),
        Err(_) => return fail("--seed needs an integer"),
    }
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "stream campaign: {} items through port capacity {} (seed {})...",
        spec.n_items, spec.port_capacity, spec.seed
    );
    let report = match run_stream(&spec) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_stream(&report));
    let path = out_dir.join("BENCH_stream.json");
    if let Err(e) = std::fs::write(&path, render_stream_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "moteur-bench: stream campaign missed an item or blew the pipeline memory budget"
        );
        ExitCode::FAILURE
    }
}

fn cmd_daemon(args: &[String]) -> ExitCode {
    let n_workflows: usize = match flag_value(args, "--workflows").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => v,
        Ok(Some(_)) | Err(_) => return fail("--workflows needs a positive integer"),
        Ok(None) => 100,
    };
    let n_tenants: usize = match flag_value(args, "--tenants").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => v,
        Ok(Some(_)) | Err(_) => return fail("--tenants needs a positive integer"),
        Ok(None) => 4,
    };
    let n_data: usize = match flag_value(args, "--ndata").map(str::parse).transpose() {
        Ok(Some(v)) if v > 0 => v,
        Ok(Some(_)) | Err(_) => return fail("--ndata needs a positive integer"),
        Ok(None) => 2,
    };
    let out_dir = Path::new(flag_value(args, "--out-dir").unwrap_or("."));

    eprintln!(
        "daemon wave: {n_workflows} bronze-chain submissions across {n_tenants} tenants (n_data {n_data})..."
    );
    let report = match run_daemon_campaign(n_workflows, n_tenants, n_data) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    print!("{}", render_daemon(&report));
    let path = out_dir.join("BENCH_daemon.json");
    if let Err(e) = std::fs::write(&path, render_daemon_json(&report) + "\n") {
        return fail(format!("writing {}: {e}", path.display()));
    }
    println!("wrote {}", path.display());
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("moteur-bench: daemon wave failed (incomplete or cross-tenant reuse below 90%)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("gate") => cmd_gate(&args[1..]),
        Some("warm") => cmd_warm(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("scale") => cmd_scale(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("daemon") => cmd_daemon(&args[1..]),
        _ => usage(),
    }
}
