//! Telemetry benchmark: the Bronze-Standard campaign with a
//! [`TimelineSink`] attached, in two regimes.
//!
//! - **ideal** — the frictionless grid. Nothing queues, nothing fails,
//!   so the timeline's per-link byte totals must sum to exactly the
//!   enactor's `bytes_transferred` (the acceptance invariant for the
//!   telemetry pipeline: no transfer is double-counted or dropped).
//! - **egee-loaded** — `egee_2006` with an eighth of the worker slots,
//!   at a larger campaign size. Demand now exceeds capacity, so jobs
//!   sit in the CE batch queues behind the background load and the
//!   bottleneck detector must attribute the run to `queue-wait`.
//!
//! `BENCH_timeline.json` records both regimes — peak queue depth,
//! bytes through the enactor, the attributed verdict — and the CI gate
//! (`moteur-bench gate`) requires the invariant and the attribution to
//! hold ([`crate::gate::check_timeline`]).

use crate::bronze::{bronze_inputs, bronze_workflow};
use moteur::obs::json::JsonObject;
use moteur::{
    detect_bottlenecks, run_fault_tolerant, EnactorConfig, FtConfig, MoteurError, Obs, SimBackend,
    TimelineSink,
};
use moteur_gridsim::GridConfig;

/// Schema tag of [`render_timeline_json`].
pub const TIMELINE_BENCH_SCHEMA: &str = "moteur-bench/timeline/v1";

/// Campaign shape for the two regimes.
#[derive(Debug, Clone)]
pub struct TimelineSpec {
    /// Campaign size on the ideal grid (byte-accounting regime).
    pub ideal_n_data: usize,
    /// Campaign size on `egee_2006` (queue-saturation regime).
    pub loaded_n_data: usize,
    pub seed: u64,
}

impl Default for TimelineSpec {
    fn default() -> Self {
        TimelineSpec {
            ideal_n_data: 6,
            loaded_n_data: 24,
            seed: 2006,
        }
    }
}

/// What one regime measured.
#[derive(Debug, Clone)]
pub struct TimelineOutcome {
    pub scenario: &'static str,
    pub makespan_secs: f64,
    pub jobs_submitted: usize,
    /// The enactor's own transfer accounting.
    pub bytes_transferred: u64,
    /// Σ of the timeline's per-link byte counters.
    pub timeline_link_bytes: u64,
    /// Largest user-queue depth observed on any CE.
    pub peak_queue_depth: usize,
    /// The detector's verdict (`queue-wait`/`transfer`/`compute`/`idle`).
    pub verdict: String,
    /// Share of attributed seconds behind the verdict.
    pub dominant_fraction: f64,
    pub queue_wait_secs: f64,
    pub transfer_secs: f64,
    pub compute_secs: f64,
}

/// The full benchmark result (`BENCH_timeline.json`).
#[derive(Debug, Clone)]
pub struct TimelineReport {
    pub spec: TimelineSpec,
    pub outcomes: Vec<TimelineOutcome>,
}

impl TimelineReport {
    pub fn outcome(&self, scenario: &str) -> Option<&TimelineOutcome> {
        self.outcomes.iter().find(|o| o.scenario == scenario)
    }

    /// The gate predicate: the byte-accounting invariant must hold on
    /// the ideal grid, and the loaded grid must be attributed to the
    /// CE batch queues.
    pub fn ok(&self) -> bool {
        let (Some(ideal), Some(loaded)) = (self.outcome("ideal"), self.outcome("egee-loaded"))
        else {
            return false;
        };
        ideal.timeline_link_bytes == ideal.bytes_transferred
            && ideal.bytes_transferred > 0
            && loaded.verdict == "queue-wait"
    }
}

/// `egee_2006` scaled down to the large-campaign regime: the four big
/// centres with two worker slots each (8 slots total) and no
/// background churn, keeping the full overhead and transfer model. A
/// campaign wave outnumbers the slots several times over, so jobs sit
/// in the CE batch queues and `queue-wait` is the binding resource.
fn loaded_grid() -> GridConfig {
    let mut grid = GridConfig::egee_2006();
    grid.ces.truncate(4);
    for ce in &mut grid.ces {
        ce.slots = 2;
        ce.background_interarrival = None;
        ce.initial_backlog = 0;
    }
    grid
}

/// Run both regimes with a timeline sink attached.
pub fn run_timeline(spec: &TimelineSpec) -> Result<TimelineReport, MoteurError> {
    if spec.ideal_n_data == 0 || spec.loaded_n_data == 0 {
        return Err(MoteurError::new("timeline benchmark needs n_data > 0"));
    }
    let workflow = bronze_workflow();
    let ft = FtConfig::from_legacy(3);
    let scenarios: [(&'static str, GridConfig, usize); 2] = [
        ("ideal", GridConfig::ideal(), spec.ideal_n_data),
        ("egee-loaded", loaded_grid(), spec.loaded_n_data),
    ];
    let mut outcomes = Vec::new();
    for (scenario, grid, n_data) in scenarios {
        let inputs = bronze_inputs(n_data);
        let sink = TimelineSink::new();
        let state = sink.state();
        let obs = Obs::new(vec![Box::new(sink)]);
        let mut backend = SimBackend::with_obs(grid, spec.seed, &obs);
        let config = EnactorConfig::sp_dp().with_seed(spec.seed);
        let result = run_fault_tolerant(&workflow, &inputs, config, &ft, &mut backend, obs)?;
        let state = state.lock().expect("timeline state");
        let detect = detect_bottlenecks(&state.stats);
        outcomes.push(TimelineOutcome {
            scenario,
            makespan_secs: result.makespan.as_secs_f64(),
            jobs_submitted: result.jobs_submitted,
            bytes_transferred: result.bytes_transferred,
            timeline_link_bytes: state.stats.total_link_bytes(),
            peak_queue_depth: state
                .stats
                .ces
                .values()
                .map(|c| c.peak_queue_depth)
                .max()
                .unwrap_or(0),
            verdict: detect.verdict.as_str().to_string(),
            dominant_fraction: detect.dominant_fraction,
            queue_wait_secs: state.stats.queue_wait_secs,
            transfer_secs: state.stats.transfer_secs,
            compute_secs: state.stats.compute_secs,
        });
    }
    Ok(TimelineReport {
        spec: spec.clone(),
        outcomes,
    })
}

/// Serialise the report (`BENCH_timeline.json`).
pub fn render_timeline_json(report: &TimelineReport) -> String {
    let outcomes = moteur::obs::json::array(report.outcomes.iter().map(|o| {
        JsonObject::new()
            .str("scenario", o.scenario)
            .num("makespan_secs", o.makespan_secs)
            .uint("jobs_submitted", o.jobs_submitted as u64)
            .uint("bytes_transferred", o.bytes_transferred)
            .uint("timeline_link_bytes", o.timeline_link_bytes)
            .uint("peak_queue_depth", o.peak_queue_depth as u64)
            .str("verdict", &o.verdict)
            .num("dominant_fraction", o.dominant_fraction)
            .num("queue_wait_secs", o.queue_wait_secs)
            .num("transfer_secs", o.transfer_secs)
            .num("compute_secs", o.compute_secs)
            .finish()
    }));
    JsonObject::new()
        .str("schema", TIMELINE_BENCH_SCHEMA)
        .str("workflow", "bronze")
        .str("config", "sp+dp")
        .uint("ideal_n_data", report.spec.ideal_n_data as u64)
        .uint("loaded_n_data", report.spec.loaded_n_data as u64)
        .uint("seed", report.spec.seed)
        .bool("ok", report.ok())
        .raw("scenarios", &outcomes)
        .finish()
}

/// Human rendering, one regime per block.
pub fn render_timeline(report: &TimelineReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline telemetry: bronze sp+dp, ideal n_data {} / egee n_data {} (seed {})",
        report.spec.ideal_n_data, report.spec.loaded_n_data, report.spec.seed,
    );
    for o in &report.outcomes {
        let _ = writeln!(
            out,
            "  {:<12} makespan {:>9.1} s  {} jobs  {} bytes (timeline {})  peak queue {}",
            o.scenario,
            o.makespan_secs,
            o.jobs_submitted,
            o.bytes_transferred,
            o.timeline_link_bytes,
            o.peak_queue_depth,
        );
        let _ = writeln!(
            out,
            "  {:<12} verdict {} ({:.0}% of q {:.0}s / t {:.0}s / c {:.0}s)",
            "",
            o.verdict,
            o.dominant_fraction * 100.0,
            o.queue_wait_secs,
            o.transfer_secs,
            o.compute_secs,
        );
    }
    let _ = writeln!(
        out,
        "  byte accounting + queue attribution: {}",
        if report.ok() { "(ok)" } else { "(GATE FAILS)" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> TimelineSpec {
        TimelineSpec {
            ideal_n_data: 3,
            loaded_n_data: 24,
            seed: 2006,
        }
    }

    #[test]
    fn link_bytes_reconcile_with_the_enactor_on_the_ideal_grid() {
        let report = run_timeline(&quick_spec()).unwrap();
        let ideal = report.outcome("ideal").unwrap();
        assert!(ideal.bytes_transferred > 0);
        assert_eq!(
            ideal.timeline_link_bytes, ideal.bytes_transferred,
            "timeline lost or double-counted transfer bytes"
        );
        // Frictionless grid: dispatch is immediate (a job is enqueued
        // and started at the same instant), nothing transfers slowly.
        assert!(ideal.peak_queue_depth <= 1, "{}", ideal.peak_queue_depth);
        assert_eq!(ideal.verdict, "compute");
    }

    #[test]
    fn the_loaded_grid_is_attributed_to_ce_queues() {
        let report = run_timeline(&quick_spec()).unwrap();
        let loaded = report.outcome("egee-loaded").unwrap();
        assert_eq!(loaded.verdict, "queue-wait", "{loaded:?}");
        assert!(loaded.peak_queue_depth > 0);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn timeline_json_carries_the_schema_and_both_scenarios() {
        let report = run_timeline(&TimelineSpec {
            ideal_n_data: 2,
            loaded_n_data: 6,
            seed: 7,
        })
        .unwrap();
        let json = render_timeline_json(&report);
        assert!(json.contains("\"schema\":\"moteur-bench/timeline/v1\""));
        assert!(json.contains("\"ideal\""));
        assert!(json.contains("\"egee-loaded\""));
        assert!(json.contains("\"timeline_link_bytes\""));
        let human = render_timeline(&report);
        assert!(human.contains("timeline telemetry"));
        assert!(human.contains("verdict"));
    }
}
