//! Campaign sweeps for the perf observatory: run the six Table-1
//! configurations over a range of campaign sizes, fit the paper's
//! y-intercept/slope model (§4) to each, check model-vs-observed drift
//! (eq. 1–4), and serialise everything in the stable `BENCH_*` schemas
//! the regression gate consumes.
//!
//! The default load is [`bronze_chain_workflow`]: the Bronze-Standard
//! critical path as a pure streaming pipeline on [`GridConfig::ideal`].
//! On that combination the closed forms are exact, so any drift is a
//! regression in the enactor, the model, or the instrumentation — the
//! sweep doubles as an end-to-end correctness probe. `--workflow bronze`
//! and `--grid egee` switch to the full Fig. 9 DAG on the stochastic
//! EGEE grid for realistic (but noisy) numbers.

use crate::bronze::{bronze_chain_inputs, bronze_chain_workflow, bronze_inputs, bronze_workflow};
use moteur::lint::CONFIG_KEYS;
use moteur::obs::json::{array, JsonObject};
use moteur::{
    check_drift, fit_sweep, predict, run, EnactorConfig, InputData, MakespanFit, MoteurError,
    Observation, SimBackend, SweepPoint, Workflow,
};
use moteur_gridsim::GridConfig;

/// Which workflow a sweep enacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepWorkflow {
    /// The critical-path streaming chain — exact under eq. 1–4.
    Chain,
    /// The full Fig. 9 DAG — realistic, with branch slack the model
    /// deliberately ignores.
    Bronze,
}

impl SweepWorkflow {
    pub fn name(self) -> &'static str {
        match self {
            Self::Chain => "bronze-chain",
            Self::Bronze => "bronze",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "chain" | "bronze-chain" => Some(Self::Chain),
            "bronze" => Some(Self::Bronze),
            _ => None,
        }
    }

    fn workflow(self) -> Workflow {
        match self {
            Self::Chain => bronze_chain_workflow(),
            Self::Bronze => bronze_workflow(),
        }
    }

    fn inputs(self, n_data: usize) -> InputData {
        match self {
            Self::Chain => bronze_chain_inputs(n_data),
            Self::Bronze => bronze_inputs(n_data),
        }
    }
}

/// Which simulated grid a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepGrid {
    /// Zero overhead, no failures, unbounded resources — deterministic.
    Ideal,
    /// The paper's EGEE characterisation — stochastic.
    Egee,
}

impl SweepGrid {
    pub fn name(self) -> &'static str {
        match self {
            Self::Ideal => "ideal",
            Self::Egee => "egee",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ideal" => Some(Self::Ideal),
            "egee" => Some(Self::Egee),
            _ => None,
        }
    }

    fn config(self) -> GridConfig {
        match self {
            Self::Ideal => GridConfig::ideal(),
            Self::Egee => GridConfig::egee_2006(),
        }
    }
}

/// Everything that determines a sweep's numbers.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Campaign sizes (`n_data`) to sweep over; at least two for a fit.
    pub sizes: Vec<usize>,
    pub seed: u64,
    pub workflow: SweepWorkflow,
    pub grid: SweepGrid,
    /// Per-job overhead fed to the model (the paper's `R`). Zero on the
    /// ideal grid.
    pub overhead: f64,
    /// Relative-error tolerance for the drift check.
    pub tolerance: f64,
}

impl SweepSpec {
    /// The default observatory sweep: chain workflow, ideal grid,
    /// zero modelled overhead, 5 % drift tolerance.
    pub fn new(sizes: Vec<usize>) -> Self {
        Self {
            sizes,
            seed: 2006,
            workflow: SweepWorkflow::Chain,
            grid: SweepGrid::Ideal,
            overhead: 0.0,
            tolerance: 0.05,
        }
    }
}

/// One measured cell of the sweep: a configuration at a campaign size.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Canonical lowercase key (`lint::predict` spelling).
    pub config: &'static str,
    pub n_data: usize,
    pub makespan_secs: f64,
    pub jobs_submitted: usize,
    pub predicted_secs: f64,
    /// `|observed − predicted| / predicted`.
    pub rel_error: f64,
}

/// Per-configuration roll-up across the sweep.
#[derive(Debug, Clone)]
pub struct ConfigSummary {
    pub config: &'static str,
    /// `None` only for degenerate sweeps (fewer than two sizes).
    pub fit: Option<MakespanFit>,
    /// Observed makespan at the largest swept size.
    pub makespan_at_max: f64,
    /// Worst model-vs-observed relative error across the sweep.
    pub max_rel_error: f64,
    /// True when every point stayed within the drift tolerance.
    pub drift_ok: bool,
}

/// The full campaign result in summary form.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    pub workflow: &'static str,
    pub grid: &'static str,
    pub seed: u64,
    pub sizes: Vec<usize>,
    pub overhead: f64,
    pub tolerance: f64,
    /// One entry per Table-1 configuration, paper row order.
    pub configs: Vec<ConfigSummary>,
    /// Named makespan ratios at the largest size, e.g.
    /// `("nop_over_sp_dp", 4.1)`.
    pub speedups: Vec<(&'static str, f64)>,
}

impl BenchSummary {
    pub fn config(&self, key: &str) -> Option<&ConfigSummary> {
        self.configs.iter().find(|c| c.config == key)
    }
}

/// Intern an enactor label (`"SP+DP"`) as its canonical predict key.
fn config_key(label: &str) -> &'static str {
    CONFIG_KEYS
        .iter()
        .find(|k| k.eq_ignore_ascii_case(label))
        .expect("table1 label must have a predict key")
}

/// The speed-up ratios the gate tracks, as (name, numerator, denominator)
/// over `makespan_at_max`.
const SPEEDUP_RATIOS: [(&str, &str, &str); 3] = [
    ("nop_over_sp", "nop", "sp"),
    ("nop_over_sp_dp", "nop", "sp+dp"),
    ("nop_over_sp_dp_jg", "nop", "sp+dp+jg"),
];

/// Run the sweep: every Table-1 configuration at every size, one fresh
/// simulated grid per cell, model prediction and drift per point.
pub fn run_sweep(spec: &SweepSpec) -> Result<(Vec<BenchPoint>, BenchSummary), MoteurError> {
    if spec.sizes.is_empty() {
        return Err(MoteurError::new("sweep needs at least one campaign size"));
    }
    let workflow = spec.workflow.workflow();
    let mut points: Vec<BenchPoint> = Vec::new();
    for &n in &spec.sizes {
        let prediction = predict(&workflow, n, spec.overhead)?;
        for cfg in EnactorConfig::table1_configurations() {
            let key = config_key(cfg.label());
            let inputs = spec.workflow.inputs(n);
            let mut backend = SimBackend::new(spec.grid.config(), spec.seed);
            let result = run(&workflow, &inputs, cfg.with_seed(spec.seed), &mut backend)?;
            let makespan = result.makespan.as_secs_f64();
            let drift = check_drift(
                &prediction,
                &[Observation {
                    config: key.to_string(),
                    makespan_secs: makespan,
                }],
                spec.tolerance,
            );
            let entry = drift
                .entries
                .first()
                .expect("every table1 config has a prediction row");
            points.push(BenchPoint {
                config: key,
                n_data: n,
                makespan_secs: makespan,
                jobs_submitted: result.jobs_submitted,
                predicted_secs: entry.predicted_secs,
                rel_error: entry.rel_error,
            });
        }
    }

    let max_n = *spec.sizes.iter().max().expect("sizes not empty");
    let configs: Vec<ConfigSummary> = EnactorConfig::table1_configurations()
        .iter()
        .map(|cfg| {
            let key = config_key(cfg.label());
            let mine: Vec<&BenchPoint> = points.iter().filter(|p| p.config == key).collect();
            let sweep: Vec<SweepPoint> = mine
                .iter()
                .map(|p| SweepPoint {
                    n_data: p.n_data,
                    makespan_secs: p.makespan_secs,
                })
                .collect();
            let at_max = mine
                .iter()
                .find(|p| p.n_data == max_n)
                .expect("every config measured at max size");
            ConfigSummary {
                config: key,
                fit: fit_sweep(&sweep),
                makespan_at_max: at_max.makespan_secs,
                max_rel_error: mine.iter().map(|p| p.rel_error).fold(0.0, f64::max),
                drift_ok: mine.iter().all(|p| p.rel_error <= spec.tolerance),
            }
        })
        .collect();

    let speedup_of = |key: &str| {
        configs
            .iter()
            .find(|c| c.config == key)
            .map(|c| c.makespan_at_max)
    };
    let speedups = SPEEDUP_RATIOS
        .iter()
        .filter_map(
            |&(name, num, den)| match (speedup_of(num), speedup_of(den)) {
                (Some(n), Some(d)) if d > 0.0 => Some((name, n / d)),
                _ => None,
            },
        )
        .collect();

    let summary = BenchSummary {
        workflow: spec.workflow.name(),
        grid: spec.grid.name(),
        seed: spec.seed,
        sizes: spec.sizes.clone(),
        overhead: spec.overhead,
        tolerance: spec.tolerance,
        configs,
        speedups,
    };
    Ok((points, summary))
}

/// Schema tag of [`render_points_json`].
pub const POINT_SCHEMA: &str = "moteur-bench/point/v1";
/// Schema tag of [`render_summary_json`].
pub const SUMMARY_SCHEMA: &str = "moteur-bench/summary/v1";

/// Serialise the raw sweep points (`BENCH_point.json`).
pub fn render_points_json(spec: &SweepSpec, points: &[BenchPoint]) -> String {
    let rows = points.iter().map(|p| {
        JsonObject::new()
            .str("config", p.config)
            .uint("n_data", p.n_data as u64)
            .num("makespan_secs", p.makespan_secs)
            .uint("jobs", p.jobs_submitted as u64)
            .num("predicted_secs", p.predicted_secs)
            .num("rel_error", p.rel_error)
            .finish()
    });
    JsonObject::new()
        .str("schema", POINT_SCHEMA)
        .str("workflow", spec.workflow.name())
        .str("grid", spec.grid.name())
        .uint("seed", spec.seed)
        .num("overhead", spec.overhead)
        .raw("points", &array(rows))
        .finish()
}

/// Serialise the roll-up (`BENCH_summary.json`) — the file the
/// regression gate compares against the committed baseline.
pub fn render_summary_json(summary: &BenchSummary) -> String {
    let configs = summary.configs.iter().map(|c| {
        let mut o = JsonObject::new().str("config", c.config);
        match &c.fit {
            Some(fit) => {
                o = o
                    .num("intercept", fit.intercept)
                    .num("slope", fit.slope)
                    .num("r_squared", fit.r_squared);
                o = match fit.intercept_slope_ratio {
                    Some(r) => o.num("intercept_slope_ratio", r),
                    None => o.raw("intercept_slope_ratio", "null"),
                };
            }
            None => {
                o = o
                    .raw("intercept", "null")
                    .raw("slope", "null")
                    .raw("r_squared", "null")
                    .raw("intercept_slope_ratio", "null");
            }
        }
        o.num("makespan_at_max", c.makespan_at_max)
            .num("max_rel_error", c.max_rel_error)
            .bool("drift_ok", c.drift_ok)
            .finish()
    });
    let mut speedups = JsonObject::new();
    for (name, ratio) in &summary.speedups {
        speedups = speedups.num(name, *ratio);
    }
    JsonObject::new()
        .str("schema", SUMMARY_SCHEMA)
        .str("workflow", summary.workflow)
        .str("grid", summary.grid)
        .uint("seed", summary.seed)
        .raw(
            "sizes",
            &array(summary.sizes.iter().map(ToString::to_string)),
        )
        .num("overhead", summary.overhead)
        .num("tolerance", summary.tolerance)
        .raw("configs", &array(configs))
        .raw("speedups", &speedups.finish())
        .finish()
}

/// Human rendering of the summary, one line per configuration.
pub fn render_summary(summary: &BenchSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} grid, sizes {:?} (seed {}):",
        summary.workflow, summary.grid, summary.sizes, summary.seed
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>12} {:>10} {:>8} {:>12} {:>10}  drift",
        "config", "intercept", "slope", "r2", "at_max", "max_err%"
    );
    for c in &summary.configs {
        let (i, s, r2) = c.fit.map_or((f64::NAN, f64::NAN, f64::NAN), |f| {
            (f.intercept, f.slope, f.r_squared)
        });
        let _ = writeln!(
            out,
            "  {:<10} {:>12.1} {:>10.2} {:>8.4} {:>12.1} {:>10.2}  {}",
            c.config,
            i,
            s,
            r2,
            c.makespan_at_max,
            c.max_rel_error * 100.0,
            if c.drift_ok { "ok" } else { "DRIFT" }
        );
    }
    for (name, ratio) in &summary.speedups {
        let _ = writeln!(out, "  speedup {name} = {ratio:.2}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> SweepSpec {
        SweepSpec::new(vec![1, 2, 4])
    }

    #[test]
    fn chain_sweep_on_the_ideal_grid_matches_the_model_exactly() {
        let (points, summary) = run_sweep(&quick_spec()).unwrap();
        assert_eq!(points.len(), 6 * 3);
        assert_eq!(summary.configs.len(), 6);
        for c in &summary.configs {
            assert!(c.drift_ok, "{} drifted: {}", c.config, c.max_rel_error);
            assert!(c.max_rel_error <= 0.05);
            let fit = c.fit.expect("three sizes fit a line");
            assert!(fit.r_squared >= 0.99, "{}: r2 {}", c.config, fit.r_squared);
        }
        // The chain totals 330 s of compute; stage max is 120 s.
        let nop = summary.config("nop").unwrap();
        let fit = nop.fit.unwrap();
        assert!((fit.slope - 330.0).abs() < 1e-6, "nop slope {}", fit.slope);
        assert!(fit.intercept.abs() < 1e-6);
        let sp = summary.config("sp").unwrap().fit.unwrap();
        assert!((sp.slope - 120.0).abs() < 1e-6, "sp slope {}", sp.slope);
        assert!((sp.intercept - 210.0).abs() < 1e-6);
        // DP-style configurations are flat at one chain latency.
        for key in ["dp", "sp+dp", "sp+dp+jg"] {
            let c = summary.config(key).unwrap();
            assert!(
                (c.makespan_at_max - 330.0).abs() < 1e-6,
                "{key}: {}",
                c.makespan_at_max
            );
            assert!(c.fit.unwrap().slope.abs() < 1e-9);
        }
    }

    #[test]
    fn speedups_cover_the_gate_ratios() {
        let (_, summary) = run_sweep(&quick_spec()).unwrap();
        let names: Vec<&str> = summary.speedups.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["nop_over_sp", "nop_over_sp_dp", "nop_over_sp_dp_jg"]
        );
        for (name, ratio) in &summary.speedups {
            assert!(*ratio >= 1.0, "{name} = {ratio}");
        }
    }

    #[test]
    fn json_renderings_carry_the_schema_tags() {
        let spec = SweepSpec::new(vec![1, 2]);
        let (points, summary) = run_sweep(&spec).unwrap();
        let pj = render_points_json(&spec, &points);
        assert!(pj.contains("\"schema\":\"moteur-bench/point/v1\""));
        assert!(pj.contains("\"config\":\"sp+dp\""));
        let sj = render_summary_json(&summary);
        assert!(sj.contains("\"schema\":\"moteur-bench/summary/v1\""));
        assert!(sj.contains("\"speedups\":{"));
        assert!(sj.contains("\"drift_ok\":true"));
        // Flat configurations have no break-even ratio.
        assert!(sj.contains("\"intercept_slope_ratio\":null"));
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let mut spec = quick_spec();
        spec.sizes.clear();
        assert!(run_sweep(&spec).is_err());
    }
}
