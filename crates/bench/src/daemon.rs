//! Multi-tenant daemon benchmark: a concurrent submission wave against
//! one shared enactment daemon.
//!
//! A `seed` tenant first enacts the Bronze-Standard chain once, cold,
//! to populate the shared memo table. Then `n_workflows` identical
//! submissions arrive across `n_tenants` tenants and are multiplexed
//! by the daemon's weighted fair scheduler over a single virtual-time
//! backend. The campaign reports sustained throughput (wall-clock
//! workflows per second), the p50/p99 time-to-first-job in virtual
//! seconds (admission latency: how long a submission waits behind its
//! tenant's in-flight cap), and the cross-tenant cache-hit ratio — the
//! paper's "several data-intensive applications share one data
//! manager" scenario, where the second tenant's identical submission
//! must not recompute what the first already derived.

use crate::bronze::{bronze_chain_workflow_xml, IMAGE_BYTES};
use moteur::obs::json::{array, JsonObject};
use moteur::{
    Daemon, DaemonConfig, DataStore, EnactorConfig, FtConfig, InputData, InstanceState,
    MoteurError, StoreConfig, VirtualBackend, Workflow,
};

/// Schema tag of [`render_daemon_json`].
pub const DAEMON_BENCH_SCHEMA: &str = "moteur-bench/daemon/v1";

/// Per-tenant slice of the wave.
#[derive(Debug, Clone)]
pub struct TenantRow {
    pub tenant: String,
    pub workflows: usize,
    pub store_hits: u64,
    pub store_misses: u64,
}

/// Everything measured by one submission wave.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    pub n_workflows: usize,
    pub n_tenants: usize,
    pub n_data: usize,
    /// Wave instances that reached `Succeeded`.
    pub succeeded: usize,
    /// Wall-clock duration of the wave (submit + drain), host seconds.
    pub wall_secs: f64,
    pub workflows_per_sec: f64,
    /// Time-to-first-job percentiles over the wave, virtual seconds.
    pub ttfj_p50_secs: f64,
    pub ttfj_p99_secs: f64,
    /// Grid jobs the cold seed enactment submitted.
    pub seed_jobs: usize,
    /// Memo-table traffic of the wave tenants only (seed excluded).
    pub cross_tenant_hits: u64,
    pub cross_tenant_misses: u64,
    pub store_entries: usize,
    pub tenants: Vec<TenantRow>,
}

impl DaemonReport {
    /// Hit ratio of the wave tenants against data the seed tenant
    /// derived — the headline cross-tenant sharing number.
    pub fn cross_tenant_hit_ratio(&self) -> f64 {
        let total = self.cross_tenant_hits + self.cross_tenant_misses;
        if total == 0 {
            0.0
        } else {
            self.cross_tenant_hits as f64 / total as f64
        }
    }

    /// Did the wave meet its headline targets? Every submission must
    /// succeed and the wave must reuse ≥ 90% of the seed's derivations
    /// (the ISSUE's cross-tenant sharing bar, also enforced in CI by
    /// `gate::check_daemon`).
    pub fn ok(&self) -> bool {
        self.succeeded == self.n_workflows && self.cross_tenant_hit_ratio() >= 0.9
    }
}

fn parser(workflow: &str, inputs: &str) -> Result<(Workflow, InputData), MoteurError> {
    let w = moteur_scufl::parse_workflow(workflow).map_err(|e| MoteurError::new(e.message))?;
    let i = moteur_scufl::parse_input_data(inputs).map_err(|e| MoteurError::new(e.message))?;
    Ok((w, i))
}

/// Input document for the chain workflow: `n_data` images, identical
/// across tenants so every derived datum is shareable.
fn chain_inputs_xml(n_data: usize) -> String {
    let items: String = (0..n_data)
        .map(|j| {
            format!(
                r#"<item type="file" gfn="gfn://lacassagne/pair{j:03}.hdr" bytes="{IMAGE_BYTES}"/>"#
            )
        })
        .collect();
    format!(r#"<inputdata><input name="images">{items}</input></inputdata>"#)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run the wave: one cold seed enactment, then `n_workflows` identical
/// submissions spread round-robin over `n_tenants` tenants, drained to
/// completion on a shared virtual-time backend.
pub fn run_daemon_campaign(
    n_workflows: usize,
    n_tenants: usize,
    n_data: usize,
) -> Result<DaemonReport, MoteurError> {
    let workflow_xml = bronze_chain_workflow_xml();
    let inputs_xml = chain_inputs_xml(n_data);
    let mut daemon = Daemon::new(
        Box::new(VirtualBackend::new()),
        DataStore::in_memory(StoreConfig::default()),
        parser,
        DaemonConfig::default(),
    );

    // Cold seed: tenant `seed` derives every datum once.
    let seed_id = daemon.submit(
        "seed",
        &workflow_xml,
        &inputs_xml,
        EnactorConfig::sp_dp(),
        FtConfig::default(),
    )?;
    daemon.drain();
    let seed = daemon
        .status(seed_id)
        .ok_or_else(|| MoteurError::new("seed instance vanished"))?;
    if seed.state != InstanceState::Succeeded {
        return Err(MoteurError::new(format!(
            "seed enactment did not succeed: {:?}",
            seed.error
        )));
    }

    // The wave: concurrent identical submissions across the tenants.
    let clock = std::time::Instant::now();
    let mut ids = Vec::with_capacity(n_workflows);
    for j in 0..n_workflows {
        let tenant = format!("t{}", j % n_tenants);
        ids.push(daemon.submit(
            &tenant,
            &workflow_xml,
            &inputs_xml,
            EnactorConfig::sp_dp(),
            FtConfig::default(),
        )?);
    }
    daemon.drain();
    let wall_secs = clock.elapsed().as_secs_f64();

    let mut succeeded = 0usize;
    let mut ttfj: Vec<f64> = Vec::with_capacity(n_workflows);
    for &id in &ids {
        let s = daemon
            .status(id)
            .ok_or_else(|| MoteurError::new("wave instance vanished"))?;
        if s.state == InstanceState::Succeeded {
            succeeded += 1;
        }
        if let Some(first) = s.first_job_at {
            ttfj.push(first - s.submitted_at);
        }
    }
    ttfj.sort_by(|a, b| a.partial_cmp(b).expect("ttfj values are finite"));

    let metrics = daemon.metrics();
    let mut cross_tenant_hits = 0u64;
    let mut cross_tenant_misses = 0u64;
    let mut tenants = Vec::new();
    for t in &metrics.tenants {
        if t.tenant == "seed" {
            continue;
        }
        cross_tenant_hits += t.store_hits;
        cross_tenant_misses += t.store_misses;
        tenants.push(TenantRow {
            tenant: t.tenant.clone(),
            workflows: ids
                .iter()
                .enumerate()
                .filter(|(j, _)| format!("t{}", j % n_tenants) == t.tenant)
                .count(),
            store_hits: t.store_hits,
            store_misses: t.store_misses,
        });
    }

    Ok(DaemonReport {
        n_workflows,
        n_tenants,
        n_data,
        succeeded,
        wall_secs,
        workflows_per_sec: if wall_secs > 0.0 {
            n_workflows as f64 / wall_secs
        } else {
            f64::INFINITY
        },
        ttfj_p50_secs: percentile(&ttfj, 0.50),
        ttfj_p99_secs: percentile(&ttfj, 0.99),
        seed_jobs: seed.jobs_submitted,
        cross_tenant_hits,
        cross_tenant_misses,
        store_entries: daemon.store().stats().entries,
        tenants,
    })
}

/// Serialise the report (`BENCH_daemon.json`).
pub fn render_daemon_json(report: &DaemonReport) -> String {
    let tenants = array(report.tenants.iter().map(|t| {
        JsonObject::new()
            .str("tenant", &t.tenant)
            .uint("workflows", t.workflows as u64)
            .uint("store_hits", t.store_hits)
            .uint("store_misses", t.store_misses)
            .finish()
    }));
    JsonObject::new()
        .str("schema", DAEMON_BENCH_SCHEMA)
        .str("workflow", "bronze-chain")
        .str("grid", "virtual")
        .str("config", "sp+dp")
        .uint("n_workflows", report.n_workflows as u64)
        .uint("n_tenants", report.n_tenants as u64)
        .uint("n_data", report.n_data as u64)
        .uint("succeeded", report.succeeded as u64)
        .num("wall_secs", report.wall_secs)
        .num("workflows_per_sec", report.workflows_per_sec)
        .num("ttfj_p50_secs", report.ttfj_p50_secs)
        .num("ttfj_p99_secs", report.ttfj_p99_secs)
        .uint("seed_jobs", report.seed_jobs as u64)
        .uint("cross_tenant_hits", report.cross_tenant_hits)
        .uint("cross_tenant_misses", report.cross_tenant_misses)
        .num("cross_tenant_hit_ratio", report.cross_tenant_hit_ratio())
        .uint("store_entries", report.store_entries as u64)
        .raw("tenants", &tenants)
        .finish()
}

/// Human rendering, one line per fact.
pub fn render_daemon(report: &DaemonReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "daemon wave: {} bronze-chain submissions across {} tenants (n_data {}), shared store",
        report.n_workflows, report.n_tenants, report.n_data
    );
    let _ = writeln!(
        out,
        "  {} succeeded in {:.2} s wall ({:.0} workflows/s sustained)",
        report.succeeded, report.wall_secs, report.workflows_per_sec
    );
    let _ = writeln!(
        out,
        "  time-to-first-job p50 {:.1} s, p99 {:.1} s (virtual)",
        report.ttfj_p50_secs, report.ttfj_p99_secs
    );
    let _ = writeln!(
        out,
        "  cross-tenant: {} hits / {} misses ({:.0}% hit ratio; seed ran {} jobs, store holds {} entries)",
        report.cross_tenant_hits,
        report.cross_tenant_misses,
        report.cross_tenant_hit_ratio() * 100.0,
        report.seed_jobs,
        report.store_entries
    );
    for t in &report.tenants {
        let _ = writeln!(
            out,
            "    {}: {} workflows, {} hits / {} misses",
            t.tenant, t.workflows, t.store_hits, t.store_misses
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_wave_shares_the_seed_tenants_derivations() {
        let r = run_daemon_campaign(8, 4, 2).unwrap();
        assert_eq!(r.succeeded, 8);
        assert!(r.seed_jobs > 0, "seed enactment must hit the grid");
        assert_eq!(r.cross_tenant_misses, 0, "wave recomputed: {r:?}");
        assert!(r.cross_tenant_hits > 0);
        assert!((r.cross_tenant_hit_ratio() - 1.0).abs() < f64::EPSILON);
        assert_eq!(r.tenants.len(), 4);
        assert!(r.tenants.iter().all(|t| t.workflows == 2));
        assert!(r.ttfj_p99_secs >= r.ttfj_p50_secs);
    }

    #[test]
    fn daemon_json_carries_the_schema_tag() {
        let r = run_daemon_campaign(4, 2, 2).unwrap();
        let json = render_daemon_json(&r);
        assert!(json.contains("\"schema\":\"moteur-bench/daemon/v1\""));
        assert!(json.contains("\"cross_tenant_hit_ratio\""));
        assert!(json.contains("\"ttfj_p99_secs\""));
        let human = render_daemon(&r);
        assert!(human.contains("hit ratio"));
        assert!(human.contains("time-to-first-job"));
    }
}
