//! Bench regression gate: compare a fresh `BENCH_summary.json` against
//! the committed baseline and fail when performance regressed.
//!
//! Three families of checks, all driven by the stable summary schema
//! (see [`crate::sweep::SUMMARY_SCHEMA`]):
//!
//! - **makespan**: per configuration, `makespan_at_max` must not exceed
//!   the baseline by more than the threshold fraction;
//! - **speedup**: each named ratio must not fall below the baseline by
//!   more than the threshold fraction (a lost speed-up means an
//!   optimisation stopped working even if absolute times moved);
//! - **drift**: the fresh summary's `drift_ok` flags must all hold —
//!   the model and the enactor must still agree on the ideal grid.
//!
//! `ci.sh` wires this behind `moteur-bench gate`; the documented
//! `MOTEUR_BENCH_UPDATE_BASELINE=1` override (handled by the binary,
//! not here) rewrites the baseline instead of failing.

use moteur::lint::JsonValue;

/// One baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// What was compared, e.g. `makespan/nop` or `speedup/nop_over_sp`.
    pub what: String,
    pub baseline: f64,
    pub current: f64,
    pub ok: bool,
}

/// The gate's verdict.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Allowed relative regression (e.g. `0.10` = 10 %).
    pub threshold: f64,
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// True when every check passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// Failed checks only.
    pub fn failures(&self) -> impl Iterator<Item = &GateCheck> {
        self.checks.iter().filter(|c| !c.ok)
    }

    /// Human rendering, one line per check.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench gate (threshold {:.0}%): {}",
            self.threshold * 100.0,
            if self.ok() { "PASS" } else { "FAIL" }
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "  {:<28} baseline {:>12.2} current {:>12.2}  {}",
                c.what,
                c.baseline,
                c.current,
                if c.ok { "ok" } else { "REGRESSED" }
            );
        }
        out
    }
}

fn parse_summary(label: &str, json: &str) -> Result<JsonValue, String> {
    let value = JsonValue::parse(json).map_err(|e| format!("{label}: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(crate::sweep::SUMMARY_SCHEMA) => Ok(value),
        Some(other) => Err(format!(
            "{label}: schema `{other}`, expected `{}`",
            crate::sweep::SUMMARY_SCHEMA
        )),
        None => Err(format!("{label}: missing schema tag")),
    }
}

fn config_field(summary: &JsonValue, config: &str, field: &str) -> Option<f64> {
    summary
        .get("configs")?
        .as_array()?
        .iter()
        .find(|c| c.get("config").and_then(JsonValue::as_str) == Some(config))?
        .get(field)?
        .as_f64()
}

fn config_names(summary: &JsonValue) -> Vec<String> {
    summary
        .get("configs")
        .and_then(JsonValue::as_array)
        .map(|cs| {
            cs.iter()
                .filter_map(|c| c.get("config").and_then(JsonValue::as_str))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// Compare a current summary against the baseline.
///
/// Fails with `Err` on malformed/mismatched documents; regressions are
/// reported through the returned [`GateReport`], not as errors.
pub fn check_gate(
    baseline_json: &str,
    current_json: &str,
    threshold: f64,
) -> Result<GateReport, String> {
    let baseline = parse_summary("baseline", baseline_json)?;
    let current = parse_summary("current", current_json)?;
    let mut checks = Vec::new();

    for config in config_names(&baseline) {
        let Some(base) = config_field(&baseline, &config, "makespan_at_max") else {
            continue;
        };
        match config_field(&current, &config, "makespan_at_max") {
            Some(cur) => {
                checks.push(GateCheck {
                    what: format!("makespan/{config}"),
                    baseline: base,
                    current: cur,
                    ok: cur <= base * (1.0 + threshold) + 1e-9,
                });
            }
            None => {
                // A configuration that vanished from the summary is a
                // regression of coverage, not of speed.
                checks.push(GateCheck {
                    what: format!("makespan/{config} (missing)"),
                    baseline: base,
                    current: f64::NAN,
                    ok: false,
                });
            }
        }
        let drift_ok = current
            .get("configs")
            .and_then(JsonValue::as_array)
            .and_then(|cs| {
                cs.iter()
                    .find(|c| c.get("config").and_then(JsonValue::as_str) == Some(&*config))
            })
            .and_then(|c| c.get("drift_ok"))
            .and_then(JsonValue::as_bool);
        if let Some(ok) = drift_ok {
            checks.push(GateCheck {
                what: format!("drift/{config}"),
                baseline: 1.0,
                current: f64::from(u8::from(ok)),
                ok,
            });
        }
    }

    if let Some(JsonValue::Object(pairs)) = baseline.get("speedups") {
        for (name, value) in pairs {
            let Some(base) = value.as_f64() else { continue };
            let cur = current
                .get("speedups")
                .and_then(|s| s.get(name))
                .and_then(JsonValue::as_f64);
            match cur {
                Some(cur) => checks.push(GateCheck {
                    what: format!("speedup/{name}"),
                    baseline: base,
                    current: cur,
                    ok: cur >= base * (1.0 - threshold) - 1e-9,
                }),
                None => checks.push(GateCheck {
                    what: format!("speedup/{name} (missing)"),
                    baseline: base,
                    current: f64::NAN,
                    ok: false,
                }),
            }
        }
    }

    Ok(GateReport { threshold, checks })
}

/// Checks over a `BENCH_faults.json` document (schema
/// `moteur-bench/faults/v1`): timeout+replication must beat naive
/// resubmission on mean makespan, and no strategy may have quarantined
/// an item. Returned as [`GateCheck`]s so the binary can fold them into
/// the same report as the baseline comparison.
pub fn check_faults(faults_json: &str) -> Result<Vec<GateCheck>, String> {
    let value = JsonValue::parse(faults_json).map_err(|e| format!("faults: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(crate::faults::FAULTS_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "faults: schema `{other}`, expected `{}`",
                crate::faults::FAULTS_SCHEMA
            ))
        }
        None => return Err("faults: missing schema tag".to_string()),
    }
    let strategies = value
        .get("strategies")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "faults: missing strategies array".to_string())?;
    let mean = |name: &str| -> Option<f64> {
        strategies
            .iter()
            .find(|s| s.get("strategy").and_then(JsonValue::as_str) == Some(name))?
            .get("mean_makespan_secs")?
            .as_f64()
    };
    let naive = mean("naive").ok_or_else(|| "faults: missing `naive` strategy".to_string())?;
    let replication = mean("timeout+replication")
        .ok_or_else(|| "faults: missing `timeout+replication` strategy".to_string())?;
    let quarantined: f64 = strategies
        .iter()
        .filter_map(|s| s.get("quarantined").and_then(JsonValue::as_f64))
        .sum();
    Ok(vec![
        GateCheck {
            what: "faults/replication_vs_naive".to_string(),
            baseline: naive,
            current: replication,
            ok: replication < naive,
        },
        GateCheck {
            what: "faults/quarantined".to_string(),
            baseline: 0.0,
            current: quarantined,
            ok: quarantined == 0.0,
        },
    ])
}

/// Cross-tenant sharing bar for the daemon wave: the warm tenants must
/// reuse at least this fraction of the seed tenant's derivations.
pub const DAEMON_HIT_RATIO_FLOOR: f64 = 0.9;

/// Admission-latency ceiling for the daemon wave, virtual seconds. The
/// default 100-submission wave queues 24 workflows per tenant behind a
/// 4-deep in-flight cap; with the memo table warm each admitted
/// instance drains in a few virtual seconds of fetches, so the p99
/// time-to-first-job measures 30 s and sits well under this bound
/// unless admission or fair dispatch regresses.
pub const DAEMON_TTFJ_P99_CEILING_SECS: f64 = 600.0;

/// Checks over a `BENCH_daemon.json` document (schema
/// `moteur-bench/daemon/v1`): every submission in the wave must have
/// succeeded, the cross-tenant cache-hit ratio must clear
/// [`DAEMON_HIT_RATIO_FLOOR`], and the p99 time-to-first-job must stay
/// under [`DAEMON_TTFJ_P99_CEILING_SECS`].
pub fn check_daemon(daemon_json: &str) -> Result<Vec<GateCheck>, String> {
    let value = JsonValue::parse(daemon_json).map_err(|e| format!("daemon: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(crate::daemon::DAEMON_BENCH_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "daemon: schema `{other}`, expected `{}`",
                crate::daemon::DAEMON_BENCH_SCHEMA
            ))
        }
        None => return Err("daemon: missing schema tag".to_string()),
    }
    let num = |field: &str| -> Result<f64, String> {
        value
            .get(field)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("daemon: missing `{field}`"))
    };
    let n_workflows = num("n_workflows")?;
    let succeeded = num("succeeded")?;
    let hit_ratio = num("cross_tenant_hit_ratio")?;
    let ttfj_p99 = num("ttfj_p99_secs")?;
    Ok(vec![
        GateCheck {
            what: "daemon/completed".to_string(),
            baseline: n_workflows,
            current: succeeded,
            ok: succeeded == n_workflows,
        },
        GateCheck {
            what: "daemon/cross_tenant_hit_ratio".to_string(),
            baseline: DAEMON_HIT_RATIO_FLOOR,
            current: hit_ratio,
            ok: hit_ratio >= DAEMON_HIT_RATIO_FLOOR,
        },
        GateCheck {
            what: "daemon/ttfj_p99_secs".to_string(),
            baseline: DAEMON_TTFJ_P99_CEILING_SECS,
            current: ttfj_p99,
            ok: ttfj_p99 <= DAEMON_TTFJ_P99_CEILING_SECS,
        },
    ])
}

/// Checks over a `BENCH_timeline.json` document (schema
/// `moteur-bench/timeline/v1`): the ideal-grid byte accounting must
/// reconcile (timeline link-byte totals == the enactor's
/// `bytes_transferred`) and the loaded grid must be attributed to the
/// CE batch queues.
pub fn check_timeline(timeline_json: &str) -> Result<Vec<GateCheck>, String> {
    let value = JsonValue::parse(timeline_json).map_err(|e| format!("timeline: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(crate::timeline::TIMELINE_BENCH_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "timeline: schema `{other}`, expected `{}`",
                crate::timeline::TIMELINE_BENCH_SCHEMA
            ))
        }
        None => return Err("timeline: missing schema tag".to_string()),
    }
    let scenarios = value
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "timeline: missing scenarios array".to_string())?;
    let scenario = |name: &str| -> Result<&JsonValue, String> {
        scenarios
            .iter()
            .find(|s| s.get("scenario").and_then(JsonValue::as_str) == Some(name))
            .ok_or_else(|| format!("timeline: missing `{name}` scenario"))
    };
    let field = |s: &JsonValue, name: &str| -> f64 {
        s.get(name).and_then(JsonValue::as_f64).unwrap_or(f64::NAN)
    };
    let ideal = scenario("ideal")?;
    let loaded = scenario("egee-loaded")?;
    let enactor_bytes = field(ideal, "bytes_transferred");
    let timeline_bytes = field(ideal, "timeline_link_bytes");
    let queue_verdict = loaded.get("verdict").and_then(JsonValue::as_str) == Some("queue-wait");
    Ok(vec![
        GateCheck {
            what: "timeline/ideal_byte_accounting".to_string(),
            baseline: enactor_bytes,
            current: timeline_bytes,
            ok: enactor_bytes > 0.0 && timeline_bytes == enactor_bytes,
        },
        GateCheck {
            what: "timeline/loaded_queue_verdict".to_string(),
            baseline: 1.0,
            current: f64::from(u8::from(queue_verdict)),
            ok: queue_verdict,
        },
    ])
}

/// Checks over a `BENCH_plan.json` document (schema
/// `moteur-bench/plan/v1`): every scenario's static per-edge byte
/// intervals must contain the observed per-(consumer, port) staging
/// totals, and the planner's site partition must beat centralized
/// routing on the data-heavy bronze variant in its own cost model.
pub fn check_plan(plan_json: &str) -> Result<Vec<GateCheck>, String> {
    let value = JsonValue::parse(plan_json).map_err(|e| format!("plan: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(crate::plan::PLAN_BENCH_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "plan: schema `{other}`, expected `{}`",
                crate::plan::PLAN_BENCH_SCHEMA
            ))
        }
        None => return Err("plan: missing schema tag".to_string()),
    }
    let scenarios = value
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "plan: missing scenarios array".to_string())?;
    if scenarios.is_empty() {
        return Err("plan: empty scenarios array".to_string());
    }
    let mut checks = Vec::new();
    for s in scenarios {
        let name = s
            .get("scenario")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "plan: scenario without a name".to_string())?;
        let contained = s.get("all_contained").and_then(JsonValue::as_bool) == Some(true);
        let edges = s
            .get("edges")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len);
        checks.push(GateCheck {
            what: format!("plan/{name}_containment"),
            baseline: edges as f64,
            current: f64::from(u8::from(contained)) * edges as f64,
            ok: contained,
        });
    }
    let centralized = value
        .get("heavy_centralized_secs")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "plan: missing heavy_centralized_secs".to_string())?;
    let partitioned = value
        .get("heavy_partitioned_secs")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "plan: missing heavy_partitioned_secs".to_string())?;
    checks.push(GateCheck {
        what: "plan/partition_advantage".to_string(),
        baseline: centralized,
        current: partitioned,
        ok: partitioned < centralized,
    });
    Ok(checks)
}

/// Checks over a `BENCH_scale.json` document (schema
/// `moteur-bench/scale/v1`), optionally against a committed baseline.
///
/// Wall-clock throughput is machine-dependent, so the absolute checks
/// only require the campaign to have reached its event/job targets
/// with positive throughput, and — when the counting allocator was
/// installed — the simulator to stay inside its allocations-per-event
/// budget ([`crate::scale::ALLOCS_PER_EVENT_BUDGET`]). The baseline
/// comparison gates the *deterministic* throughput proxies only:
/// `allocs_per_event` and `peak_alloc_bytes` must not exceed the
/// baseline by more than `threshold` — an allocation regression is
/// how a >10 % event-loop slowdown shows up reproducibly in CI.
pub fn check_scale(
    scale_json: &str,
    baseline_json: Option<&str>,
    threshold: f64,
) -> Result<Vec<GateCheck>, String> {
    let parse = |label: &str, json: &str| -> Result<JsonValue, String> {
        let value = JsonValue::parse(json).map_err(|e| format!("scale {label}: {e}"))?;
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(crate::scale::SCALE_SCHEMA) => Ok(value),
            Some(other) => Err(format!(
                "scale {label}: schema `{other}`, expected `{}`",
                crate::scale::SCALE_SCHEMA
            )),
            None => Err(format!("scale {label}: missing schema tag")),
        }
    };
    let current = parse("current", scale_json)?;
    let field = |doc: &JsonValue, name: &str| -> Result<f64, String> {
        doc.get(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("scale: missing `{name}`"))
    };
    let target = field(&current, "target_events")?;
    let events = field(&current, "events_processed")?;
    let enact_target = field(&current, "enact_jobs")?;
    let jobs = field(&current, "enact_jobs_submitted")?;
    let events_per_sec = field(&current, "events_per_sec")?;
    let jobs_per_sec = field(&current, "jobs_per_sec")?;
    let mut checks = vec![
        GateCheck {
            what: "scale/events_target".to_string(),
            baseline: target,
            current: events,
            ok: events >= target,
        },
        GateCheck {
            what: "scale/jobs_target".to_string(),
            baseline: enact_target,
            current: jobs,
            ok: jobs >= enact_target,
        },
        GateCheck {
            what: "scale/throughput_positive".to_string(),
            baseline: 0.0,
            current: events_per_sec.min(jobs_per_sec),
            ok: events_per_sec > 0.0 && jobs_per_sec > 0.0,
        },
    ];
    let alloc_installed = current.get("alloc_installed").and_then(JsonValue::as_bool) == Some(true);
    if alloc_installed {
        let allocs_per_event = field(&current, "allocs_per_event")?;
        checks.push(GateCheck {
            what: "scale/allocs_per_event_budget".to_string(),
            baseline: crate::scale::ALLOCS_PER_EVENT_BUDGET,
            current: allocs_per_event,
            ok: allocs_per_event <= crate::scale::ALLOCS_PER_EVENT_BUDGET,
        });
    }
    if let Some(baseline_json) = baseline_json {
        let baseline = parse("baseline", baseline_json)?;
        let base_installed =
            baseline.get("alloc_installed").and_then(JsonValue::as_bool) == Some(true);
        if alloc_installed && base_installed {
            for name in ["allocs_per_event", "peak_alloc_bytes"] {
                let base = field(&baseline, name)?;
                let cur = field(&current, name)?;
                checks.push(GateCheck {
                    what: format!("scale/{name}"),
                    baseline: base,
                    current: cur,
                    ok: cur <= base * (1.0 + threshold) + 1e-9,
                });
            }
        }
    }
    Ok(checks)
}

/// Checks over a `BENCH_stream.json` document (schema
/// `moteur-bench/stream/v1`).
///
/// All checks are absolute — no committed baseline. The campaign must
/// have completed every item with positive throughput, and — when the
/// counting allocator was installed — the streaming pipeline's peak
/// live bytes beyond the materialised inputs must sit inside
/// [`crate::stream::PIPELINE_PEAK_BUDGET`] *and* undercut the eager
/// per-item projection by at least
/// [`crate::stream::EAGER_UNDERCUT_FACTOR`]. Together these pin the
/// O(port-capacity)-not-O(n-items) memory claim on any machine.
pub fn check_stream(stream_json: &str) -> Result<Vec<GateCheck>, String> {
    let value = JsonValue::parse(stream_json).map_err(|e| format!("stream: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(crate::stream::STREAM_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "stream: schema `{other}`, expected `{}`",
                crate::stream::STREAM_SCHEMA
            ))
        }
        None => return Err("stream: missing schema tag".to_string()),
    }
    let field = |name: &str| -> Result<f64, String> {
        value
            .get(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("stream: missing `{name}`"))
    };
    let n_items = field("n_items")?;
    let completed = field("items_completed")?;
    let items_per_sec = field("items_per_sec")?;
    let mut checks = vec![
        GateCheck {
            what: "stream/items_completed".to_string(),
            baseline: n_items,
            current: completed,
            ok: completed >= n_items,
        },
        GateCheck {
            what: "stream/throughput_positive".to_string(),
            baseline: 0.0,
            current: items_per_sec,
            ok: items_per_sec > 0.0,
        },
    ];
    if value.get("alloc_installed").and_then(JsonValue::as_bool) == Some(true) {
        let pipeline_peak = field("pipeline_peak_bytes")?;
        let projected = field("eager_projected_bytes")?;
        checks.push(GateCheck {
            what: "stream/pipeline_peak_budget".to_string(),
            baseline: crate::stream::PIPELINE_PEAK_BUDGET as f64,
            current: pipeline_peak,
            ok: pipeline_peak <= crate::stream::PIPELINE_PEAK_BUDGET as f64,
        });
        checks.push(GateCheck {
            what: "stream/undercuts_eager_projection".to_string(),
            baseline: projected,
            current: pipeline_peak * crate::stream::EAGER_UNDERCUT_FACTOR,
            ok: pipeline_peak * crate::stream::EAGER_UNDERCUT_FACTOR <= projected,
        });
    }
    Ok(checks)
}

/// Default allowed regression: 10 %.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{render_summary_json, run_sweep, SweepSpec};

    fn summary_json() -> String {
        let (_, summary) = run_sweep(&SweepSpec::new(vec![1, 2])).unwrap();
        render_summary_json(&summary)
    }

    #[test]
    fn identical_summaries_pass_the_gate() {
        let json = summary_json();
        let report = check_gate(&json, &json, DEFAULT_THRESHOLD).unwrap();
        assert!(report.ok(), "{}", report.render());
        // 6 makespan + 6 drift + 3 speedup checks.
        assert_eq!(report.checks.len(), 15);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let baseline = summary_json();
        // Double every makespan (and, via the recomputed ratio columns
        // staying textual, leave speedups untouched): the makespan
        // checks must trip.
        let mut slowed = String::new();
        for part in baseline.split("\"makespan_at_max\":") {
            if slowed.is_empty() {
                slowed.push_str(part);
                continue;
            }
            let end = part
                .find([',', '}'])
                .expect("makespan_at_max value terminated");
            let value: f64 = part[..end].parse().expect("numeric makespan");
            slowed.push_str(&format!("\"makespan_at_max\":{}", value * 2.0));
            slowed.push_str(&part[end..]);
        }
        let report = check_gate(&baseline, &slowed, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.ok());
        let failed: Vec<&str> = report.failures().map(|c| c.what.as_str()).collect();
        assert!(failed.iter().all(|w| w.starts_with("makespan/")));
        assert_eq!(failed.len(), 6, "{failed:?}");
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn lost_speedup_fails_even_when_makespans_hold() {
        let baseline = summary_json();
        // Claim the optimisations stopped paying off: all ratios 1.0.
        let current = {
            let start = baseline.find("\"speedups\":{").unwrap();
            let end = baseline[start..].find('}').unwrap() + start;
            let mut s = baseline[..start].to_string();
            s.push_str(
                "\"speedups\":{\"nop_over_sp\":1.0,\"nop_over_sp_dp\":1.0,\
                 \"nop_over_sp_dp_jg\":1.0",
            );
            s.push_str(&baseline[end..]);
            s
        };
        let report = check_gate(&baseline, &current, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.ok());
        assert!(report.failures().all(|c| c.what.starts_with("speedup/")));
    }

    #[test]
    fn drift_flag_failure_trips_the_gate() {
        let baseline = summary_json();
        let current = baseline.replacen("\"drift_ok\":true", "\"drift_ok\":false", 1);
        let report = check_gate(&baseline, &current, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.ok());
        assert_eq!(report.failures().count(), 1);
        assert!(report.failures().next().unwrap().what.starts_with("drift/"));
    }

    #[test]
    fn faults_gate_requires_replication_to_win_and_zero_quarantines() {
        let report = crate::faults::FaultsReport {
            spec: crate::faults::FaultsSpec {
                n_data: 2,
                seed: 1,
                repeats: 1,
                failure_probability: 0.04,
            },
            outcomes: ["naive", "backoff", "timeout+replication"]
                .into_iter()
                .enumerate()
                .map(|(i, name)| crate::faults::StrategyOutcome {
                    strategy: name,
                    makespans_secs: vec![1000.0 - 100.0 * i as f64],
                    mean_makespan_secs: 1000.0 - 100.0 * i as f64,
                    max_makespan_secs: 1000.0 - 100.0 * i as f64,
                    jobs_submitted: 10,
                    timeouts: 0,
                    replicas: 0,
                    resubmissions: 0,
                    quarantined: 0,
                })
                .collect(),
        };
        let json = crate::faults::render_faults_json(&report);
        let checks = check_faults(&json).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // Replication slower than naive must trip the first check …
        let losing = json.replacen(
            "\"mean_makespan_secs\":800",
            "\"mean_makespan_secs\":2000",
            1,
        );
        let checks = check_faults(&losing).unwrap();
        assert!(!checks[0].ok, "{checks:?}");
        // … and a quarantine the second.
        let poisoned = json.replacen("\"quarantined\":0", "\"quarantined\":1", 1);
        let checks = check_faults(&poisoned).unwrap();
        assert!(!checks[1].ok, "{checks:?}");

        assert!(check_faults("{\"schema\":\"other/v1\"}").is_err());
        assert!(check_faults("{").is_err());
    }

    #[test]
    fn daemon_gate_requires_completion_sharing_and_bounded_admission() {
        let report = crate::daemon::DaemonReport {
            n_workflows: 100,
            n_tenants: 4,
            n_data: 2,
            succeeded: 100,
            wall_secs: 0.5,
            workflows_per_sec: 200.0,
            ttfj_p50_secs: 0.0,
            ttfj_p99_secs: 120.0,
            seed_jobs: 10,
            cross_tenant_hits: 500,
            cross_tenant_misses: 0,
            store_entries: 10,
            tenants: Vec::new(),
        };
        let json = crate::daemon::render_daemon_json(&report);
        let checks = check_daemon(&json).unwrap();
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // A lost workflow trips the completion check …
        let lossy = json.replacen("\"succeeded\":100", "\"succeeded\":99", 1);
        let checks = check_daemon(&lossy).unwrap();
        assert!(!checks[0].ok, "{checks:?}");
        // … recomputation trips the sharing floor …
        let cold = json.replacen(
            "\"cross_tenant_hit_ratio\":1",
            "\"cross_tenant_hit_ratio\":0.5",
            1,
        );
        let checks = check_daemon(&cold).unwrap();
        assert!(!checks[1].ok, "{checks:?}");
        // … and a starved submission trips the admission ceiling.
        let starved = json.replacen("\"ttfj_p99_secs\":120", "\"ttfj_p99_secs\":1e9", 1);
        let checks = check_daemon(&starved).unwrap();
        assert!(!checks[2].ok, "{checks:?}");

        assert!(check_daemon("{\"schema\":\"other/v1\"}").is_err());
        assert!(check_daemon("{").is_err());
    }

    #[test]
    fn timeline_gate_requires_byte_reconciliation_and_queue_verdict() {
        let report = crate::timeline::TimelineReport {
            spec: crate::timeline::TimelineSpec {
                ideal_n_data: 2,
                loaded_n_data: 6,
                seed: 1,
            },
            outcomes: vec![
                crate::timeline::TimelineOutcome {
                    scenario: "ideal",
                    makespan_secs: 330.0,
                    jobs_submitted: 13,
                    bytes_transferred: 1000,
                    timeline_link_bytes: 1000,
                    peak_queue_depth: 0,
                    verdict: "compute".to_string(),
                    dominant_fraction: 1.0,
                    queue_wait_secs: 0.0,
                    transfer_secs: 0.0,
                    compute_secs: 330.0,
                },
                crate::timeline::TimelineOutcome {
                    scenario: "egee-loaded",
                    makespan_secs: 9000.0,
                    jobs_submitted: 31,
                    bytes_transferred: 5000,
                    timeline_link_bytes: 4800,
                    peak_queue_depth: 14,
                    verdict: "queue-wait".to_string(),
                    dominant_fraction: 0.7,
                    queue_wait_secs: 7000.0,
                    transfer_secs: 1000.0,
                    compute_secs: 2000.0,
                },
            ],
        };
        let json = crate::timeline::render_timeline_json(&report);
        let checks = check_timeline(&json).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // A lost transfer byte must trip the accounting check …
        let lossy = json.replacen(
            "\"timeline_link_bytes\":1000",
            "\"timeline_link_bytes\":999",
            1,
        );
        let checks = check_timeline(&lossy).unwrap();
        assert!(!checks[0].ok, "{checks:?}");
        // … and a mis-attributed loaded run the verdict check.
        let wrong = json.replacen("\"verdict\":\"queue-wait\"", "\"verdict\":\"transfer\"", 1);
        let checks = check_timeline(&wrong).unwrap();
        assert!(!checks[1].ok, "{checks:?}");

        assert!(check_timeline("{\"schema\":\"other/v1\"}").is_err());
        assert!(check_timeline("{").is_err());
    }

    #[test]
    fn plan_gate_requires_containment_and_partition_advantage() {
        let report = crate::plan::run_plan_bench(&crate::plan::PlanSpec {
            n_data: 2,
            seed: 2006,
        })
        .unwrap();
        let json = crate::plan::render_plan_bench_json(&report);
        let checks = check_plan(&json).unwrap();
        // bronze + cross containment, plus the partition comparison.
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // A broken containment flag must trip that scenario's check …
        let outside = json.replacen("\"all_contained\":true", "\"all_contained\":false", 1);
        let checks = check_plan(&outside).unwrap();
        assert!(!checks[0].ok, "{checks:?}");
        // … and a partition that stopped paying the advantage check.
        let worse = {
            let cent = format!("\"heavy_centralized_secs\":{}", report.heavy_centralized);
            let idx = json.find(&cent).expect("centralized field present");
            let mut s = json[..idx].to_string();
            s.push_str(&format!(
                "\"heavy_centralized_secs\":{}",
                report.heavy_partitioned - 1.0
            ));
            s.push_str(&json[idx + cent.len()..]);
            s
        };
        let checks = check_plan(&worse).unwrap();
        assert!(!checks.last().unwrap().ok, "{checks:?}");

        assert!(check_plan("{\"schema\":\"other/v1\"}").is_err());
        assert!(check_plan("{").is_err());
    }

    #[test]
    fn scale_gate_checks_targets_budget_and_baseline() {
        let doc = |allocs: f64, peak: u64| {
            format!(
                "{{\"schema\":\"moteur-bench/scale/v1\",\"target_events\":1000,\
                 \"enact_jobs\":50,\"seed\":1,\"alloc_installed\":true,\
                 \"events_processed\":1200,\"gridsim_jobs\":100,\
                 \"gridsim_wall_secs\":0.5,\"events_per_sec\":2400,\
                 \"allocs_per_event\":{allocs},\"enact_jobs_submitted\":50,\
                 \"enact_wall_secs\":0.2,\"jobs_per_sec\":250,\
                 \"enact_makespan_secs\":330,\"peak_alloc_bytes\":{peak},\
                 \"ok\":true,\"subsystems\":[]}}"
            )
        };
        let json = doc(5.0, 1_000_000);
        let checks = check_scale(&json, None, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(checks.len(), 4, "{checks:?}");
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // Against an identical baseline the deterministic axes pass …
        let checks = check_scale(&json, Some(&json), DEFAULT_THRESHOLD).unwrap();
        assert_eq!(checks.len(), 6, "{checks:?}");
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");
        // … an allocation regression beyond the threshold trips them …
        let bloated = doc(5.0 * 1.5, 1_000_000);
        let checks = check_scale(&bloated, Some(&json), DEFAULT_THRESHOLD).unwrap();
        assert!(
            checks
                .iter()
                .any(|c| c.what == "scale/allocs_per_event" && !c.ok),
            "{checks:?}"
        );
        // … as does blowing the absolute per-event budget …
        let hog = doc(crate::scale::ALLOCS_PER_EVENT_BUDGET * 2.0, 1_000_000);
        let checks = check_scale(&hog, None, DEFAULT_THRESHOLD).unwrap();
        assert!(
            checks
                .iter()
                .any(|c| c.what == "scale/allocs_per_event_budget" && !c.ok),
            "{checks:?}"
        );
        // … and a shortfall against the event target.
        let short = json.replacen("\"events_processed\":1200", "\"events_processed\":900", 1);
        let checks = check_scale(&short, None, DEFAULT_THRESHOLD).unwrap();
        assert!(
            checks
                .iter()
                .any(|c| c.what == "scale/events_target" && !c.ok),
            "{checks:?}"
        );

        // Without the counting allocator the budget axis is skipped.
        let uncounted = json.replacen("\"alloc_installed\":true", "\"alloc_installed\":false", 1);
        let checks = check_scale(&uncounted, Some(&uncounted), DEFAULT_THRESHOLD).unwrap();
        assert_eq!(checks.len(), 3, "{checks:?}");

        assert!(check_scale("{\"schema\":\"other/v1\"}", None, DEFAULT_THRESHOLD).is_err());
        assert!(check_scale("{", None, DEFAULT_THRESHOLD).is_err());
    }

    #[test]
    fn stream_gate_checks_completion_budget_and_eager_undercut() {
        let doc = |completed: u64, peak: u64, projected: u64| {
            format!(
                "{{\"schema\":\"moteur-bench/stream/v1\",\"n_items\":1000,\
                 \"port_capacity\":16,\"eager_items\":100,\"seed\":1,\
                 \"alloc_installed\":true,\"items_completed\":{completed},\
                 \"jobs_submitted\":2000,\"wall_secs\":0.5,\
                 \"items_per_sec\":2000,\"input_bytes\":32000,\
                 \"pipeline_peak_bytes\":{peak},\
                 \"eager_bytes_per_item\":750.0,\"eager_items_per_sec\":400,\
                 \"eager_projected_bytes\":{projected},\"ok\":true}}"
            )
        };
        let json = doc(1000, 40_000, 750_000);
        let checks = check_stream(&json).unwrap();
        assert_eq!(checks.len(), 4, "{checks:?}");
        assert!(checks.iter().all(|c| c.ok), "{checks:?}");

        // An incomplete stream trips the completion axis …
        let short = doc(900, 40_000, 750_000);
        let checks = check_stream(&short).unwrap();
        assert!(
            checks
                .iter()
                .any(|c| c.what == "stream/items_completed" && !c.ok),
            "{checks:?}"
        );
        // … blowing the absolute budget trips the peak axis …
        let hog = doc(1000, crate::stream::PIPELINE_PEAK_BUDGET + 1, u64::MAX);
        let checks = check_stream(&hog).unwrap();
        assert!(
            checks
                .iter()
                .any(|c| c.what == "stream/pipeline_peak_budget" && !c.ok),
            "{checks:?}"
        );
        // … and a peak within 4x of the eager projection trips the
        // undercut axis even inside the absolute budget.
        let near_eager = doc(1000, 40_000, 40_000 * 3);
        let checks = check_stream(&near_eager).unwrap();
        assert!(
            checks
                .iter()
                .any(|c| c.what == "stream/undercuts_eager_projection" && !c.ok),
            "{checks:?}"
        );

        // Without the counting allocator the memory axes are skipped.
        let uncounted = json.replacen("\"alloc_installed\":true", "\"alloc_installed\":false", 1);
        let checks = check_stream(&uncounted).unwrap();
        assert_eq!(checks.len(), 2, "{checks:?}");

        assert!(check_stream("{\"schema\":\"other/v1\"}").is_err());
        assert!(check_stream("{").is_err());
    }

    #[test]
    fn missing_config_and_bad_schema_are_caught() {
        let baseline = summary_json();
        let current = baseline.replacen("\"config\":\"nop\"", "\"config\":\"gone\"", 2);
        let report = check_gate(&baseline, &current, DEFAULT_THRESHOLD).unwrap();
        assert!(report
            .failures()
            .any(|c| c.what == "makespan/nop (missing)"));

        let bad = baseline.replacen("moteur-bench/summary/v1", "other/v9", 1);
        assert!(check_gate(&bad, &baseline, DEFAULT_THRESHOLD).is_err());
        assert!(check_gate(&baseline, "{", DEFAULT_THRESHOLD).is_err());
    }
}
