//! # moteur-bench
//!
//! Experiment harnesses reproducing every table and figure of the
//! paper's evaluation (see `DESIGN.md` §5 for the experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — execution times per configuration × data-set size |
//! | `table2` | Table 2 — y-intercept and slope of the fitted lines |
//! | `fig10` | Figure 10 — execution time vs number of image pairs |
//! | `diagrams` | Figures 4, 5 and 6 — execution diagrams |
//! | `theory` | §3.5 — model-vs-enactor asymptotic speed-ups |
//! | `speedups` | §5.2/§5.3 — speed-ups and slope / y-intercept ratios |
//!
//! The `moteur-bench` binary itself (`src/main.rs`) drives the perf
//! observatory: `campaign` sweeps the six configurations over a range
//! of campaign sizes and writes `BENCH_point.json`/`BENCH_summary.json`
//! ([`sweep`]); `gate` compares a summary against the committed
//! baseline and fails CI on regressions ([`gate`]).
//!
//! The library half hosts the Fig. 9 Bronze-Standard workflow
//! ([`bronze`]) and the campaign runner ([`campaign`]) shared by the
//! binaries, the integration tests and the examples.

//! `moteur-bench warm` runs the same campaign twice against one
//! provenance-keyed data manager and documents the cold-vs-warm
//! speed-up in `BENCH_warm.json` ([`warm`]).
//!
//! `moteur-bench faults` enacts the campaign on an unreliable grid
//! under three fault-tolerance strategies (naive, backoff,
//! timeout+replication) and writes the comparison to
//! `BENCH_faults.json` ([`faults`]).
//!
//! `moteur-bench timeline` enacts the campaign with the telemetry
//! pipeline attached in two regimes (ideal byte-accounting,
//! queue-saturated `egee_2006`) and writes peak queue depth, transfer
//! bytes and the bottleneck verdict to `BENCH_timeline.json`
//! ([`timeline`]).
//!
//! `moteur-bench daemon` drives the multi-tenant enactment daemon
//! through a concurrent submission wave against one shared memo table
//! and writes sustained throughput, time-to-first-job percentiles and
//! the cross-tenant cache-hit ratio to `BENCH_daemon.json` ([`daemon`]).
//!
//! `moteur-bench scale` drives the simulator through a million events
//! and the enactor through ten thousand jobs with the self-profiler
//! attached, and writes host throughput, allocation rates and
//! per-subsystem wall fractions to `BENCH_scale.json` ([`scale`]).
//!
//! `moteur-bench stream` pushes a million-item stream through a
//! bounded-port service chain and writes throughput plus the
//! O(port-capacity) pipeline memory high-water mark (versus the eager
//! per-item projection) to `BENCH_stream.json` ([`stream`]).

pub mod bronze;
pub mod campaign;
pub mod daemon;
pub mod faults;
pub mod gate;
pub mod plan;
pub mod scale;
pub mod stream;
pub mod sweep;
pub mod timeline;
pub mod warm;

pub use bronze::{
    bronze_chain_inputs, bronze_chain_workflow, bronze_chain_workflow_xml, bronze_inputs,
    bronze_workflow, bronze_workflow_xml, IMAGE_BYTES,
};
pub use campaign::{run_campaign, run_point, CampaignPoint, PAPER_SIZES, QUICK_SIZES};
pub use daemon::{
    render_daemon, render_daemon_json, run_daemon_campaign, DaemonReport, TenantRow,
    DAEMON_BENCH_SCHEMA,
};
pub use faults::{
    render_faults, render_faults_json, run_faults, FaultStrategy, FaultsReport, FaultsSpec,
    StrategyOutcome, FAULTS_SCHEMA,
};
pub use gate::{check_gate, GateCheck, GateReport, DEFAULT_THRESHOLD};
pub use plan::{
    render_plan_bench, render_plan_bench_json, run_plan_bench, PlanBenchReport, PlanSpec,
    PLAN_BENCH_SCHEMA,
};
pub use scale::{
    render_scale, render_scale_json, run_scale, ScaleReport, ScaleSpec, SubsystemShare,
    ALLOCS_PER_EVENT_BUDGET, SCALE_SCHEMA,
};
pub use stream::{
    render_stream, render_stream_json, run_stream, StreamReport, StreamSpec, EAGER_UNDERCUT_FACTOR,
    PIPELINE_PEAK_BUDGET, STREAM_SCHEMA,
};
pub use sweep::{
    render_points_json, render_summary, render_summary_json, run_sweep, BenchPoint, BenchSummary,
    ConfigSummary, SweepGrid, SweepSpec, SweepWorkflow, POINT_SCHEMA, SUMMARY_SCHEMA,
};
pub use warm::{render_warm, render_warm_json, run_warm_pair, WarmReport, WARM_SCHEMA};
