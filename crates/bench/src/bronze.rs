//! The Bronze-Standard application workflow (paper Fig. 9), expressed
//! in the Scufl dialect with descriptor-bound services, plus its input
//! data sets.
//!
//! Shape (matching the figure):
//!
//! ```text
//! referenceImage  floatingImage        methodToTest
//!        \          /                       |
//!        crestLines (fixed -s scale)        |
//!            | crest_ref, crest_float       |
//!        crestMatch ----------------------- MultiTransfoTest (sync)
//!         /    |    \                      /    |
//!  PFMatchICP Yasmina Baladin             /  accuracy_rotation
//!      |        \______\_________________/   accuracy_translation
//!  PFRegister ___________________________/
//! ```
//!
//! Each image pair costs 6 grid jobs (crestLines, crestMatch,
//! PFMatchICP, PFRegister, Yasmina, Baladin) exactly as in §4.4 (12/66/
//! 126 pairs → 72/396/756 submissions), plus one synchronization job.
//! Job grouping merges crestLines+crestMatch and PFMatchICP+PFRegister
//! (§3.6), cutting this to 4 jobs per pair.
//!
//! Compute costs approximate 2006-era runtimes on the paper's images;
//! what matters for the reproduction is that they are minutes-scale
//! while grid overhead is ~10 minutes and highly variable.

use moteur::{DataValue, InputData, Workflow};
use moteur_scufl::parse_workflow;

/// Nominal size of one 256×256×60 16-bit image (7.8 MB, §4.2).
pub const IMAGE_BYTES: u64 = 7_864_320;

/// The Fig. 9 workflow as a Scufl document.
pub fn bronze_workflow_xml() -> String {
    let image_in = |slot: &str, opt: &str| {
        format!(r#"<input name="{slot}" option="{opt}"><access type="GFN"/></input>"#)
    };
    let file_out = |slot: &str, opt: &str| {
        format!(r#"<output name="{slot}" option="{opt}"><access type="GFN"/></output>"#)
    };
    format!(
        r#"<scufl name="bronze-standard">
  <source name="referenceImage" bytes="7864320"/>
  <source name="floatingImage" bytes="7864320"/>
  <source name="methodToTest" bytes="64"/>

  <processor name="crestLines" compute="90">
    <executable name="CrestLines.pl">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="CrestLines.pl"/>
      {im1}{im2}
      <input name="scale" option="-s"/>
      {c1}{c2}
    </executable>
    <param slot="scale" value="2"/>
    <outputsize slot="crest_reference" bytes="400000"/>
    <outputsize slot="crest_floating" bytes="400000"/>
    <sandboxes/>
  </processor>

  <processor name="crestMatch" compute="35">
    <executable name="CrestMatch">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="cmatch"/>
      <input name="crest_reference" option="-c1"><access type="GFN"/></input>
      <input name="crest_floating" option="-c2"><access type="GFN"/></input>
      {tout}
    </executable>
    <outputsize slot="transfo" bytes="2048"/>
  </processor>

  <processor name="PFMatchICP" compute="60">
    <executable name="PFMatchICP">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="PFMatchICP"/>
      <input name="init" option="-init"><access type="GFN"/></input>
      {im1}{im2}
      <output name="raw_transfo" option="-o"><access type="GFN"/></output>
    </executable>
    <outputsize slot="raw_transfo" bytes="2048"/>
  </processor>

  <processor name="PFRegister" compute="25">
    <executable name="PFRegister">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="PFRegister"/>
      <input name="raw" option="-i"><access type="GFN"/></input>
      {tout}
    </executable>
    <outputsize slot="transfo" bytes="2048"/>
  </processor>

  <processor name="Yasmina" compute="220">
    <executable name="Yasmina">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="yasmina"/>
      <input name="init" option="-init"><access type="GFN"/></input>
      {im1}{im2}
      {tout}
    </executable>
    <outputsize slot="transfo" bytes="2048"/>
  </processor>

  <processor name="Baladin" compute="200">
    <executable name="Baladin">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="baladin"/>
      <input name="init" option="-init"><access type="GFN"/></input>
      {im1}{im2}
      {tout}
    </executable>
    <outputsize slot="transfo" bytes="2048"/>
  </processor>

  <processor name="MultiTransfoTest" compute="120" sync="true">
    <executable name="MultiTransfoTest">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="MultiTransfoTest"/>
      <input name="method" option="-m"><access type="GFN"/></input>
      <input name="transfo_cm" option="-t1"><access type="GFN"/></input>
      <input name="transfo_pf" option="-t2"><access type="GFN"/></input>
      <input name="transfo_y" option="-t3"><access type="GFN"/></input>
      <input name="transfo_b" option="-t4"><access type="GFN"/></input>
      <output name="accuracy_translation" option="-at"><access type="GFN"/></output>
      <output name="accuracy_rotation" option="-ar"><access type="GFN"/></output>
    </executable>
    <outputsize slot="accuracy_translation" bytes="256"/>
    <outputsize slot="accuracy_rotation" bytes="256"/>
  </processor>

  <sink name="accuracy_translation"/>
  <sink name="accuracy_rotation"/>

  <link from="referenceImage:out" to="crestLines:reference_image"/>
  <link from="floatingImage:out" to="crestLines:floating_image"/>
  <link from="crestLines:crest_reference" to="crestMatch:crest_reference"/>
  <link from="crestLines:crest_floating" to="crestMatch:crest_floating"/>
  <link from="crestMatch:transfo" to="PFMatchICP:init"/>
  <link from="crestMatch:transfo" to="Yasmina:init"/>
  <link from="crestMatch:transfo" to="Baladin:init"/>
  <link from="referenceImage:out" to="PFMatchICP:reference_image"/>
  <link from="floatingImage:out" to="PFMatchICP:floating_image"/>
  <link from="referenceImage:out" to="Yasmina:reference_image"/>
  <link from="floatingImage:out" to="Yasmina:floating_image"/>
  <link from="referenceImage:out" to="Baladin:reference_image"/>
  <link from="floatingImage:out" to="Baladin:floating_image"/>
  <link from="PFMatchICP:raw_transfo" to="PFRegister:raw"/>
  <link from="methodToTest:out" to="MultiTransfoTest:method"/>
  <link from="crestMatch:transfo" to="MultiTransfoTest:transfo_cm"/>
  <link from="PFRegister:transfo" to="MultiTransfoTest:transfo_pf"/>
  <link from="Yasmina:transfo" to="MultiTransfoTest:transfo_y"/>
  <link from="Baladin:transfo" to="MultiTransfoTest:transfo_b"/>
  <link from="MultiTransfoTest:accuracy_translation" to="accuracy_translation:in"/>
  <link from="MultiTransfoTest:accuracy_rotation" to="accuracy_rotation:in"/>
</scufl>"#,
        im1 = image_in("floating_image", "-im1"),
        im2 = image_in("reference_image", "-im2"),
        c1 = file_out("crest_reference", "-c1"),
        c2 = file_out("crest_floating", "-c2"),
        tout = file_out("transfo", "-o"),
    )
    .replace("<sandboxes/>", "")
}

/// Parse the Fig. 9 workflow.
pub fn bronze_workflow() -> Workflow {
    parse_workflow(&bronze_workflow_xml()).expect("the built-in bronze workflow is valid")
}

/// The Bronze-Standard *critical path* as a pure streaming pipeline:
/// crestLines → crestMatch → PFMatchICP → PFRegister →
/// MultiTransfoTest, one input stream, no side branches and no
/// synchronization barrier.
///
/// The paper's closed forms (eq. 1–4) model exactly this chain — `n_W`
/// services on the critical path — so on an ideal grid the enactor's
/// observed makespan must match the model to within floating-point
/// noise. That makes this workflow the reference load of the perf
/// observatory's drift check: the full Fig. 9 DAG adds Yasmina/Baladin
/// branch slack the model deliberately ignores, which would show up as
/// spurious "drift".
pub fn bronze_chain_workflow_xml() -> String {
    let stage = |name: &str, compute: u32, exe: &str| {
        format!(
            r#"  <processor name="{name}" compute="{compute}">
    <executable name="{exe}">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="{exe}"/>
      <input name="in" option="-i"><access type="GFN"/></input>
      <output name="out" option="-o"><access type="GFN"/></output>
    </executable>
    <outputsize slot="out" bytes="2048"/>
  </processor>
"#
        )
    };
    let mut xml = String::from(
        "<scufl name=\"bronze-chain\">\n  <source name=\"images\" bytes=\"7864320\"/>\n",
    );
    for (name, compute, exe) in [
        ("crestLines", 90, "CrestLines.pl"),
        ("crestMatch", 35, "cmatch"),
        ("PFMatchICP", 60, "PFMatchICP"),
        ("PFRegister", 25, "PFRegister"),
        ("MultiTransfoTest", 120, "MultiTransfoTest"),
    ] {
        xml.push_str(&stage(name, compute, exe));
    }
    xml.push_str(
        r#"  <sink name="accuracy"/>
  <link from="images:out" to="crestLines:in"/>
  <link from="crestLines:out" to="crestMatch:in"/>
  <link from="crestMatch:out" to="PFMatchICP:in"/>
  <link from="PFMatchICP:out" to="PFRegister:in"/>
  <link from="PFRegister:out" to="MultiTransfoTest:in"/>
  <link from="MultiTransfoTest:out" to="accuracy:in"/>
</scufl>"#,
    );
    xml
}

/// Parse the critical-path chain workflow.
pub fn bronze_chain_workflow() -> Workflow {
    parse_workflow(&bronze_chain_workflow_xml()).expect("the built-in chain workflow is valid")
}

/// Input stream for the chain workflow: `n_data` images.
pub fn bronze_chain_inputs(n_data: usize) -> InputData {
    InputData::new().set(
        "images",
        (0..n_data)
            .map(|j| DataValue::File {
                gfn: format!("gfn://lacassagne/pair{j:03}.hdr"),
                bytes: IMAGE_BYTES,
            })
            .collect(),
    )
}

/// Input data set for `n_pairs` image pairs (the paper runs 12, 66 and
/// 126 pairs).
pub fn bronze_inputs(n_pairs: usize) -> InputData {
    let imgs = |prefix: &str| -> Vec<DataValue> {
        (0..n_pairs)
            .map(|j| DataValue::File {
                gfn: format!("gfn://lacassagne/{prefix}{j:03}.hdr"),
                bytes: IMAGE_BYTES,
            })
            .collect()
    };
    InputData::new()
        .set("referenceImage", imgs("ref"))
        .set("floatingImage", imgs("float"))
        .set(
            "methodToTest",
            vec![DataValue::File {
                gfn: "gfn://lacassagne/method.txt".into(),
                bytes: 64,
            }],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use moteur::{group_workflow, ProcessorKind};

    #[test]
    fn workflow_parses_and_validates() {
        let wf = bronze_workflow();
        assert_eq!(wf.sources().len(), 3);
        assert_eq!(wf.sinks().len(), 2);
        let services = wf
            .processors
            .iter()
            .filter(|p| p.kind == ProcessorKind::Service)
            .count();
        assert_eq!(services, 7, "6 registration jobs + MultiTransfoTest");
    }

    #[test]
    fn critical_path_has_five_services_as_in_the_paper() {
        // §5.1: "For our application, nW is 5": crestLines → crestMatch
        // → PFMatchICP → PFRegister → MultiTransfoTest.
        assert_eq!(bronze_workflow().critical_path_services().unwrap(), 5);
    }

    #[test]
    fn grouping_merges_exactly_the_papers_two_pairs() {
        // §3.6: group crestLines+crestMatch and PFMatchICP+PFRegister.
        let g = group_workflow(&bronze_workflow()).unwrap();
        assert!(g.find("crestLines+crestMatch").is_some(), "{:?}", names(&g));
        assert!(g.find("PFMatchICP+PFRegister").is_some(), "{:?}", names(&g));
        let services = g
            .processors
            .iter()
            .filter(|p| p.kind == ProcessorKind::Service)
            .count();
        assert_eq!(
            services, 5,
            "7 services collapse to 5 (4 grid jobs/pair + sync)"
        );
    }

    fn names(wf: &Workflow) -> Vec<&str> {
        wf.processors.iter().map(|p| p.name.as_str()).collect()
    }

    #[test]
    fn critical_path_names_match_the_papers_chain() {
        let wf = bronze_workflow();
        let names: Vec<String> = wf
            .critical_path()
            .unwrap()
            .into_iter()
            .map(|id| wf.processor(id).name.clone())
            .collect();
        assert_eq!(
            names,
            [
                "crestLines",
                "crestMatch",
                "PFMatchICP",
                "PFRegister",
                "MultiTransfoTest"
            ]
        );
    }

    #[test]
    fn model_prediction_matches_quiet_grid_simulation() {
        use moteur::{run, EnactorConfig, SimBackend, TimeMatrix};
        use moteur_gridsim::{CeConfig, Distribution, GridConfig, NetworkConfig};
        // A quiet grid with a constant per-job overhead lets the model
        // predict the makespan of the *critical path*; the full DAG has
        // side branches (Yasmina/Baladin) that the model ignores, so
        // prediction is a lower bound within the branch slack.
        let overhead = 120.0;
        let grid = GridConfig {
            ces: vec![CeConfig::new("ce", 10_000, 1.0)],
            submission_overhead: Distribution::Constant(overhead),
            match_delay: Distribution::Constant(0.0),
            notify_delay: Distribution::Constant(0.0),
            failure_probability: 0.0,
            failure_detection: Distribution::Constant(0.0),
            max_retries: 0,
            network: NetworkConfig {
                transfer_latency: 0.0,
                bandwidth: f64::INFINITY,
                congestion: 0.0,
            },
            typical_job_duration: 100.0,
            info_refresh_period: 3600.0,
            compute_jitter: Distribution::Constant(1.0),
        };
        let wf = bronze_workflow();
        let n = 4;
        let t = TimeMatrix::from_workflow(&wf, n, overhead).unwrap();
        let predicted = t.sigma_dsp();
        let mut backend = SimBackend::new(grid, 1);
        let measured = run(&wf, &bronze_inputs(n), EnactorConfig::sp_dp(), &mut backend)
            .unwrap()
            .makespan
            .as_secs_f64();
        // The prediction must bound from below and land within the
        // Yasmina/Baladin branch slack (~2 overhead+compute windows).
        assert!(
            measured >= predicted - 1e-6,
            "measured {measured} < predicted {predicted}"
        );
        assert!(
            measured < predicted * 1.5,
            "prediction too loose: measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn inputs_scale_with_pair_count() {
        let d = bronze_inputs(12);
        assert_eq!(d.get("referenceImage").unwrap().len(), 12);
        assert_eq!(d.get("floatingImage").unwrap().len(), 12);
        assert_eq!(d.get("methodToTest").unwrap().len(), 1);
        let (gfn, bytes) = d.get("referenceImage").unwrap()[0].as_file().unwrap();
        assert!(gfn.contains("ref000"));
        assert_eq!(bytes, IMAGE_BYTES);
    }
}
