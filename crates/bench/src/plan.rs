//! Static-plan benchmark: does `moteur plan` predict what the enactor
//! actually moves?
//!
//! Two workflows run on the frictionless grid with a [`TimelineSink`]
//! attached, which accumulates the observed bytes staged per (consumer,
//! input port) from the enactor's `edge_staged` events:
//!
//! - **bronze** — the Fig. 9 DAG, dot iteration plus a synchronization
//!   barrier, with source sizes declared to match the actual input
//!   files.
//! - **cross** — a two-source cross-product sweep into a barrier, so
//!   the quadratic invocation count (and its re-fetch of every input
//!   per tuple) must be bounded too.
//!
//! The gate requires *containment*: every statically derived per-edge
//! byte interval must contain the observed per-(consumer, port) total.
//! Separately, on a data-heavy bronze variant (crest lines as large as
//! the images they trace) the partitioned makespan prediction must beat
//! the centralized one — the planner's grouping recommendation has to
//! pay for itself in its own cost model.

use crate::bronze::{bronze_inputs, bronze_workflow, bronze_workflow_xml, IMAGE_BYTES};
use moteur::obs::json::JsonObject;
use moteur::plan::interval::{CardInterval, SourceSizes};
use moteur::{
    plan_workflow, run_fault_tolerant, DataValue, EnactorConfig, FtConfig, InputData, MoteurError,
    Obs, PlanOptions, SimBackend, TimelineSink, Workflow,
};
use moteur_gridsim::GridConfig;
use moteur_scufl::parse_workflow;

/// Schema tag of [`render_plan_bench_json`].
pub const PLAN_BENCH_SCHEMA: &str = "moteur-bench/plan/v1";

/// Per-item payload of the cross-sweep workflow's sources (1 MiB).
const CROSS_ITEM_BYTES: u64 = 1_048_576;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// Input-set size per source (bronze pairs / cross items).
    pub n_data: usize,
    /// Simulation seed (the ideal grid is deterministic anyway).
    pub seed: u64,
}

impl Default for PlanSpec {
    fn default() -> Self {
        PlanSpec {
            n_data: 6,
            seed: 2006,
        }
    }
}

/// One edge's static-vs-observed comparison.
#[derive(Debug, Clone)]
pub struct EdgeCheck {
    /// Consumer processor.
    pub to: String,
    /// Consumer input port.
    pub to_port: String,
    /// Static transfer-volume bound from `moteur plan`.
    pub bytes: CardInterval,
    /// Bytes the enactor actually staged onto this port, summed over
    /// the campaign.
    pub observed: u64,
    /// `bytes.contains(observed)`.
    pub contained: bool,
}

/// What one workflow's run measured.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// `"bronze"` or `"cross"`.
    pub scenario: &'static str,
    /// Grid edges only (enactor-internal sink deliveries are not
    /// staged into jobs and carry no observable transfer).
    pub edges: Vec<EdgeCheck>,
    /// Observed makespan on the ideal grid (context, not gated).
    pub makespan_secs: f64,
    /// Jobs the enactor submitted.
    pub jobs_submitted: usize,
}

impl PlanOutcome {
    /// Did every static interval contain its observed total?
    pub fn all_contained(&self) -> bool {
        !self.edges.is_empty() && self.edges.iter().all(|e| e.contained)
    }
}

/// The full benchmark result (`BENCH_plan.json`).
#[derive(Debug, Clone)]
pub struct PlanBenchReport {
    /// Campaign shape the report was produced under.
    pub spec: PlanSpec,
    /// One outcome per workflow.
    pub outcomes: Vec<PlanOutcome>,
    /// Predicted centralized makespan of the data-heavy bronze variant.
    pub heavy_centralized: f64,
    /// Predicted makespan with the greedy site partition applied.
    pub heavy_partitioned: f64,
}

impl PlanBenchReport {
    /// The named outcome.
    pub fn outcome(&self, scenario: &str) -> Option<&PlanOutcome> {
        self.outcomes.iter().find(|o| o.scenario == scenario)
    }

    /// The gate predicate: containment on every edge of every workflow,
    /// and the partition must beat centralized routing on the
    /// data-heavy variant.
    pub fn ok(&self) -> bool {
        !self.outcomes.is_empty()
            && self.outcomes.iter().all(PlanOutcome::all_contained)
            && self.heavy_partitioned < self.heavy_centralized
    }
}

/// The Fig. 9 workflow with crest lines as heavy as the images they
/// trace: the crestLines → crestMatch edges now dominate, so the
/// partitioner's first merge internalizes real volume.
fn data_heavy_bronze() -> Workflow {
    let xml =
        bronze_workflow_xml().replace(r#"bytes="400000""#, &format!("bytes=\"{IMAGE_BYTES}\""));
    parse_workflow(&xml).expect("the data-heavy bronze variant is valid")
}

/// A two-source cross-product sweep feeding a barrier: `n²` service
/// invocations, each re-fetching one item per port.
fn cross_workflow_xml() -> String {
    format!(
        r#"<scufl name="cross-sweep">
  <source name="paramsA" bytes="{CROSS_ITEM_BYTES}"/>
  <source name="paramsB" bytes="{CROSS_ITEM_BYTES}"/>
  <processor name="sweep" compute="30" iteration="cross">
    <executable name="sweep">
      <access type="URL"><path value="http://example.org"/></access>
      <value value="sweep"/>
      <input name="a" option="-a"><access type="GFN"/></input>
      <input name="b" option="-b"><access type="GFN"/></input>
      <output name="out" option="-o"><access type="GFN"/></output>
    </executable>
    <outputsize slot="out" bytes="4096"/>
  </processor>
  <processor name="reduce" compute="10" sync="true">
    <executable name="reduce">
      <access type="URL"><path value="http://example.org"/></access>
      <value value="reduce"/>
      <input name="in" option="-i"><access type="GFN"/></input>
      <output name="best" option="-o"><access type="GFN"/></output>
    </executable>
    <outputsize slot="best" bytes="512"/>
  </processor>
  <sink name="result"/>
  <link from="paramsA:out" to="sweep:a"/>
  <link from="paramsB:out" to="sweep:b"/>
  <link from="sweep:out" to="reduce:in"/>
  <link from="reduce:best" to="result:in"/>
</scufl>"#
    )
}

fn cross_inputs(n_data: usize) -> InputData {
    let files = |prefix: &str| -> Vec<DataValue> {
        (0..n_data)
            .map(|j| DataValue::File {
                gfn: format!("gfn://sweep/{prefix}{j:03}.dat"),
                bytes: CROSS_ITEM_BYTES,
            })
            .collect()
    };
    InputData::new()
        .set("paramsA", files("a"))
        .set("paramsB", files("b"))
}

/// Run both workflows and compare static bounds against observed
/// per-edge staging.
pub fn run_plan_bench(spec: &PlanSpec) -> Result<PlanBenchReport, MoteurError> {
    if spec.n_data == 0 {
        return Err(MoteurError::new("plan benchmark needs n_data > 0"));
    }
    let n = spec.n_data as u64;
    // Bronze's method list always has one item, whatever the pair count.
    let bronze_sizes = SourceSizes::uniform(n).with("methodToTest", 1);
    let scenarios: [(&'static str, Workflow, InputData, SourceSizes); 2] = [
        (
            "bronze",
            bronze_workflow(),
            bronze_inputs(spec.n_data),
            bronze_sizes.clone(),
        ),
        (
            "cross",
            parse_workflow(&cross_workflow_xml()).expect("the cross-sweep workflow is valid"),
            cross_inputs(spec.n_data),
            SourceSizes::uniform(n),
        ),
    ];
    let ft = FtConfig::from_legacy(3);
    let mut outcomes = Vec::new();
    for (scenario, wf, inputs, sizes) in scenarios {
        let opts = PlanOptions {
            sizes,
            ..PlanOptions::default()
        };
        let plan = plan_workflow(&wf, &opts);
        let sink = TimelineSink::new();
        let state = sink.state();
        let obs = Obs::new(vec![Box::new(sink)]);
        let mut backend = SimBackend::with_obs(GridConfig::ideal(), spec.seed, &obs);
        let config = EnactorConfig::sp_dp().with_seed(spec.seed);
        let result = run_fault_tolerant(&wf, &inputs, config, &ft, &mut backend, obs)?;
        let state = state.lock().expect("timeline state");
        let edges = plan
            .edges
            .iter()
            .filter(|e| e.grid)
            .map(|e| {
                let observed = state
                    .stats
                    .edge_bytes
                    .get(&(e.to.clone(), e.to_port.clone()))
                    .copied()
                    .unwrap_or(0);
                EdgeCheck {
                    to: e.to.clone(),
                    to_port: e.to_port.clone(),
                    bytes: e.bytes,
                    observed,
                    contained: e.bytes.contains(observed),
                }
            })
            .collect();
        outcomes.push(PlanOutcome {
            scenario,
            edges,
            makespan_secs: result.makespan.as_secs_f64(),
            jobs_submitted: result.jobs_submitted,
        });
    }
    let heavy = plan_workflow(
        &data_heavy_bronze(),
        &PlanOptions {
            sizes: bronze_sizes,
            ..PlanOptions::default()
        },
    );
    let heavy_centralized = heavy.makespan_centralized.ok_or_else(|| {
        MoteurError::new("data-heavy bronze variant is acyclic, expected makespan")
    })?;
    let heavy_partitioned = heavy.makespan_partitioned.ok_or_else(|| {
        MoteurError::new("data-heavy bronze variant is acyclic, expected makespan")
    })?;
    Ok(PlanBenchReport {
        spec: spec.clone(),
        outcomes,
        heavy_centralized,
        heavy_partitioned,
    })
}

/// Serialise the report (`BENCH_plan.json`).
pub fn render_plan_bench_json(report: &PlanBenchReport) -> String {
    let outcomes = moteur::obs::json::array(report.outcomes.iter().map(|o| {
        let edges = moteur::obs::json::array(o.edges.iter().map(|e| {
            let obj = JsonObject::new()
                .str("to", &e.to)
                .str("to_port", &e.to_port)
                .uint("bytes_lo", e.bytes.lo);
            let obj = match e.bytes.hi {
                Some(hi) => obj.uint("bytes_hi", hi),
                None => obj.raw("bytes_hi", "null"),
            };
            obj.uint("observed", e.observed)
                .bool("contained", e.contained)
                .finish()
        }));
        JsonObject::new()
            .str("scenario", o.scenario)
            .num("makespan_secs", o.makespan_secs)
            .uint("jobs_submitted", o.jobs_submitted as u64)
            .bool("all_contained", o.all_contained())
            .raw("edges", &edges)
            .finish()
    }));
    JsonObject::new()
        .str("schema", PLAN_BENCH_SCHEMA)
        .uint("n_data", report.spec.n_data as u64)
        .uint("seed", report.spec.seed)
        .num("heavy_centralized_secs", report.heavy_centralized)
        .num("heavy_partitioned_secs", report.heavy_partitioned)
        .bool("ok", report.ok())
        .raw("scenarios", &outcomes)
        .finish()
}

/// Human rendering, one workflow per block.
pub fn render_plan_bench(report: &PlanBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "static plan vs observed staging: n_data {} (seed {})",
        report.spec.n_data, report.spec.seed,
    );
    for o in &report.outcomes {
        let _ = writeln!(
            out,
            "  {:<8} makespan {:>9.1} s  {} jobs  {} grid edges",
            o.scenario,
            o.makespan_secs,
            o.jobs_submitted,
            o.edges.len(),
        );
        for e in &o.edges {
            let _ = writeln!(
                out,
                "    {:<40} static {:<22} observed {:>12} {}",
                format!("{}:{}", e.to, e.to_port),
                e.bytes.to_string(),
                e.observed,
                if e.contained { "(ok)" } else { "(OUTSIDE)" },
            );
        }
    }
    let _ = writeln!(
        out,
        "  data-heavy bronze: centralized {:.1} s, partitioned {:.1} s {}",
        report.heavy_centralized,
        report.heavy_partitioned,
        if report.heavy_partitioned < report.heavy_centralized {
            "(partition pays)"
        } else {
            "(GATE FAILS)"
        },
    );
    let _ = writeln!(
        out,
        "  containment + partition advantage: {}",
        if report.ok() { "(ok)" } else { "(GATE FAILS)" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> PlanSpec {
        PlanSpec {
            n_data: 3,
            seed: 2006,
        }
    }

    #[test]
    fn static_intervals_contain_observed_bytes_on_bronze() {
        let report = run_plan_bench(&quick_spec()).unwrap();
        let bronze = report.outcome("bronze").unwrap();
        assert!(!bronze.edges.is_empty());
        for e in &bronze.edges {
            assert!(
                e.contained,
                "{}:{} static {} observed {}",
                e.to, e.to_port, e.bytes, e.observed
            );
        }
        // Declared sizes equal actual file sizes, so the bound is
        // exact, not merely containing: images move 3 × 7.8 MB.
        let crest_ref = bronze
            .edges
            .iter()
            .find(|e| e.to == "crestLines" && e.to_port == "reference_image")
            .unwrap();
        assert_eq!(crest_ref.observed, 3 * crate::bronze::IMAGE_BYTES);
        assert_eq!(
            crest_ref.bytes,
            CardInterval::exact(3 * crate::bronze::IMAGE_BYTES)
        );
    }

    #[test]
    fn cross_product_refetch_is_bounded() {
        let report = run_plan_bench(&quick_spec()).unwrap();
        let cross = report.outcome("cross").unwrap();
        assert!(cross.all_contained(), "{cross:?}");
        // 3×3 tuples each stage one 1 MiB item per port.
        let a = cross
            .edges
            .iter()
            .find(|e| e.to == "sweep" && e.to_port == "a")
            .unwrap();
        assert_eq!(a.observed, 9 * CROSS_ITEM_BYTES);
        assert!(a.bytes.contains(a.observed));
    }

    #[test]
    fn the_partition_beats_centralized_on_the_heavy_variant() {
        let report = run_plan_bench(&quick_spec()).unwrap();
        assert!(
            report.heavy_partitioned < report.heavy_centralized,
            "partitioned {} >= centralized {}",
            report.heavy_partitioned,
            report.heavy_centralized
        );
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn plan_bench_json_is_tagged_and_complete() {
        let report = run_plan_bench(&quick_spec()).unwrap();
        let json = render_plan_bench_json(&report);
        assert!(json.contains("\"schema\":\"moteur-bench/plan/v1\""));
        assert!(json.contains("\"bronze\""));
        assert!(json.contains("\"cross\""));
        assert!(json.contains("\"heavy_partitioned_secs\""));
        let human = render_plan_bench(&report);
        assert!(human.contains("static plan vs observed staging"));
        assert!(human.contains("(ok)"));
    }
}
