//! Campaign runner: enact the Bronze-Standard workflow on the simulated
//! EGEE grid under each optimization configuration — the machinery
//! behind Table 1, Table 2, Fig. 10 and the §5 speed-up analyses.

use crate::bronze::{bronze_inputs, bronze_workflow};
use moteur::{run_observed, EnactorConfig, Obs, SimBackend, WorkflowResult};
use moteur_analysis::Series;
use moteur_gridsim::GridConfig;

/// One campaign measurement.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    pub config: EnactorConfig,
    pub n_pairs: usize,
    pub makespan_secs: f64,
    pub jobs_submitted: usize,
}

/// Enact the workflow once for `(config, n_pairs)` on a fresh simulated
/// grid with the given seed.
pub fn run_point(config: EnactorConfig, n_pairs: usize, seed: u64) -> CampaignPoint {
    run_point_observed(config, n_pairs, seed, Obs::off()).0
}

/// Like [`run_point`], but with event sinks attached to both the enactor
/// and the grid simulator, and the full [`WorkflowResult`] returned so
/// callers can export Chrome traces, metrics snapshots or critical-path
/// reports from a campaign cell.
pub fn run_point_observed(
    config: EnactorConfig,
    n_pairs: usize,
    seed: u64,
    obs: Obs,
) -> (CampaignPoint, WorkflowResult) {
    let workflow = bronze_workflow();
    let inputs = bronze_inputs(n_pairs);
    let mut backend = SimBackend::with_obs(GridConfig::egee_2006(), seed, &obs);
    let result = run_observed(&workflow, &inputs, config, &mut backend, obs)
        .expect("bronze campaign must complete");
    let point = CampaignPoint {
        config,
        n_pairs,
        makespan_secs: result.makespan.as_secs_f64(),
        jobs_submitted: result.jobs_submitted,
    };
    (point, result)
}

/// Run every configuration over every size; returns one series per
/// configuration in the paper's Table 1 row order. Each (config, size)
/// cell is averaged over `repeats` seeds.
pub fn run_campaign(
    sizes: &[usize],
    seed: u64,
    repeats: usize,
) -> Vec<(Series, Vec<CampaignPoint>)> {
    EnactorConfig::table1_configurations()
        .iter()
        .map(|cfg| {
            let mut points = Vec::new();
            let series_points = sizes
                .iter()
                .map(|&n| {
                    let mut total = 0.0;
                    for r in 0..repeats.max(1) {
                        let p =
                            run_point(cfg.with_seed(seed + r as u64), n, seed + 1000 * r as u64);
                        total += p.makespan_secs;
                        points.push(p);
                    }
                    (n as f64, total / repeats.max(1) as f64)
                })
                .collect();
            (Series::new(cfg.label(), series_points), points)
        })
        .collect()
}

/// The paper's data-set sizes (12, 66, 126 image pairs).
pub const PAPER_SIZES: [usize; 3] = [12, 66, 126];

/// Reduced sizes for quick smoke runs and CI.
pub const QUICK_SIZES: [usize; 3] = [4, 8, 16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_runs_and_counts_jobs() {
        let p = run_point(EnactorConfig::sp_dp(), 3, 7);
        // 6 jobs per pair + 1 synchronization job.
        assert_eq!(p.jobs_submitted, 19);
        assert!(p.makespan_secs > 0.0);
    }

    #[test]
    fn grouping_reduces_submissions_to_4_per_pair() {
        let p = run_point(EnactorConfig::sp_dp_jg(), 3, 7);
        assert_eq!(p.jobs_submitted, 13, "4 jobs per pair + 1 sync");
    }

    #[test]
    fn paper_job_counts_at_12_pairs() {
        // §4.4: 12 pairs → 72 registration submissions.
        let p = run_point(EnactorConfig::sp_dp(), 12, 3);
        assert_eq!(p.jobs_submitted, 12 * 6 + 1);
    }

    #[test]
    fn campaign_produces_six_ordered_series() {
        let results = run_campaign(&[2, 4], 1, 1);
        assert_eq!(results.len(), 6);
        let labels: Vec<&str> = results.iter().map(|(s, _)| s.label.as_str()).collect();
        assert_eq!(labels, ["NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"]);
        for (s, pts) in &results {
            assert_eq!(s.points.len(), 2);
            assert_eq!(pts.len(), 2);
        }
    }

    #[test]
    fn observed_point_matches_blind_point_and_counts_jobs() {
        let (sink, registry) = moteur::MetricsSink::new();
        let obs = Obs::new(vec![Box::new(sink)]);
        let (p, result) = run_point_observed(EnactorConfig::sp_dp(), 3, 7, obs);
        let blind = run_point(EnactorConfig::sp_dp(), 3, 7);
        assert_eq!(
            p.jobs_submitted, blind.jobs_submitted,
            "observation must not perturb the run"
        );
        assert!((p.makespan_secs - blind.makespan_secs).abs() < 1e-9);
        let reg = registry.lock().unwrap();
        assert_eq!(reg.counter("job_submitted") as usize, result.jobs_submitted);
    }

    #[test]
    fn optimized_configurations_beat_nop() {
        let n = 6;
        let nop = run_point(EnactorConfig::nop(), n, 42).makespan_secs;
        let spdp = run_point(EnactorConfig::sp_dp(), n, 42).makespan_secs;
        let all = run_point(EnactorConfig::sp_dp_jg(), n, 42).makespan_secs;
        assert!(spdp < nop, "SP+DP {spdp} vs NOP {nop}");
        assert!(all < spdp, "SP+DP+JG {all} vs SP+DP {spdp}");
    }
}
