//! Warm-restart benchmark: the same campaign enacted twice against one
//! provenance-keyed data manager.
//!
//! The cold run populates the store (every probe misses, so its
//! makespan must still satisfy the eq. 1–4 drift check — memoization
//! may not perturb the cold path). The warm run then replays the same
//! inputs: every deterministic grid job is elided into a constant-cost
//! fetch, and the makespan collapses from the chain's compute total to
//! a few seconds of simulated transfers. The resulting
//! `BENCH_warm.json` documents the speed-up alongside the regular
//! observatory artifacts.

use crate::bronze::{bronze_chain_inputs, bronze_chain_workflow};
use moteur::obs::json::JsonObject;
use moteur::{
    check_drift, predict, run_cached, DataStore, EnactorConfig, MetricsSink, MoteurError, Obs,
    Observation, SimBackend, StoreConfig,
};
use moteur_gridsim::GridConfig;

/// Schema tag of [`render_warm_json`].
pub const WARM_SCHEMA: &str = "moteur-bench/warm/v1";

/// Everything measured by one cold/warm pair.
#[derive(Debug, Clone)]
pub struct WarmReport {
    pub n_data: usize,
    pub seed: u64,
    pub cold_makespan_secs: f64,
    pub warm_makespan_secs: f64,
    /// Grid jobs submitted by the cold run (fetches never count).
    pub cold_jobs: usize,
    pub warm_jobs: usize,
    /// Model prediction for the cold run (sp+dp, eq. 1–4).
    pub predicted_secs: f64,
    pub rel_error: f64,
    pub drift_ok: bool,
    /// Cache traffic of the *warm* run only.
    pub hits: u64,
    pub misses: u64,
    /// `cold_makespan / warm_makespan`.
    pub speedup: f64,
    pub store_entries: usize,
    pub store_bytes: u64,
}

impl WarmReport {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Run the cold/warm pair: Bronze-Standard chain, ideal grid, SP+DP —
/// the deterministic cell of the sweep, so both makespans are exact.
pub fn run_warm_pair(n_data: usize, seed: u64) -> Result<WarmReport, MoteurError> {
    let workflow = bronze_chain_workflow();
    let config = EnactorConfig::sp_dp().with_seed(seed);
    let tolerance = 0.05;
    let prediction = predict(&workflow, n_data, 0.0)?;
    let mut store = DataStore::in_memory(StoreConfig::default());

    // Cold: populate the store; all probes miss.
    let mut backend = SimBackend::new(GridConfig::ideal(), seed);
    let cold = run_cached(
        &workflow,
        &bronze_chain_inputs(n_data),
        config,
        &mut backend,
        Obs::off(),
        &mut store,
    )?;
    let cold_makespan_secs = cold.makespan.as_secs_f64();
    let drift = check_drift(
        &prediction,
        &[Observation {
            config: "sp+dp".to_string(),
            makespan_secs: cold_makespan_secs,
        }],
        tolerance,
    );
    let entry = drift
        .entries
        .first()
        .ok_or_else(|| MoteurError::new("no sp+dp prediction row"))?;
    let (predicted_secs, rel_error) = (entry.predicted_secs, entry.rel_error);

    // Warm: same inputs, fresh grid, shared store — and a metrics sink
    // so the cache traffic shows up the same way it would in a user's
    // OpenMetrics exposition.
    let (sink, registry) = MetricsSink::new();
    let obs = Obs::new(vec![Box::new(sink)]);
    let mut backend = SimBackend::with_obs(GridConfig::ideal(), seed, &obs);
    let warm = run_cached(
        &workflow,
        &bronze_chain_inputs(n_data),
        config,
        &mut backend,
        obs.clone(),
        &mut store,
    )?;
    obs.flush()
        .map_err(|e| MoteurError::new(format!("flushing metrics: {e}")))?;
    let (hits, misses) = {
        let reg = registry.lock().expect("metrics registry");
        (reg.counter("cache_hit"), reg.counter("cache_miss"))
    };
    let warm_makespan_secs = warm.makespan.as_secs_f64();
    let stats = store.stats();

    Ok(WarmReport {
        n_data,
        seed,
        cold_makespan_secs,
        warm_makespan_secs,
        cold_jobs: cold.jobs_submitted,
        warm_jobs: warm.jobs_submitted,
        predicted_secs,
        rel_error,
        drift_ok: rel_error <= tolerance,
        hits,
        misses,
        speedup: if warm_makespan_secs > 0.0 {
            cold_makespan_secs / warm_makespan_secs
        } else {
            f64::INFINITY
        },
        store_entries: stats.entries,
        store_bytes: stats.bytes,
    })
}

/// Serialise the report (`BENCH_warm.json`).
pub fn render_warm_json(report: &WarmReport) -> String {
    JsonObject::new()
        .str("schema", WARM_SCHEMA)
        .str("workflow", "bronze-chain")
        .str("grid", "ideal")
        .str("config", "sp+dp")
        .uint("n_data", report.n_data as u64)
        .uint("seed", report.seed)
        .num("cold_makespan_secs", report.cold_makespan_secs)
        .num("warm_makespan_secs", report.warm_makespan_secs)
        .uint("cold_jobs", report.cold_jobs as u64)
        .uint("warm_jobs", report.warm_jobs as u64)
        .num("predicted_secs", report.predicted_secs)
        .num("rel_error", report.rel_error)
        .bool("drift_ok", report.drift_ok)
        .uint("cache_hits", report.hits)
        .uint("cache_misses", report.misses)
        .num("hit_ratio", report.hit_ratio())
        .num("speedup", report.speedup)
        .uint("store_entries", report.store_entries as u64)
        .uint("store_bytes", report.store_bytes)
        .finish()
}

/// Human rendering, one line per fact.
pub fn render_warm(report: &WarmReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "warm-restart pair: bronze-chain on ideal grid, sp+dp, n_data {} (seed {})",
        report.n_data, report.seed
    );
    let _ = writeln!(
        out,
        "  cold: {:.1} s, {} jobs (predicted {:.1} s, err {:.2}%, drift {})",
        report.cold_makespan_secs,
        report.cold_jobs,
        report.predicted_secs,
        report.rel_error * 100.0,
        if report.drift_ok { "ok" } else { "DRIFT" }
    );
    let _ = writeln!(
        out,
        "  warm: {:.1} s, {} jobs, {} hits / {} misses ({:.0}% hit ratio)",
        report.warm_makespan_secs,
        report.warm_jobs,
        report.hits,
        report.misses,
        report.hit_ratio() * 100.0
    );
    let _ = writeln!(
        out,
        "  speedup {:.1}x; store holds {} entries ({} bytes)",
        report.speedup, report.store_entries, report.store_bytes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_run_elides_all_grid_jobs_and_beats_cold() {
        let r = run_warm_pair(4, 2006).unwrap();
        assert!(r.drift_ok, "cold run drifted: {}", r.rel_error);
        // The chain is fully deterministic: every warm invocation hits.
        assert_eq!(r.warm_jobs, 0, "warm run should submit no grid jobs");
        assert_eq!(r.misses, 0);
        assert_eq!(r.hits as usize, r.cold_jobs);
        assert!((r.hit_ratio() - 1.0).abs() < f64::EPSILON);
        assert!(
            r.warm_makespan_secs < r.cold_makespan_secs / 10.0,
            "warm {} vs cold {}",
            r.warm_makespan_secs,
            r.cold_makespan_secs
        );
        assert!(r.speedup > 10.0);
        assert!(r.store_entries > 0 && r.store_bytes > 0);
    }

    #[test]
    fn warm_json_carries_the_schema_tag() {
        let r = run_warm_pair(2, 7).unwrap();
        let json = render_warm_json(&r);
        assert!(json.contains("\"schema\":\"moteur-bench/warm/v1\""));
        assert!(json.contains("\"cache_hits\""));
        assert!(json.contains("\"speedup\""));
        // The human rendering mentions the same headline numbers.
        let human = render_warm(&r);
        assert!(human.contains("speedup"));
        assert!(human.contains("hit ratio"));
    }
}
