//! Scale campaign: push the simulator and the enactor far past the
//! paper's workloads and measure real (host) throughput.
//!
//! Two phases, both driven with the self-profiler attached:
//!
//! - **gridsim** — waves of synthetic jobs against `egee_2006` until
//!   the simulator has processed at least `target_events` discrete
//!   events (the paper-scale campaigns stop around 10⁴; the default
//!   here is 10⁶). Measures events per host-second and, when the
//!   counting allocator is installed, allocations per event — the
//!   deterministic proxy for event-loop throughput that the CI gate
//!   compares against its committed baseline.
//! - **enactment** — one bronze-chain campaign sized to submit
//!   `enact_jobs` grid jobs (default 10⁴, versus 756 for the paper's
//!   largest run) through the full enactor with a provenance-keyed
//!   store attached, measuring jobs per host-second.
//!
//! `BENCH_scale.json` (schema [`SCALE_SCHEMA`]) records both
//! throughputs, the peak bytes ever live in the process, the
//! per-event allocation rate and the profiler's per-subsystem wall
//! fractions. Wall-clock throughput is machine-dependent, so
//! [`crate::gate::check_scale`] gates on the deterministic axes
//! (allocations per event, peak bytes) and only sanity-checks the
//! wall numbers for positivity.

use crate::bronze::{bronze_chain_inputs, bronze_chain_workflow};
use moteur::obs::json::JsonObject;
use moteur::{
    run_cached, DataStore, EnactorConfig, MoteurError, Obs, Prof, ProfReport, SimBackend,
    StoreConfig, Subsystem,
};
use moteur_gridsim::{GridConfig, GridJobSpec, GridSim};
use std::time::Instant;

/// Schema tag of [`render_scale_json`].
pub const SCALE_SCHEMA: &str = "moteur-bench/scale/v1";

/// Ceiling on simulator allocations per processed event (gate axis).
///
/// The event loop settles around 4–5 allocations per event (job
/// records, queue entries, emitted trace strings); the budget leaves
/// ~2× headroom so an accidental per-event clone or format trips the
/// gate without flaking on allocator-version noise.
pub const ALLOCS_PER_EVENT_BUDGET: f64 = 12.0;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Minimum number of simulator events to process (phase 1).
    pub target_events: u64,
    /// Grid jobs to push through the enactor (phase 2).
    pub enact_jobs: usize,
    pub seed: u64,
}

impl Default for ScaleSpec {
    fn default() -> Self {
        ScaleSpec {
            target_events: 1_000_000,
            enact_jobs: 10_000,
            seed: 2006,
        }
    }
}

/// What one subsystem contributed (wall fraction is host-dependent).
#[derive(Debug, Clone)]
pub struct SubsystemShare {
    pub subsystem: &'static str,
    pub calls: u64,
    pub fraction: f64,
}

/// The full campaign result (`BENCH_scale.json`).
#[derive(Debug, Clone)]
pub struct ScaleReport {
    pub spec: ScaleSpec,
    /// Whether the counting global allocator was installed (the
    /// `moteur-bench` binary installs it; plain test harnesses do not
    /// have to).
    pub alloc_installed: bool,
    // Phase 1: simulator.
    pub events_processed: u64,
    pub gridsim_jobs: u64,
    pub gridsim_wall_secs: f64,
    pub events_per_sec: f64,
    /// Simulator allocations per processed event (0 when the counting
    /// allocator is absent).
    pub allocs_per_event: f64,
    // Phase 2: enactor.
    pub enact_jobs_submitted: usize,
    pub enact_wall_secs: f64,
    pub jobs_per_sec: f64,
    pub enact_makespan_secs: f64,
    /// High-water mark of live heap bytes over the whole process (0
    /// when the counting allocator is absent).
    pub peak_alloc_bytes: u64,
    /// Per-subsystem wall-time shares from the profiler, in
    /// [`Subsystem::ALL`] order.
    pub subsystems: Vec<SubsystemShare>,
    /// The raw profiler snapshot (for `--profile`-style exports).
    pub prof: ProfReport,
}

impl ScaleReport {
    /// The gate predicate on the axes that hold on any machine.
    pub fn ok(&self) -> bool {
        self.events_processed >= self.spec.target_events
            && self.events_per_sec > 0.0
            && self.jobs_per_sec > 0.0
            && self.enact_jobs_submitted >= self.spec.enact_jobs
            && (!self.alloc_installed || self.allocs_per_event <= ALLOCS_PER_EVENT_BUDGET)
    }
}

/// Jobs submitted per simulator wave. Small enough that the event
/// queue stays shallow, large enough that submission overhead
/// amortises.
const WAVE: usize = 500;

/// Phase 1: drive `egee_2006` in waves until `target_events` events
/// have been processed.
fn run_gridsim_phase(spec: &ScaleSpec, prof: &Prof) -> (u64, u64, f64, f64) {
    let mut sim = GridSim::new(GridConfig::egee_2006(), spec.seed);
    if prof.is_enabled() {
        sim.set_prof(prof.clone());
    }
    let (allocs_before, _) = moteur_prof::alloc::totals();
    let start = Instant::now();
    let mut submitted: u64 = 0;
    while sim.events_processed() < spec.target_events {
        sim.reserve_jobs(WAVE);
        for _ in 0..WAVE {
            sim.submit(
                GridJobSpec::new(String::new(), 120.0)
                    .with_tag(submitted)
                    .with_files(vec![7_800_000], vec![400_000]),
            );
            submitted += 1;
        }
        while sim.next_completion().is_some() {}
    }
    let wall = start.elapsed().as_secs_f64();
    let (allocs_after, _) = moteur_prof::alloc::totals();
    let events = sim.events_processed();
    let allocs_per_event = if events > 0 {
        (allocs_after - allocs_before) as f64 / events as f64
    } else {
        0.0
    };
    (events, submitted, wall, allocs_per_event)
}

/// Phase 2: a bronze-chain campaign sized for `enact_jobs` submissions
/// (5 services per data item), enacted on the ideal grid with a
/// provenance-keyed store attached so the `provenance_key` and
/// `store_io` subsystems carry real load.
fn run_enact_phase(spec: &ScaleSpec, prof: &Prof) -> Result<(usize, f64, f64), MoteurError> {
    let workflow = bronze_chain_workflow();
    let n_data = spec.enact_jobs.div_ceil(5).max(1);
    let inputs = bronze_chain_inputs(n_data);
    let mut store = DataStore::in_memory(StoreConfig::default());
    let obs = Obs::off().with_prof(prof.clone());
    let mut backend = SimBackend::with_obs(GridConfig::ideal(), spec.seed, &obs);
    let config = EnactorConfig::sp_dp().with_seed(spec.seed);
    let start = Instant::now();
    let result = run_cached(&workflow, &inputs, config, &mut backend, obs, &mut store)?;
    let wall = start.elapsed().as_secs_f64();
    Ok((result.jobs_submitted, wall, result.makespan.as_secs_f64()))
}

/// Run both phases and assemble the report.
pub fn run_scale(spec: &ScaleSpec) -> Result<ScaleReport, MoteurError> {
    if spec.target_events == 0 || spec.enact_jobs == 0 {
        return Err(MoteurError::new(
            "scale campaign needs target_events > 0 and enact_jobs > 0",
        ));
    }
    let prof = Prof::enabled();
    let (events, gridsim_jobs, gridsim_wall, allocs_per_event) = run_gridsim_phase(spec, &prof);
    let (jobs_submitted, enact_wall, makespan) = run_enact_phase(spec, &prof)?;
    let report = prof.report();
    let subsystems = Subsystem::ALL
        .iter()
        .map(|&s| SubsystemShare {
            subsystem: s.name(),
            calls: report
                .subsystems
                .iter()
                .find(|st| st.subsystem == s)
                .map_or(0, |st| st.calls),
            fraction: report.fraction(s),
        })
        .collect();
    Ok(ScaleReport {
        spec: spec.clone(),
        alloc_installed: moteur_prof::alloc::installed(),
        events_processed: events,
        gridsim_jobs,
        gridsim_wall_secs: gridsim_wall,
        events_per_sec: events as f64 / gridsim_wall.max(f64::MIN_POSITIVE),
        allocs_per_event,
        enact_jobs_submitted: jobs_submitted,
        enact_wall_secs: enact_wall,
        jobs_per_sec: jobs_submitted as f64 / enact_wall.max(f64::MIN_POSITIVE),
        enact_makespan_secs: makespan,
        peak_alloc_bytes: moteur_prof::alloc::peak_bytes(),
        subsystems,
        prof: report,
    })
}

/// Serialise the report (`BENCH_scale.json`).
pub fn render_scale_json(report: &ScaleReport) -> String {
    let subsystems = moteur::obs::json::array(report.subsystems.iter().map(|s| {
        JsonObject::new()
            .str("subsystem", s.subsystem)
            .uint("calls", s.calls)
            .num("fraction", s.fraction)
            .finish()
    }));
    JsonObject::new()
        .str("schema", SCALE_SCHEMA)
        .uint("target_events", report.spec.target_events)
        .uint("enact_jobs", report.spec.enact_jobs as u64)
        .uint("seed", report.spec.seed)
        .bool("alloc_installed", report.alloc_installed)
        .uint("events_processed", report.events_processed)
        .uint("gridsim_jobs", report.gridsim_jobs)
        .num("gridsim_wall_secs", report.gridsim_wall_secs)
        .num("events_per_sec", report.events_per_sec)
        .num("allocs_per_event", report.allocs_per_event)
        .uint("enact_jobs_submitted", report.enact_jobs_submitted as u64)
        .num("enact_wall_secs", report.enact_wall_secs)
        .num("jobs_per_sec", report.jobs_per_sec)
        .num("enact_makespan_secs", report.enact_makespan_secs)
        .uint("peak_alloc_bytes", report.peak_alloc_bytes)
        .bool("ok", report.ok())
        .raw("subsystems", &subsystems)
        .finish()
}

/// Human rendering.
pub fn render_scale(report: &ScaleReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scale campaign (seed {}): {} events / {} enactor jobs",
        report.spec.seed, report.spec.target_events, report.spec.enact_jobs,
    );
    let _ = writeln!(
        out,
        "  gridsim   {:>12} events in {:>7.2} s  ({:>12.0} events/s, {} jobs)",
        report.events_processed,
        report.gridsim_wall_secs,
        report.events_per_sec,
        report.gridsim_jobs,
    );
    let _ = writeln!(
        out,
        "  enactor   {:>12} jobs   in {:>7.2} s  ({:>12.0} jobs/s, makespan {:.0} s simulated)",
        report.enact_jobs_submitted,
        report.enact_wall_secs,
        report.jobs_per_sec,
        report.enact_makespan_secs,
    );
    if report.alloc_installed {
        let _ = writeln!(
            out,
            "  alloc     {:.2} allocs/event (budget {ALLOCS_PER_EVENT_BUDGET}), peak {:.1} MB live",
            report.allocs_per_event,
            report.peak_alloc_bytes as f64 / (1024.0 * 1024.0),
        );
    } else {
        let _ = writeln!(out, "  alloc     counting allocator not installed");
    }
    out.push_str(&report.prof.render_table());
    let _ = writeln!(
        out,
        "  scale invariants: {}",
        if report.ok() { "(ok)" } else { "(GATE FAILS)" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> ScaleSpec {
        ScaleSpec {
            target_events: 20_000,
            enact_jobs: 100,
            seed: 2006,
        }
    }

    #[test]
    fn scale_campaign_reaches_its_event_and_job_targets() {
        let report = run_scale(&quick_spec()).unwrap();
        assert!(report.events_processed >= 20_000, "{report:?}");
        assert!(report.enact_jobs_submitted >= 100, "{report:?}");
        assert!(report.events_per_sec > 0.0);
        assert!(report.jobs_per_sec > 0.0);
        assert!(report.ok(), "{report:?}");
        // The profiler saw both phases.
        let calls = |name: &str| {
            report
                .subsystems
                .iter()
                .find(|s| s.subsystem == name)
                .unwrap()
                .calls
        };
        // The event queue is scoped per drain call, not per event, so
        // its call count tracks completions delivered; the events
        // dispatched inside each drain are batch-counted as sim_step.
        assert!(calls("event_queue") > 0);
        assert!(calls("sim_step") >= report.events_processed);
        assert_eq!(calls("enactor_loop"), 1);
        assert!(calls("provenance_key") > 0, "store attached");
        assert!(calls("store_io") > 0, "store attached");
    }

    #[test]
    fn scale_json_carries_the_schema_and_throughput_fields() {
        let report = run_scale(&ScaleSpec {
            target_events: 5_000,
            enact_jobs: 25,
            seed: 7,
        })
        .unwrap();
        let json = render_scale_json(&report);
        assert!(json.contains("\"schema\":\"moteur-bench/scale/v1\""));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"jobs_per_sec\""));
        assert!(json.contains("\"peak_alloc_bytes\""));
        assert!(json.contains("\"allocs_per_event\""));
        assert!(json.contains("\"subsystem\":\"event_queue\""));
        let human = render_scale(&report);
        assert!(human.contains("scale campaign"));
        assert!(human.contains("events/s"));
    }

    #[test]
    fn zero_targets_are_rejected() {
        assert!(run_scale(&ScaleSpec {
            target_events: 0,
            enact_jobs: 1,
            seed: 1
        })
        .is_err());
        assert!(run_scale(&ScaleSpec {
            target_events: 1,
            enact_jobs: 0,
            seed: 1
        })
        .is_err());
    }
}
