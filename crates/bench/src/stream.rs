//! Streaming campaign: push a million-item stream through a bounded-port
//! service chain and prove the enactor's memory high-water mark is
//! O(port-capacity), not O(stream length).
//!
//! Two phases, run with the counting allocator attached:
//!
//! - **eager reference** — a small slice of the stream (default 10⁴
//!   items) enacted in the legacy eager mode, sampling live heap bytes
//!   before and after while the [`moteur::WorkflowResult`] is still
//!   held. The delta divided by the item count is the eager per-item
//!   retained footprint (tokens, history trees, invocation records,
//!   sink outputs), whose projection onto the full stream is what
//!   streaming mode must undercut.
//! - **stream** — the full stream (default 10⁶ items) through the same
//!   chain with `port_capacity` bounded ports. The input vector is an
//!   unavoidable O(n) cost and is measured separately; everything the
//!   *pipeline* adds on top of it — ready queues, in-flight
//!   invocations, the retained result — must stay inside
//!   [`PIPELINE_PEAK_BUDGET`] regardless of stream length.
//!
//! `BENCH_stream.json` (schema [`STREAM_SCHEMA`]) records throughput,
//! the input and pipeline footprints and the eager projection;
//! [`crate::gate::check_stream`] gates on completion, positive
//! throughput, the absolute pipeline budget and the requirement that
//! the pipeline peak undercuts the eager projection by at least 4×.

use moteur::obs::json::JsonObject;
use moteur::{
    run, DataValue, EnactorConfig, InputData, MoteurError, ServiceBinding, Token, VirtualBackend,
    Workflow,
};
use std::time::Instant;

/// Schema tag of [`render_stream_json`].
pub const STREAM_SCHEMA: &str = "moteur-bench/stream/v1";

/// Ceiling on the streaming pipeline's peak live bytes *beyond* the
/// input vector, independent of stream length.
///
/// At port capacity 64 the pipeline retains a few hundred tokens,
/// in-flight jobs and capped record/sink samples — single-digit
/// megabytes in practice. 64 MB leaves an order of magnitude of
/// headroom while still sitting far below what one million eagerly
/// enacted items retain (hundreds of bytes each, i.e. hundreds of MB).
pub const PIPELINE_PEAK_BUDGET: u64 = 64 * 1024 * 1024;

/// Minimum factor by which the streaming pipeline peak must undercut
/// the eager projection for the same stream length.
pub const EAGER_UNDERCUT_FACTOR: f64 = 4.0;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream length of the bounded-port phase.
    pub n_items: usize,
    /// Port capacity of every bounded inter-service edge.
    pub port_capacity: usize,
    /// Stream length of the eager reference phase (kept small: its
    /// whole point is to measure the per-item retained footprint that
    /// would make the full stream infeasible).
    pub eager_items: usize,
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            n_items: 1_000_000,
            port_capacity: 64,
            eager_items: 10_000,
            seed: 2006,
        }
    }
}

/// The full campaign result (`BENCH_stream.json`).
#[derive(Debug, Clone)]
pub struct StreamReport {
    pub spec: StreamSpec,
    /// Whether the counting global allocator was installed; without it
    /// every byte axis reads 0 and only the functional checks apply.
    pub alloc_installed: bool,
    /// Exact sink tally of the streaming phase.
    pub items_completed: usize,
    pub jobs_submitted: usize,
    pub wall_secs: f64,
    pub items_per_sec: f64,
    /// Live-byte cost of materialising the input stream (O(n_items),
    /// unavoidable: the stream exists before enactment starts).
    pub input_bytes: u64,
    /// Peak live bytes the streaming pipeline added beyond the
    /// materialised inputs — the axis that must stay independent of
    /// stream length in *derived* state. It includes the source
    /// cursor's one flat copy of the input values (the same order of
    /// bytes as `input_bytes`, ~30 B/item for numeric streams), but
    /// none of the per-item tokens, history trees or records that make
    /// eager enactment O(n_items × ~750 B).
    pub pipeline_peak_bytes: u64,
    /// Retained footprint per item of the eager reference phase.
    pub eager_bytes_per_item: f64,
    /// Throughput of the eager reference phase, for the "comparable
    /// items/sec" comparison (informational: wall numbers are
    /// machine-dependent and not gated).
    pub eager_items_per_sec: f64,
    /// `eager_bytes_per_item × n_items`: what eager enactment would
    /// retain on the full stream.
    pub eager_projected_bytes: f64,
}

impl StreamReport {
    /// The gate predicate on the axes that hold on any machine.
    pub fn ok(&self) -> bool {
        let functional = self.items_completed >= self.spec.n_items && self.items_per_sec > 0.0;
        if !self.alloc_installed {
            return functional;
        }
        functional
            && self.pipeline_peak_bytes <= PIPELINE_PEAK_BUDGET
            && (self.pipeline_peak_bytes as f64) * EAGER_UNDERCUT_FACTOR
                <= self.eager_projected_bytes
    }
}

fn double(inputs: &[Token]) -> Result<Vec<(String, DataValue)>, String> {
    let x = inputs[0].value.as_num().ok_or("not a number")?;
    Ok(vec![("out".into(), DataValue::from(x * 2.0))])
}

fn shift(inputs: &[Token]) -> Result<Vec<(String, DataValue)>, String> {
    let x = inputs[0].value.as_num().ok_or("not a number")?;
    Ok(vec![("out".into(), DataValue::from(x + 1.0))])
}

/// items → double → shift → out: two local services per item, so a
/// million-item stream is two million invocations.
fn stream_chain() -> Workflow {
    let mut wf = Workflow::new("stream-chain");
    let src = wf.add_source("items");
    let d = wf.add_service("double", &["in"], &["out"], ServiceBinding::local(double));
    let s = wf.add_service("shift", &["in"], &["out"], ServiceBinding::local(shift));
    let sink = wf.add_sink("out");
    wf.connect(src, "out", d, "in").unwrap();
    wf.connect(d, "out", s, "in").unwrap();
    wf.connect(s, "out", sink, "in").unwrap();
    wf
}

fn stream_inputs(n: usize) -> InputData {
    InputData::new().set("items", (0..n).map(|i| DataValue::from(i as f64)).collect())
}

/// Run both phases and assemble the report. The streaming phase runs
/// first so the process-wide peak high-water mark during it is not
/// contaminated by the eager reference.
pub fn run_stream(spec: &StreamSpec) -> Result<StreamReport, MoteurError> {
    if spec.n_items == 0 || spec.port_capacity == 0 || spec.eager_items == 0 {
        return Err(MoteurError::new(
            "stream campaign needs n_items, port_capacity and eager_items > 0",
        ));
    }
    let workflow = stream_chain();

    // Phase 1: the bounded-port stream.
    let live_before_inputs = moteur_prof::alloc::live_bytes();
    let inputs = stream_inputs(spec.n_items);
    let live_after_inputs = moteur_prof::alloc::live_bytes();
    let input_bytes = live_after_inputs.saturating_sub(live_before_inputs);
    let config = EnactorConfig::sp_dp()
        .with_seed(spec.seed)
        .with_port_capacity(spec.port_capacity);
    let mut backend = VirtualBackend::new();
    let start = Instant::now();
    let result = run(&workflow, &inputs, config, &mut backend)?;
    let wall = start.elapsed().as_secs_f64();
    // Anything the pipeline allocated on top of the materialised
    // inputs pushed the high-water mark to at least `live + X`, so
    // peak − live bounds X from above (conservatively: it also counts
    // headroom the mark already had before the run).
    let pipeline_peak_bytes = moteur_prof::alloc::peak_bytes().saturating_sub(live_after_inputs);
    let items_completed = result.sink_count("out");
    let jobs_submitted = result.jobs_submitted;
    drop(result);
    drop(inputs);

    // Phase 2: the eager reference, measured on live bytes (immune to
    // the high-water mark left behind by phase 1).
    let ref_inputs = stream_inputs(spec.eager_items);
    let live_before_eager = moteur_prof::alloc::live_bytes();
    let mut ref_backend = VirtualBackend::new();
    let eager_start = Instant::now();
    let eager_result = run(
        &workflow,
        &ref_inputs,
        EnactorConfig::sp_dp().with_seed(spec.seed),
        &mut ref_backend,
    )?;
    let eager_wall = eager_start.elapsed().as_secs_f64();
    let retained = moteur_prof::alloc::live_bytes().saturating_sub(live_before_eager);
    let eager_bytes_per_item = retained as f64 / spec.eager_items as f64;
    drop(eager_result);

    Ok(StreamReport {
        spec: spec.clone(),
        alloc_installed: moteur_prof::alloc::installed(),
        items_completed,
        jobs_submitted,
        wall_secs: wall,
        items_per_sec: items_completed as f64 / wall.max(f64::MIN_POSITIVE),
        input_bytes,
        pipeline_peak_bytes,
        eager_bytes_per_item,
        eager_items_per_sec: spec.eager_items as f64 / eager_wall.max(f64::MIN_POSITIVE),
        eager_projected_bytes: eager_bytes_per_item * spec.n_items as f64,
    })
}

/// Serialise the report (`BENCH_stream.json`).
pub fn render_stream_json(report: &StreamReport) -> String {
    JsonObject::new()
        .str("schema", STREAM_SCHEMA)
        .uint("n_items", report.spec.n_items as u64)
        .uint("port_capacity", report.spec.port_capacity as u64)
        .uint("eager_items", report.spec.eager_items as u64)
        .uint("seed", report.spec.seed)
        .bool("alloc_installed", report.alloc_installed)
        .uint("items_completed", report.items_completed as u64)
        .uint("jobs_submitted", report.jobs_submitted as u64)
        .num("wall_secs", report.wall_secs)
        .num("items_per_sec", report.items_per_sec)
        .uint("input_bytes", report.input_bytes)
        .uint("pipeline_peak_bytes", report.pipeline_peak_bytes)
        .uint("pipeline_peak_budget", PIPELINE_PEAK_BUDGET)
        .num("eager_bytes_per_item", report.eager_bytes_per_item)
        .num("eager_items_per_sec", report.eager_items_per_sec)
        .num("eager_projected_bytes", report.eager_projected_bytes)
        .bool("ok", report.ok())
        .finish()
}

/// Human rendering.
pub fn render_stream(report: &StreamReport) -> String {
    use std::fmt::Write as _;
    const MB: f64 = 1024.0 * 1024.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "stream campaign (seed {}): {} items through port capacity {}",
        report.spec.seed, report.spec.n_items, report.spec.port_capacity,
    );
    let _ = writeln!(
        out,
        "  stream    {:>12} items  in {:>7.2} s  ({:>12.0} items/s, {} jobs)",
        report.items_completed, report.wall_secs, report.items_per_sec, report.jobs_submitted,
    );
    if report.alloc_installed {
        let _ = writeln!(
            out,
            "  memory    inputs {:.1} MB, pipeline peak {:.1} MB (budget {:.0} MB)",
            report.input_bytes as f64 / MB,
            report.pipeline_peak_bytes as f64 / MB,
            PIPELINE_PEAK_BUDGET as f64 / MB,
        );
        let _ = writeln!(
            out,
            "  eager ref {:.0} B/item retained -> {:.1} MB projected over the full stream \
             ({:.0} items/s)",
            report.eager_bytes_per_item,
            report.eager_projected_bytes / MB,
            report.eager_items_per_sec,
        );
    } else {
        let _ = writeln!(out, "  memory    counting allocator not installed");
    }
    let _ = writeln!(
        out,
        "  stream invariants: {}",
        if report.ok() { "(ok)" } else { "(GATE FAILS)" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> StreamSpec {
        StreamSpec {
            n_items: 5_000,
            port_capacity: 16,
            eager_items: 1_000,
            seed: 2006,
        }
    }

    #[test]
    fn stream_campaign_completes_every_item() {
        let report = run_stream(&quick_spec()).unwrap();
        assert_eq!(report.items_completed, 5_000, "{report:?}");
        assert_eq!(report.jobs_submitted, 10_000, "two services per item");
        assert!(report.items_per_sec > 0.0);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn stream_json_carries_the_schema_and_memory_axes() {
        let report = run_stream(&StreamSpec {
            n_items: 500,
            port_capacity: 8,
            eager_items: 100,
            seed: 7,
        })
        .unwrap();
        let json = render_stream_json(&report);
        assert!(json.contains("\"schema\":\"moteur-bench/stream/v1\""));
        assert!(json.contains("\"items_per_sec\""));
        assert!(json.contains("\"pipeline_peak_bytes\""));
        assert!(json.contains("\"eager_projected_bytes\""));
        let human = render_stream(&report);
        assert!(human.contains("stream campaign"));
        assert!(human.contains("items/s"));
    }

    #[test]
    fn zero_shapes_are_rejected() {
        for spec in [
            StreamSpec {
                n_items: 0,
                ..quick_spec()
            },
            StreamSpec {
                port_capacity: 0,
                ..quick_spec()
            },
            StreamSpec {
                eager_items: 0,
                ..quick_spec()
            },
        ] {
            assert!(run_stream(&spec).is_err());
        }
    }
}
