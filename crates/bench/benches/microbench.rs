//! Criterion micro-benchmarks for the performance-critical kernels:
//! the XML parser, the streaming iteration strategies, the simulator's
//! event loop, the enactor on an ideal backend, the §3.5 model, and the
//! registration numerics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_xml(c: &mut Criterion) {
    let fig8 = moteur_wrapper::crest_lines_example().to_xml().to_pretty_string();
    c.bench_function("xml/parse_fig8_descriptor", |b| {
        b.iter(|| moteur_xml::parse(black_box(&fig8)).unwrap())
    });
    c.bench_function("xml/write_fig8_descriptor", |b| {
        let doc = moteur_xml::parse(&fig8).unwrap();
        b.iter(|| black_box(&doc).to_pretty_string())
    });
}

fn bench_iterate(c: &mut Criterion) {
    use moteur::{DataValue, IterationStrategy, MatchEngine, Token};
    let tokens: Vec<Token> = (0..512)
        .map(|i| Token::from_source("s", i, DataValue::Num(i as f64)))
        .collect();
    c.bench_function("iterate/dot_512_pairs", |b| {
        b.iter_batched(
            || MatchEngine::new(IterationStrategy::Dot, 2),
            |mut e| {
                let mut emitted = 0;
                for t in &tokens {
                    emitted += e.push(0, t.clone()).len();
                    emitted += e.push(1, t.clone()).len();
                }
                black_box(emitted)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("iterate/cross_64x64", |b| {
        b.iter_batched(
            || MatchEngine::new(IterationStrategy::Cross, 2),
            |mut e| {
                let mut emitted = 0;
                for t in tokens.iter().take(64) {
                    emitted += e.push(0, t.clone()).len();
                    emitted += e.push(1, t.clone()).len();
                }
                black_box(emitted)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gridsim(c: &mut Criterion) {
    use moteur_gridsim::{GridConfig, GridJobSpec, GridSim};
    c.bench_function("gridsim/100_jobs_egee", |b| {
        b.iter(|| {
            let mut sim = GridSim::new(GridConfig::egee_2006(), 7);
            for i in 0..100 {
                sim.submit(
                    GridJobSpec::new(format!("j{i}"), 120.0)
                        .with_files(vec![7_864_320, 7_864_320], vec![400_000]),
                );
            }
            let mut n = 0;
            while sim.next_completion().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_enactor(c: &mut Criterion) {
    use moteur::prelude::*;
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};
    let pass = |name: &str| ExecutableDescriptor {
        executable: FileItem { name: name.into(), access: AccessMethod::Local, value: name.into() },
        inputs: vec![InputSlot { name: "in".into(), option: "-i".into(), access: Some(AccessMethod::Gfn) }],
        outputs: vec![OutputSlot { name: "out".into(), option: "-o".into(), access: AccessMethod::Gfn }],
        sandboxes: vec![],
    };
    let mut wf = Workflow::new("chain");
    let src = wf.add_source("source");
    let mut prev = src;
    for i in 0..5 {
        let svc = wf.add_service(
            format!("S{i}").as_str(),
            &["in"],
            &["out"],
            ServiceBinding::descriptor(pass(&format!("S{i}")), ServiceProfile::new(10.0)),
        );
        wf.connect(prev, "out", svc, "in").unwrap();
        prev = svc;
    }
    let sink = wf.add_sink("sink");
    wf.connect(prev, "out", sink, "in").unwrap();
    let inputs = InputData::new().set(
        "source",
        (0..50).map(|j| DataValue::File { gfn: format!("gfn://{j}"), bytes: 0 }).collect(),
    );
    c.bench_function("enactor/5x50_virtual_dsp", |b| {
        b.iter(|| {
            let mut backend = VirtualBackend::new();
            black_box(run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap())
        })
    });
    c.bench_function("enactor/grouping_transform_bronze", |b| {
        let bronze = moteur_bench::bronze_workflow();
        b.iter(|| moteur::group_workflow(black_box(&bronze)).unwrap())
    });
}

fn bench_model(c: &mut Criterion) {
    use moteur::TimeMatrix;
    let t = TimeMatrix::from_fn(5, 500, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64);
    c.bench_function("model/sigma_sp_5x500", |b| b.iter(|| black_box(&t).sigma_sp()));
}

fn bench_registration(c: &mut Criterion) {
    use moteur_registration::prelude::*;
    use moteur_registration::{fit_rigid, SmallRng};
    let mut rng = SmallRng::new(1);
    let pts: Vec<Vec3> = (0..200)
        .map(|_| Vec3::new(rng.range(-20.0, 20.0), rng.range(-20.0, 20.0), rng.range(-20.0, 20.0)))
        .collect();
    let truth = RigidTransform::from_params(0.1, -0.05, 0.07, 1.0, 2.0, -0.5);
    let pairs: Vec<(Vec3, Vec3)> = pts.iter().map(|&p| (p, truth.apply(p))).collect();
    c.bench_function("registration/fit_rigid_200", |b| {
        b.iter(|| fit_rigid(black_box(&pairs)).unwrap())
    });
    let cfg = PhantomConfig { nx: 24, ny: 24, nz: 12, noise: 1.0, lesions: 3 };
    c.bench_function("registration/phantom_24x24x12", |b| {
        b.iter(|| brain_phantom(black_box(&cfg), 5))
    });
    let vol = brain_phantom(&cfg, 5);
    c.bench_function("registration/ssd_similarity", |b| {
        b.iter(|| {
            moteur_registration::similarity_ssd(
                black_box(&vol),
                black_box(&vol),
                RigidTransform::from_params(0.01, 0.0, 0.0, 0.5, 0.0, 0.0),
                2,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_xml, bench_iterate, bench_gridsim, bench_enactor, bench_model, bench_registration
}
criterion_main!(benches);
