//! Micro-benchmarks for the performance-critical kernels: the XML
//! parser, the streaming iteration strategies, the simulator's event
//! loop, the enactor on an ideal backend, the §3.5 model, and the
//! registration numerics.
//!
//! Dependency-free harness (`harness = false`): each benchmark is
//! warmed up, then timed with `std::time::Instant` over enough
//! iterations to fill the measurement window, reporting mean time per
//! iteration. Run with `cargo bench -p moteur-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_secs(2);

/// Run `f` repeatedly for the warm-up then measurement window and print
/// the mean per-iteration time.
fn bench(name: &str, mut f: impl FnMut()) {
    let warm_until = Instant::now() + WARMUP;
    while Instant::now() < warm_until {
        f();
    }
    let started = Instant::now();
    let mut iters = 0u64;
    while started.elapsed() < MEASURE {
        f();
        iters += 1;
    }
    let per_iter = started.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter ({iters} iters)");
}

fn bench_xml() {
    let fig8 = moteur_wrapper::crest_lines_example()
        .to_xml()
        .to_pretty_string();
    bench("xml/parse_fig8_descriptor", || {
        black_box(moteur_xml::parse(black_box(&fig8)).unwrap());
    });
    let doc = moteur_xml::parse(&fig8).unwrap();
    bench("xml/write_fig8_descriptor", || {
        black_box(black_box(&doc).to_pretty_string());
    });
}

fn bench_iterate() {
    use moteur::{DataValue, IterationStrategy, MatchEngine, Token};
    let tokens: Vec<Token> = (0..512)
        .map(|i| Token::from_source("s", i, DataValue::Num(i as f64)))
        .collect();
    bench("iterate/dot_512_pairs", || {
        let mut e = MatchEngine::new(IterationStrategy::Dot, 2);
        let mut emitted = 0;
        for t in &tokens {
            emitted += e.push(0, t.clone()).len();
            emitted += e.push(1, t.clone()).len();
        }
        black_box(emitted);
    });
    bench("iterate/cross_64x64", || {
        let mut e = MatchEngine::new(IterationStrategy::Cross, 2);
        let mut emitted = 0;
        for t in tokens.iter().take(64) {
            emitted += e.push(0, t.clone()).len();
            emitted += e.push(1, t.clone()).len();
        }
        black_box(emitted);
    });
}

fn bench_gridsim() {
    use moteur_gridsim::{GridConfig, GridJobSpec, GridSim};
    bench("gridsim/100_jobs_egee", || {
        let mut sim = GridSim::new(GridConfig::egee_2006(), 7);
        for i in 0..100 {
            sim.submit(
                GridJobSpec::new(format!("j{i}"), 120.0)
                    .with_files(vec![7_864_320, 7_864_320], vec![400_000]),
            );
        }
        let mut n = 0;
        while sim.next_completion().is_some() {
            n += 1;
        }
        black_box(n);
    });
}

fn bench_enactor() {
    use moteur::prelude::*;
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};
    let pass = |name: &str| ExecutableDescriptor {
        executable: FileItem {
            name: name.into(),
            access: AccessMethod::Local,
            value: name.into(),
        },
        inputs: vec![InputSlot {
            name: "in".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: None,
        }],
        outputs: vec![OutputSlot {
            name: "out".into(),
            option: "-o".into(),
            access: AccessMethod::Gfn,
        }],
        sandboxes: vec![],
        nondeterministic: false,
    };
    let mut wf = Workflow::new("chain");
    let src = wf.add_source("source");
    let mut prev = src;
    for i in 0..5 {
        let svc = wf.add_service(
            format!("S{i}").as_str(),
            &["in"],
            &["out"],
            ServiceBinding::descriptor(pass(&format!("S{i}")), ServiceProfile::new(10.0)),
        );
        wf.connect(prev, "out", svc, "in").unwrap();
        prev = svc;
    }
    let sink = wf.add_sink("sink");
    wf.connect(prev, "out", sink, "in").unwrap();
    let inputs = InputData::new().set(
        "source",
        (0..50)
            .map(|j| DataValue::File {
                gfn: format!("gfn://{j}"),
                bytes: 0,
            })
            .collect(),
    );
    bench("enactor/5x50_virtual_dsp", || {
        let mut backend = VirtualBackend::new();
        black_box(run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap());
    });
    let bronze = moteur_bench::bronze_workflow();
    bench("enactor/grouping_transform_bronze", || {
        black_box(moteur::group_workflow(black_box(&bronze)).unwrap());
    });
}

fn bench_model() {
    use moteur::TimeMatrix;
    let t = TimeMatrix::from_fn(5, 500, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64);
    bench("model/sigma_sp_5x500", || {
        black_box(black_box(&t).sigma_sp());
    });
}

fn bench_registration() {
    use moteur_registration::prelude::*;
    use moteur_registration::{fit_rigid, SmallRng};
    let mut rng = SmallRng::new(1);
    let pts: Vec<Vec3> = (0..200)
        .map(|_| {
            Vec3::new(
                rng.range(-20.0, 20.0),
                rng.range(-20.0, 20.0),
                rng.range(-20.0, 20.0),
            )
        })
        .collect();
    let truth = RigidTransform::from_params(0.1, -0.05, 0.07, 1.0, 2.0, -0.5);
    let pairs: Vec<(Vec3, Vec3)> = pts.iter().map(|&p| (p, truth.apply(p))).collect();
    bench("registration/fit_rigid_200", || {
        black_box(fit_rigid(black_box(&pairs)).unwrap());
    });
    let cfg = PhantomConfig {
        nx: 24,
        ny: 24,
        nz: 12,
        noise: 1.0,
        lesions: 3,
    };
    bench("registration/phantom_24x24x12", || {
        black_box(brain_phantom(black_box(&cfg), 5));
    });
    let vol = brain_phantom(&cfg, 5);
    bench("registration/ssd_similarity", || {
        black_box(moteur_registration::similarity_ssd(
            black_box(&vol),
            black_box(&vol),
            RigidTransform::from_params(0.01, 0.0, 0.0, 0.5, 0.0, 0.0),
            2,
        ));
    });
}

fn main() {
    // `cargo bench -- <filter>` runs only benchmarks whose group name
    // contains the filter substring.
    let filter = std::env::args().nth(1).unwrap_or_default();
    let groups: [(&str, fn()); 6] = [
        ("xml", bench_xml),
        ("iterate", bench_iterate),
        ("gridsim", bench_gridsim),
        ("enactor", bench_enactor),
        ("model", bench_model),
        ("registration", bench_registration),
    ];
    for (name, f) in groups {
        if filter.is_empty() || name.contains(&filter) {
            f();
        }
    }
}
