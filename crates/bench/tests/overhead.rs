//! The profiler's cost contract on the bronze bench: enabling the
//! scoped timers must not slow the enactor by more than 5 %.
//!
//! Wall-clock comparisons on shared CI hosts are noisy, so both
//! configurations are measured as best-of-N interleaved runs (the
//! minimum is robust against scheduler preemption) and the comparison
//! retries a few times before failing.

use moteur::{run_observed, EnactorConfig, Obs, Prof, SimBackend};
use moteur_bench::{bronze_chain_inputs, bronze_chain_workflow};
use moteur_gridsim::GridConfig;
use std::time::Instant;

/// One bronze-chain campaign; returns the host wall seconds.
fn one_run(prof: Prof) -> f64 {
    let workflow = bronze_chain_workflow();
    let inputs = bronze_chain_inputs(60);
    let obs = Obs::off().with_prof(prof);
    let mut backend = SimBackend::with_obs(GridConfig::ideal(), 2006, &obs);
    let config = EnactorConfig::sp_dp().with_seed(2006);
    let start = Instant::now();
    let result = run_observed(&workflow, &inputs, config, &mut backend, obs).unwrap();
    assert_eq!(result.jobs_submitted, 300, "5 services x 60 items");
    start.elapsed().as_secs_f64()
}

#[test]
fn enabled_profiler_costs_under_five_percent_on_the_bronze_bench() {
    const ROUNDS: usize = 5;
    const ATTEMPTS: usize = 3;
    // Warm-up: fault the workflow parse, allocator arenas and code
    // pages out of the measurement.
    one_run(Prof::off());
    one_run(Prof::enabled());
    let mut overhead = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let mut best_off = f64::INFINITY;
        let mut best_on = f64::INFINITY;
        for _ in 0..ROUNDS {
            best_off = best_off.min(one_run(Prof::off()));
            best_on = best_on.min(one_run(Prof::enabled()));
        }
        overhead = (best_on - best_off) / best_off;
        if overhead < 0.05 {
            return;
        }
        eprintln!(
            "attempt {attempt}: profiler overhead {:.1}% (off {best_off:.4}s, on {best_on:.4}s)",
            overhead * 100.0
        );
    }
    panic!(
        "profiler overhead {:.1}% exceeds the 5% budget",
        overhead * 100.0
    );
}
