//! Scale-campaign integration with the counting allocator installed:
//! the allocation columns carry real numbers here, so this harness can
//! pin the event loop's per-event allocation rate — the regression
//! assertion for the queue-churn fixes (buffer reuse in `submit` /
//! `on_completion_delivered`, pre-sized event queue).

#[global_allocator]
static ALLOC: moteur_prof::alloc::CountingAlloc = moteur_prof::alloc::CountingAlloc;

use moteur_bench::gate::{check_scale, DEFAULT_THRESHOLD};
use moteur_bench::scale::{render_scale_json, run_scale, ScaleSpec, ALLOCS_PER_EVENT_BUDGET};

fn quick_spec() -> ScaleSpec {
    ScaleSpec {
        target_events: 100_000,
        enact_jobs: 250,
        seed: 2006,
    }
}

#[test]
fn simulator_allocation_rate_stays_inside_the_budget() {
    let report = run_scale(&quick_spec()).unwrap();
    assert!(
        report.alloc_installed,
        "this harness installs the allocator"
    );
    assert!(report.peak_alloc_bytes > 0);
    assert!(
        report.allocs_per_event <= ALLOCS_PER_EVENT_BUDGET,
        "event loop allocates {:.2}/event, budget {ALLOCS_PER_EVENT_BUDGET}",
        report.allocs_per_event
    );
    // The steady-state loop reuses its buffers: drained job records are
    // swapped out rather than cloned, submissions move their name into
    // the record, and the heap is pre-sized. Averaged over 10^5 events
    // that keeps the rate below one allocation per event; per-event
    // cloning anywhere on the hot path pushes it well above 1.
    assert!(
        report.allocs_per_event < 1.0,
        "event-queue churn crept back in: {:.2} allocs/event",
        report.allocs_per_event
    );
    assert!(report.ok(), "{report:?}");
}

#[test]
fn fresh_scale_json_passes_its_own_gate() {
    let report = run_scale(&quick_spec()).unwrap();
    let json = render_scale_json(&report);
    let checks = check_scale(&json, Some(&json), DEFAULT_THRESHOLD).unwrap();
    // 4 absolute checks (allocator installed) + 2 baseline axes.
    assert_eq!(checks.len(), 6, "{checks:?}");
    assert!(checks.iter().all(|c| c.ok), "{checks:?}");
}
