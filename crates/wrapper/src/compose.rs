//! Virtual grouped services (paper §3.6, Fig. 7 bottom).
//!
//! Grouping merges the jobs of sequential processors into a single grid
//! job: the wrapper concatenates their command lines and runs them in
//! order on one worker. Files produced by an earlier member and
//! consumed by a later member stay on the worker's scratch space — they
//! are *not* transferred through a storage element and they cost no
//! extra submission/queuing overhead. That is the whole point of the
//! optimization: one grid overhead instead of N, and fewer transfers.

use crate::catalog::Catalog;
use crate::descriptor::ExecutableDescriptor;
use crate::error::WrapperError;
use crate::invocation::{
    command_line, push_fetch, push_item_fetch, Binding, BoundValue, JobPlan, TransferFile,
};

/// One member of a grouped job: a descriptor plus its invocation
/// binding.
#[derive(Debug, Clone)]
pub struct GroupMember {
    pub descriptor: ExecutableDescriptor,
    pub binding: Binding,
}

/// Compose a sequence of invocations into a single [`JobPlan`].
///
/// Member order must follow the data dependencies (earlier members
/// produce, later members consume). Intermediate files — outputs of one
/// member consumed by a later member — are elided from both `fetch` and
/// `store`. An intermediate that is *also* listed in
/// `external_outputs` (needed downstream of the group) is still stored.
pub fn compose_group(
    members: &[GroupMember],
    catalog: &Catalog,
    external_outputs: &[String],
) -> Result<JobPlan, WrapperError> {
    if members.is_empty() {
        return Err(WrapperError::new("cannot compose an empty group"));
    }
    let mut command_lines = Vec::with_capacity(members.len());
    let mut fetch: Vec<TransferFile> = Vec::new();
    let mut store: Vec<TransferFile> = Vec::new();
    // GFNs produced by members seen so far → available locally.
    let mut produced: std::collections::HashSet<&str> = std::collections::HashSet::new();

    for member in members {
        command_lines.push(command_line(&member.descriptor, &member.binding)?);
        push_item_fetch(&mut fetch, &member.descriptor.executable, catalog);
        for s in &member.descriptor.sandboxes {
            push_item_fetch(&mut fetch, s, catalog);
        }
        for (_, value) in &member.binding.inputs {
            if let BoundValue::File { gfn } = value {
                // Produced earlier in this group → local, no transfer.
                if !produced.contains(gfn.as_str()) {
                    push_fetch(&mut fetch, gfn.clone(), catalog.size_of(gfn));
                }
            }
        }
        for out in &member.binding.outputs {
            produced.insert(&out.gfn);
        }
    }

    // Consumers *within* the group, per GFN.
    let consumed_internally: std::collections::HashSet<&str> = members
        .iter()
        .flat_map(|m| m.binding.inputs.iter())
        .filter_map(|(_, v)| match v {
            BoundValue::File { gfn } => Some(gfn.as_str()),
            BoundValue::Value(_) => None,
        })
        .collect();

    for member in members {
        for out in &member.binding.outputs {
            let internal_only = consumed_internally.contains(out.gfn.as_str())
                && !external_outputs.iter().any(|e| e == &out.gfn);
            if !internal_only {
                push_store(&mut store, out.gfn.clone(), out.bytes);
            }
        }
    }
    Ok(JobPlan {
        command_lines,
        fetch,
        store,
    })
}

fn push_store(store: &mut Vec<TransferFile>, name: String, bytes: u64) {
    if !store.iter().any(|f| f.name == name) {
        store.push(TransferFile { name, bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{AccessMethod, FileItem, InputSlot, OutputSlot};

    /// `tool <in> -o <out>`-style single-input single-output descriptor.
    fn simple_desc(name: &str) -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: name.into(),
                access: AccessMethod::Url {
                    server: "http://host".into(),
                },
                value: name.into(),
            },
            inputs: vec![InputSlot {
                name: "in".into(),
                option: "-i".into(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            }],
            outputs: vec![OutputSlot {
                name: "out".into(),
                option: "-o".into(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: false,
        }
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("gfn://data/input.img", 7_800_000);
        c.default_size = 10_000;
        c
    }

    fn two_member_chain() -> Vec<GroupMember> {
        vec![
            GroupMember {
                descriptor: simple_desc("crestLines"),
                binding: Binding::new()
                    .bind_file("in", "gfn://data/input.img")
                    .bind_output("out", "gfn://tmp/crests.dat", 500_000),
            },
            GroupMember {
                descriptor: simple_desc("crestMatch"),
                binding: Binding::new()
                    .bind_file("in", "gfn://tmp/crests.dat")
                    .bind_output("out", "gfn://res/transfo.trf", 2_000),
            },
        ]
    }

    #[test]
    fn group_concatenates_command_lines_in_order() {
        let plan = compose_group(&two_member_chain(), &catalog(), &[]).unwrap();
        assert_eq!(plan.command_lines.len(), 2);
        assert!(plan.command_lines[0].starts_with("crestLines"));
        assert!(plan.command_lines[1].starts_with("crestMatch"));
    }

    #[test]
    fn intermediate_file_is_neither_fetched_nor_stored() {
        let plan = compose_group(&two_member_chain(), &catalog(), &[]).unwrap();
        assert!(
            !plan.fetch.iter().any(|f| f.name.contains("crests.dat")),
            "intermediate must not be staged in: {:?}",
            plan.fetch
        );
        assert!(
            !plan.store.iter().any(|f| f.name.contains("crests.dat")),
            "intermediate must not be registered: {:?}",
            plan.store
        );
        // External input fetched, final output stored.
        assert!(plan.fetch.iter().any(|f| f.name == "gfn://data/input.img"));
        assert_eq!(plan.store.len(), 1);
        assert_eq!(plan.store[0].name, "gfn://res/transfo.trf");
    }

    #[test]
    fn grouping_transfers_less_than_separate_jobs() {
        let members = two_member_chain();
        let cat = catalog();
        let grouped = compose_group(&members, &cat, &[]).unwrap();
        let separate: u64 = members
            .iter()
            .map(|m| {
                crate::invocation::plan_single(&m.descriptor, &m.binding, &cat)
                    .unwrap()
                    .fetch_bytes()
            })
            .sum();
        assert!(
            grouped.fetch_bytes() < separate,
            "grouped {} vs separate {}",
            grouped.fetch_bytes(),
            separate
        );
    }

    #[test]
    fn intermediate_needed_downstream_is_still_stored() {
        let plan = compose_group(
            &two_member_chain(),
            &catalog(),
            &["gfn://tmp/crests.dat".into()],
        )
        .unwrap();
        assert!(plan.store.iter().any(|f| f.name == "gfn://tmp/crests.dat"));
    }

    #[test]
    fn single_member_group_equals_plan_single() {
        let members = &two_member_chain()[..1];
        let cat = catalog();
        let grouped = compose_group(members, &cat, &[]).unwrap();
        let single =
            crate::invocation::plan_single(&members[0].descriptor, &members[0].binding, &cat)
                .unwrap();
        assert_eq!(grouped, single);
    }

    #[test]
    fn empty_group_is_an_error() {
        assert!(compose_group(&[], &catalog(), &[]).is_err());
    }

    #[test]
    fn shared_sandboxes_are_fetched_once() {
        let mut a = simple_desc("stepA");
        let mut b = simple_desc("stepB");
        let shared = FileItem {
            name: "lib".into(),
            access: AccessMethod::Url {
                server: "http://host".into(),
            },
            value: "libshared.so".into(),
        };
        a.sandboxes.push(shared.clone());
        b.sandboxes.push(shared);
        let members = vec![
            GroupMember {
                descriptor: a,
                binding: Binding::new()
                    .bind_file("in", "gfn://data/input.img")
                    .bind_output("out", "gfn://tmp/x", 1),
            },
            GroupMember {
                descriptor: b,
                binding: Binding::new().bind_file("in", "gfn://tmp/x").bind_output(
                    "out",
                    "gfn://res/y",
                    1,
                ),
            },
        ];
        let plan = compose_group(&members, &catalog(), &[]).unwrap();
        let lib_fetches = plan
            .fetch
            .iter()
            .filter(|f| f.name.contains("libshared"))
            .count();
        assert_eq!(lib_fetches, 1);
    }

    #[test]
    fn three_deep_chain_elides_both_intermediates() {
        let mut members = two_member_chain();
        members.push(GroupMember {
            descriptor: simple_desc("register"),
            binding: Binding::new()
                .bind_file("in", "gfn://res/transfo.trf")
                .bind_output("out", "gfn://res/final.trf", 100),
        });
        let plan = compose_group(&members, &catalog(), &[]).unwrap();
        assert_eq!(plan.store.len(), 1);
        assert_eq!(plan.store[0].name, "gfn://res/final.trf");
        assert_eq!(plan.command_lines.len(), 3);
        // Only the true external input is fetched (plus executables).
        let data_fetches: Vec<_> = plan
            .fetch
            .iter()
            .filter(|f| f.name.starts_with("gfn://"))
            .collect();
        assert_eq!(data_fetches.len(), 1);
    }
}
