//! Binding descriptor slots to concrete values and synthesising the
//! command line and transfer plan of one job.
//!
//! This is the "dynamic composition of the command line from the list
//! of parameters at the service invocation time" of paper §3.6: the
//! descriptor is static, the data values arrive with each invocation.

use crate::catalog::Catalog;
use crate::descriptor::{AccessMethod, ExecutableDescriptor};
use crate::error::WrapperError;

/// A value bound to an input slot at invocation time.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundValue {
    /// A file identified by GFN/URL, staged in before execution.
    File { gfn: String },
    /// A literal command-line parameter.
    Value(String),
}

/// An output produced by the invocation: where to register it and the
/// expected size (for the transfer model).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundOutput {
    pub slot: String,
    pub gfn: String,
    pub bytes: u64,
}

/// The per-invocation binding of a descriptor's slots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Binding {
    pub inputs: Vec<(String, BoundValue)>,
    pub outputs: Vec<BoundOutput>,
}

impl Binding {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn bind_file(mut self, slot: impl Into<String>, gfn: impl Into<String>) -> Self {
        self.inputs
            .push((slot.into(), BoundValue::File { gfn: gfn.into() }));
        self
    }

    pub fn bind_value(mut self, slot: impl Into<String>, value: impl Into<String>) -> Self {
        self.inputs
            .push((slot.into(), BoundValue::Value(value.into())));
        self
    }

    pub fn bind_output(
        mut self,
        slot: impl Into<String>,
        gfn: impl Into<String>,
        bytes: u64,
    ) -> Self {
        self.outputs.push(BoundOutput {
            slot: slot.into(),
            gfn: gfn.into(),
            bytes,
        });
        self
    }

    fn input(&self, slot: &str) -> Option<&BoundValue> {
        self.inputs.iter().find(|(n, _)| n == slot).map(|(_, v)| v)
    }

    fn output(&self, slot: &str) -> Option<&BoundOutput> {
        self.outputs.iter().find(|o| o.slot == slot)
    }
}

/// A file the job must fetch or register, with its size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferFile {
    pub name: String,
    pub bytes: u64,
}

/// Everything the generic wrapper needs to run one grid job: the
/// command line(s) to execute, the files to stage in and the outputs to
/// register afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    pub command_lines: Vec<String>,
    pub fetch: Vec<TransferFile>,
    pub store: Vec<TransferFile>,
}

impl JobPlan {
    pub fn fetch_bytes(&self) -> u64 {
        self.fetch.iter().map(|f| f.bytes).sum()
    }

    pub fn store_bytes(&self) -> u64 {
        self.store.iter().map(|f| f.bytes).sum()
    }
}

/// Local (worker-side) file name for a GFN/URL: its last path segment.
pub fn local_name(gfn: &str) -> &str {
    gfn.rsplit('/').next().unwrap_or(gfn)
}

/// Synthesise the command line for one invocation, slots in descriptor
/// order. Every slot must be bound; extra bound names are an error.
pub fn command_line(
    desc: &ExecutableDescriptor,
    binding: &Binding,
) -> Result<String, WrapperError> {
    let mut parts: Vec<String> = vec![desc.executable.value.clone()];
    for slot in &desc.inputs {
        let value = binding
            .input(&slot.name)
            .ok_or_else(|| WrapperError::new(format!("unbound input `{}`", slot.name)))?;
        let rendered = match (slot.is_file(), value) {
            (true, BoundValue::File { gfn }) => local_name(gfn).to_string(),
            (false, BoundValue::Value(v)) => v.clone(),
            (true, BoundValue::Value(_)) => {
                return Err(WrapperError::new(format!(
                    "input `{}` is a file slot but was bound to a literal value",
                    slot.name
                )))
            }
            (false, BoundValue::File { .. }) => {
                return Err(WrapperError::new(format!(
                    "input `{}` is a parameter but was bound to a file",
                    slot.name
                )))
            }
        };
        if slot.option.is_empty() {
            parts.push(rendered);
        } else {
            parts.push(slot.option.clone());
            parts.push(rendered);
        }
    }
    for slot in &desc.outputs {
        let bound = binding
            .output(&slot.name)
            .ok_or_else(|| WrapperError::new(format!("unbound output `{}`", slot.name)))?;
        if slot.option.is_empty() {
            parts.push(local_name(&bound.gfn).to_string());
        } else {
            parts.push(slot.option.clone());
            parts.push(local_name(&bound.gfn).to_string());
        }
    }
    for (name, _) in &binding.inputs {
        if desc.input(name).is_none() {
            return Err(WrapperError::new(format!(
                "binding names unknown input `{name}`"
            )));
        }
    }
    for out in &binding.outputs {
        if desc.output(&out.slot).is_none() {
            return Err(WrapperError::new(format!(
                "binding names unknown output `{}`",
                out.slot
            )));
        }
    }
    Ok(parts.join(" "))
}

/// Build the full [`JobPlan`] for one (ungrouped) invocation.
///
/// Stage-in covers the executable, every sandboxed file and every bound
/// input file; input sizes come from the `catalog`.
pub fn plan_single(
    desc: &ExecutableDescriptor,
    binding: &Binding,
    catalog: &Catalog,
) -> Result<JobPlan, WrapperError> {
    let cmd = command_line(desc, binding)?;
    let mut fetch = Vec::new();
    push_item_fetch(&mut fetch, &desc.executable, catalog);
    for s in &desc.sandboxes {
        push_item_fetch(&mut fetch, s, catalog);
    }
    for (name, value) in &binding.inputs {
        if let BoundValue::File { gfn } = value {
            // Only file slots reach here (command_line validated types).
            let _ = name;
            push_fetch(&mut fetch, gfn.clone(), catalog.size_of(gfn));
        }
    }
    let store = binding
        .outputs
        .iter()
        .map(|o| TransferFile {
            name: o.gfn.clone(),
            bytes: o.bytes,
        })
        .collect();
    Ok(JobPlan {
        command_lines: vec![cmd],
        fetch,
        store,
    })
}

pub(crate) fn push_item_fetch(
    fetch: &mut Vec<TransferFile>,
    item: &crate::descriptor::FileItem,
    catalog: &Catalog,
) {
    let name = match &item.access {
        AccessMethod::Url { server } => format!("{server}/{}", item.value),
        AccessMethod::Gfn => item.value.clone(),
        // Local files are already on the execution host: no transfer.
        AccessMethod::Local => return,
    };
    let bytes = catalog.size_of(&name);
    push_fetch(fetch, name, bytes);
}

pub(crate) fn push_fetch(fetch: &mut Vec<TransferFile>, name: String, bytes: u64) {
    if !fetch.iter().any(|f| f.name == name) {
        fetch.push(TransferFile { name, bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::crest_lines_example;

    fn binding() -> Binding {
        Binding::new()
            .bind_file("floating_image", "gfn://img/float.hdr")
            .bind_file("reference_image", "gfn://img/ref.hdr")
            .bind_value("scale", "2")
            .bind_output("crest_reference", "gfn://out/crest_ref.crest", 400_000)
            .bind_output("crest_floating", "gfn://out/crest_float.crest", 400_000)
    }

    #[test]
    fn command_line_matches_descriptor_order() {
        let cmd = command_line(&crest_lines_example(), &binding()).unwrap();
        assert_eq!(
            cmd,
            "CrestLines.pl -im1 float.hdr -im2 ref.hdr -s 2 -c1 crest_ref.crest -c2 crest_float.crest"
        );
    }

    #[test]
    fn unbound_input_is_an_error() {
        let mut b = binding();
        b.inputs.retain(|(n, _)| n != "scale");
        let err = command_line(&crest_lines_example(), &b).unwrap_err();
        assert!(err.to_string().contains("unbound input `scale`"));
    }

    #[test]
    fn unbound_output_is_an_error() {
        let mut b = binding();
        b.outputs.retain(|o| o.slot != "crest_floating");
        assert!(command_line(&crest_lines_example(), &b)
            .unwrap_err()
            .to_string()
            .contains("unbound output"));
    }

    #[test]
    fn binding_type_mismatches_are_errors() {
        let d = crest_lines_example();
        let b = binding().bind_value("floating_image", "oops");
        let mut b2 = Binding::new()
            .bind_file("floating_image", "gfn://a")
            .bind_file("reference_image", "gfn://b")
            .bind_file("scale", "gfn://c");
        b2.outputs = binding().outputs;
        // First bound value wins for a slot; rebinding same slot keeps original.
        assert!(
            command_line(&d, &b).is_ok(),
            "duplicate binding: first one is used"
        );
        assert!(command_line(&d, &b2)
            .unwrap_err()
            .to_string()
            .contains("is a parameter but was bound to a file"));
    }

    #[test]
    fn unknown_binding_names_are_rejected() {
        let b = binding().bind_value("mystery", "1");
        assert!(command_line(&crest_lines_example(), &b)
            .unwrap_err()
            .to_string()
            .contains("unknown input"));
    }

    #[test]
    fn plan_includes_executable_sandboxes_and_input_files() {
        let mut catalog = Catalog::new();
        catalog.register("gfn://img/float.hdr", 7_800_000);
        catalog.register("gfn://img/ref.hdr", 7_800_000);
        catalog.default_size = 50_000;
        let plan = plan_single(&crest_lines_example(), &binding(), &catalog).unwrap();
        assert_eq!(plan.command_lines.len(), 1);
        // 1 executable + 3 sandboxes + 2 input images.
        assert_eq!(plan.fetch.len(), 6);
        assert_eq!(plan.fetch_bytes(), 7_800_000 * 2 + 50_000 * 4);
        assert_eq!(plan.store.len(), 2);
        assert_eq!(plan.store_bytes(), 800_000);
    }

    #[test]
    fn duplicate_fetches_are_coalesced() {
        // Same file bound to both inputs: fetched once.
        let mut catalog = Catalog::new();
        catalog.register("gfn://img/same.hdr", 1000);
        let b = Binding::new()
            .bind_file("floating_image", "gfn://img/same.hdr")
            .bind_file("reference_image", "gfn://img/same.hdr")
            .bind_value("scale", "1")
            .bind_output("crest_reference", "gfn://o1", 1)
            .bind_output("crest_floating", "gfn://o2", 1);
        let plan = plan_single(&crest_lines_example(), &b, &catalog).unwrap();
        let image_fetches = plan
            .fetch
            .iter()
            .filter(|f| f.name.contains("same.hdr"))
            .count();
        assert_eq!(image_fetches, 1);
    }

    #[test]
    fn local_name_takes_last_segment() {
        assert_eq!(local_name("gfn://a/b/c.img"), "c.img");
        assert_eq!(local_name("plain.txt"), "plain.txt");
    }

    #[test]
    fn positional_slots_omit_the_option() {
        use crate::descriptor::{
            AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot,
        };
        let d = ExecutableDescriptor {
            executable: FileItem {
                name: "cat".into(),
                access: AccessMethod::Local,
                value: "cat".into(),
            },
            inputs: vec![InputSlot {
                name: "in".into(),
                option: String::new(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            }],
            outputs: vec![OutputSlot {
                name: "out".into(),
                option: String::new(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: false,
        };
        let b = Binding::new()
            .bind_file("in", "gfn://x/in.txt")
            .bind_output("out", "gfn://x/out.txt", 1);
        assert_eq!(command_line(&d, &b).unwrap(), "cat in.txt out.txt");
    }
}
