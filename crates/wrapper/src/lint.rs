//! Static checks over a single [`ExecutableDescriptor`].
//!
//! These are *lints*, not validation: [`ExecutableDescriptor::validate`]
//! rejects descriptors that cannot be represented at all (duplicate slot
//! names), while this module flags descriptors that parse fine but will
//! misbehave when the wrapper synthesises a command line. `moteur lint`
//! surfaces each finding as an `M050` diagnostic on the processor that
//! embeds the descriptor.

use crate::descriptor::ExecutableDescriptor;
use std::collections::HashMap;

/// One suspicious fact about a descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptorFinding {
    /// Slot name the finding is about, when it concerns one slot.
    pub slot: Option<String>,
    /// Human-readable statement of the problem.
    pub message: String,
}

impl DescriptorFinding {
    fn new(slot: Option<&str>, message: impl Into<String>) -> Self {
        DescriptorFinding {
            slot: slot.map(str::to_string),
            message: message.into(),
        }
    }
}

/// Lint one descriptor. An empty result means the wrapper can build an
/// unambiguous command line from it.
pub fn lint_descriptor(desc: &ExecutableDescriptor) -> Vec<DescriptorFinding> {
    let mut findings = Vec::new();

    // Two slots sharing a command-line option produce an ambiguous
    // invocation: the executable sees the same flag twice and the
    // wrapper cannot know which value belongs to which slot.
    let mut by_option: HashMap<&str, Vec<&str>> = HashMap::new();
    for slot in &desc.inputs {
        if !slot.option.is_empty() {
            by_option.entry(&slot.option).or_default().push(&slot.name);
        }
    }
    for slot in &desc.outputs {
        if !slot.option.is_empty() {
            by_option.entry(&slot.option).or_default().push(&slot.name);
        }
    }
    let mut dups: Vec<(&str, Vec<&str>)> = by_option
        .into_iter()
        .filter(|(_, slots)| slots.len() > 1)
        .collect();
    dups.sort_unstable();
    for (option, slots) in dups {
        findings.push(DescriptorFinding::new(
            None,
            format!(
                "option `{option}` is shared by slots {}: the command line is ambiguous",
                slots
                    .iter()
                    .map(|s| format!("`{s}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
    }

    // A file slot with no option has nowhere to appear on the command
    // line: the wrapper stages the file in, then never names it.
    for slot in desc.file_inputs() {
        if slot.option.is_empty() {
            findings.push(DescriptorFinding::new(
                Some(&slot.name),
                format!(
                    "file input `{}` has no command-line option: the staged file is \
                     never passed to the executable",
                    slot.name
                ),
            ));
        }
    }
    for slot in &desc.outputs {
        if slot.option.is_empty() {
            findings.push(DescriptorFinding::new(
                Some(&slot.name),
                format!(
                    "output `{}` has no command-line option: the executable is never \
                     told where to write it",
                    slot.name
                ),
            ));
        }
    }

    // A declared item size of zero is almost certainly a typo: the
    // static transfer model would treat every item on the slot as
    // free, silently hiding the edge from `moteur plan`.
    for slot in &desc.inputs {
        if slot.bytes == Some(0) {
            findings.push(DescriptorFinding::new(
                Some(&slot.name),
                format!(
                    "input `{}` declares `bytes=\"0\"`: the static transfer model \
                     would treat its data as free",
                    slot.name
                ),
            ));
        }
    }

    // An executable that declares no outputs produces nothing to
    // register — downstream services can never consume its results.
    if desc.outputs.is_empty() {
        findings.push(DescriptorFinding::new(
            None,
            format!(
                "descriptor `{}` declares no outputs: the job produces nothing to register",
                desc.executable.name
            ),
        ));
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{crest_lines_example, AccessMethod, FileItem, InputSlot, OutputSlot};

    fn minimal() -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: "tool".into(),
                access: AccessMethod::Local,
                value: "tool".into(),
            },
            inputs: vec![],
            outputs: vec![OutputSlot {
                name: "out".into(),
                option: "-o".into(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: false,
        }
    }

    #[test]
    fn fig8_descriptor_is_clean() {
        assert!(lint_descriptor(&crest_lines_example()).is_empty());
    }

    #[test]
    fn duplicate_option_is_flagged_once_per_option() {
        let mut d = minimal();
        d.inputs = vec![
            InputSlot {
                name: "a".into(),
                option: "-x".into(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            },
            InputSlot {
                name: "b".into(),
                option: "-x".into(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            },
        ];
        let findings = lint_descriptor(&d);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`-x`"));
        assert!(findings[0].message.contains("`a`") && findings[0].message.contains("`b`"));
    }

    #[test]
    fn optionless_file_slots_are_flagged_but_parameters_are_not() {
        let mut d = minimal();
        d.inputs = vec![
            InputSlot {
                name: "img".into(),
                option: String::new(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            },
            InputSlot {
                name: "scale".into(),
                option: String::new(),
                access: None, // positional parameter: legal
                bytes: None,
            },
        ];
        let findings = lint_descriptor(&d);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slot.as_deref(), Some("img"));
    }

    #[test]
    fn zero_byte_item_size_is_flagged() {
        let mut d = minimal();
        d.inputs = vec![InputSlot {
            name: "img".into(),
            option: "-i".into(),
            access: Some(AccessMethod::Gfn),
            bytes: Some(0),
        }];
        let findings = lint_descriptor(&d);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slot.as_deref(), Some("img"));
        assert!(findings[0].message.contains("bytes=\"0\""));
    }

    #[test]
    fn missing_outputs_are_flagged() {
        let mut d = minimal();
        d.outputs.clear();
        let findings = lint_descriptor(&d);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no outputs"));
    }
}
