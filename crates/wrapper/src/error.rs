//! Error type for descriptor parsing, binding and composition.

use std::fmt;

/// Error raised by the wrapper layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperError {
    pub message: String,
}

impl WrapperError {
    pub fn new(message: impl Into<String>) -> Self {
        WrapperError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wrapper error: {}", self.message)
    }
}

impl std::error::Error for WrapperError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        assert_eq!(WrapperError::new("boom").to_string(), "wrapper error: boom");
    }
}
