//! A replica-catalog stand-in: maps Grid File Names (and URLs) to file
//! sizes so the transfer model knows what a stage-in costs.
//!
//! The real EGEE data-management stack resolves a GFN to physical
//! replicas on storage elements; for the simulation all we need is the
//! existence check and the size.

use std::collections::HashMap;

/// File-size catalog keyed by GFN/URL string.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    sizes: HashMap<String, u64>,
    /// Size assumed for files never registered (e.g. small scripts
    /// fetched from a web server).
    pub default_size: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            sizes: HashMap::new(),
            default_size: 64 * 1024,
        }
    }

    /// Register (or update) a file's size.
    pub fn register(&mut self, name: impl Into<String>, bytes: u64) {
        self.sizes.insert(name.into(), bytes);
    }

    pub fn contains(&self, name: &str) -> bool {
        self.sizes.contains_key(name)
    }

    /// Size of `name`, falling back to `default_size` when unknown.
    pub fn size_of(&self, name: &str) -> u64 {
        self.sizes.get(name).copied().unwrap_or(self.default_size)
    }

    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("gfn://images/patient1.hdr", 7_800_000);
        assert!(c.contains("gfn://images/patient1.hdr"));
        assert_eq!(c.size_of("gfn://images/patient1.hdr"), 7_800_000);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_files_use_default_size() {
        let mut c = Catalog::new();
        c.default_size = 1234;
        assert_eq!(c.size_of("nope"), 1234);
        assert!(!c.contains("nope"));
    }

    #[test]
    fn reregistering_updates_size() {
        let mut c = Catalog::new();
        c.register("f", 10);
        c.register("f", 20);
        assert_eq!(c.size_of("f"), 20);
        assert_eq!(c.len(), 1);
    }
}
