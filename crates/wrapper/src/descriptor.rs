//! The executable-descriptor language of paper Fig. 8.
//!
//! A descriptor tells the generic wrapper service everything it needs to
//! invoke a legacy executable: where to fetch the binary, which
//! sandboxed side files it needs, and how each input/parameter/output
//! maps to a command-line option. Input *files* carry an access method
//! but no value (values are bound at invocation time — the service-based
//! "dynamic declaration" of data); *parameters* are inputs without an
//! access method.

use crate::error::WrapperError;
use moteur_xml::Element;

/// How a file is located and fetched/registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessMethod {
    /// Downloadable from a server (`<access type="URL"><path value=…/></access>`).
    Url { server: String },
    /// A Grid File Name resolved through the replica catalog.
    Gfn,
    /// A plain local file on the execution host.
    Local,
}

impl AccessMethod {
    fn parse(el: &Element) -> Result<AccessMethod, WrapperError> {
        match el.attr("type") {
            Some("URL") => {
                let server = el
                    .child("path")
                    .and_then(|p| p.attr("value"))
                    .ok_or_else(|| WrapperError::new("URL access requires <path value=...>"))?;
                Ok(AccessMethod::Url {
                    server: server.to_string(),
                })
            }
            Some("GFN") => Ok(AccessMethod::Gfn),
            Some("LFN") | Some("Local") | Some("local") => Ok(AccessMethod::Local),
            Some(other) => Err(WrapperError::new(format!("unknown access type `{other}`"))),
            None => Err(WrapperError::new("<access> requires a type attribute")),
        }
    }

    fn to_xml(&self) -> Element {
        match self {
            AccessMethod::Url { server } => Element::new("access")
                .with_attr("type", "URL")
                .with_child(Element::new("path").with_attr("value", server.clone())),
            AccessMethod::Gfn => Element::new("access").with_attr("type", "GFN"),
            AccessMethod::Local => Element::new("access").with_attr("type", "Local"),
        }
    }
}

/// A concrete file shipped with the job: the executable itself or a
/// sandboxed side file (script, dynamic library…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileItem {
    /// Logical name (the `name` attribute).
    pub name: String,
    pub access: AccessMethod,
    /// The file name to fetch (the `<value value=…/>` child).
    pub value: String,
}

/// An input slot: a file (has an access method) or a parameter (no
/// access method, passed literally on the command line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSlot {
    pub name: String,
    /// Command-line option, e.g. `-im1`. Empty means positional.
    pub option: String,
    /// `None` for value parameters.
    pub access: Option<AccessMethod>,
    /// Declared per-item size in bytes (`bytes="…"` on `<input>`) — the
    /// expected size of each file arriving on this slot, consumed by
    /// the static transfer model when the producer declares nothing.
    pub bytes: Option<u64>,
}

impl InputSlot {
    pub fn is_file(&self) -> bool {
        self.access.is_some()
    }
}

/// An output slot; always a file with a registration method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSlot {
    pub name: String,
    pub option: String,
    pub access: AccessMethod,
}

/// A full executable descriptor (paper Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutableDescriptor {
    pub executable: FileItem,
    pub inputs: Vec<InputSlot>,
    pub outputs: Vec<OutputSlot>,
    pub sandboxes: Vec<FileItem>,
    /// The executable's outputs are not a pure function of its inputs
    /// (wall-clock stamps, random seeds, hardware-dependent rounding…).
    /// Declared with `nondeterministic="true"` on `<executable>`; such
    /// services are never memoized by the data manager.
    pub nondeterministic: bool,
}

impl ExecutableDescriptor {
    /// Parse the `<description><executable …>` document.
    pub fn from_xml(root: &Element) -> Result<Self, WrapperError> {
        let exe_el = if root.name == "executable" {
            root
        } else {
            root.child("executable")
                .ok_or_else(|| WrapperError::new("missing <executable> element"))?
        };
        let name = exe_el
            .attr("name")
            .ok_or_else(|| WrapperError::new("<executable> requires a name"))?
            .to_string();
        let access = exe_el
            .child("access")
            .map(AccessMethod::parse)
            .transpose()?
            .unwrap_or(AccessMethod::Local);
        let value = exe_el
            .child("value")
            .and_then(|v| v.attr("value"))
            .map_or_else(|| name.clone(), str::to_string);
        let executable = FileItem {
            name,
            access,
            value,
        };

        let mut inputs = Vec::new();
        for el in exe_el.children_named("input") {
            let bytes = match el.attr("bytes") {
                None => None,
                Some(v) => Some(v.parse::<u64>().map_err(|_| {
                    WrapperError::new(format!("<input> `bytes` is not an integer: `{v}`"))
                })?),
            };
            inputs.push(InputSlot {
                name: required_name(el, "input")?,
                option: el.attr("option").unwrap_or_default().to_string(),
                access: el.child("access").map(AccessMethod::parse).transpose()?,
                bytes,
            });
        }
        let mut outputs = Vec::new();
        for el in exe_el.children_named("output") {
            outputs.push(OutputSlot {
                name: required_name(el, "output")?,
                option: el.attr("option").unwrap_or_default().to_string(),
                access: el
                    .child("access")
                    .map(AccessMethod::parse)
                    .transpose()?
                    .unwrap_or(AccessMethod::Gfn),
            });
        }
        let mut sandboxes = Vec::new();
        for el in exe_el.children_named("sandbox") {
            let name = required_name(el, "sandbox")?;
            let access = el
                .child("access")
                .map(AccessMethod::parse)
                .transpose()?
                .ok_or_else(|| WrapperError::new("<sandbox> requires an <access>"))?;
            let value = el
                .child("value")
                .and_then(|v| v.attr("value"))
                .map_or_else(|| name.clone(), str::to_string);
            sandboxes.push(FileItem {
                name,
                access,
                value,
            });
        }

        let d = ExecutableDescriptor {
            executable,
            inputs,
            outputs,
            sandboxes,
            nondeterministic: exe_el.attr("nondeterministic") == Some("true"),
        };
        d.validate()?;
        Ok(d)
    }

    /// Parse from descriptor XML text.
    pub fn parse(text: &str) -> Result<Self, WrapperError> {
        let root = moteur_xml::parse(text)
            .map_err(|e| WrapperError::new(format!("descriptor XML: {e}")))?;
        Self::from_xml(&root)
    }

    /// Serialise back to the Fig. 8 XML dialect.
    pub fn to_xml(&self) -> Element {
        let mut exe = Element::new("executable").with_attr("name", self.executable.name.clone());
        // Attribute only when set: deterministic descriptors keep
        // byte-identical round-trips with pre-existing documents.
        if self.nondeterministic {
            exe = exe.with_attr("nondeterministic", "true");
        }
        exe = exe
            .with_child(self.executable.access.to_xml())
            .with_child(Element::new("value").with_attr("value", self.executable.value.clone()));
        for i in &self.inputs {
            let mut el = Element::new("input")
                .with_attr("name", i.name.clone())
                .with_attr("option", i.option.clone());
            // Attribute only when set, like `nondeterministic` above.
            if let Some(b) = i.bytes {
                el = el.with_attr("bytes", b.to_string());
            }
            if let Some(a) = &i.access {
                el = el.with_child(a.to_xml());
            }
            exe = exe.with_child(el);
        }
        for o in &self.outputs {
            exe = exe.with_child(
                Element::new("output")
                    .with_attr("name", o.name.clone())
                    .with_attr("option", o.option.clone())
                    .with_child(o.access.to_xml()),
            );
        }
        for s in &self.sandboxes {
            exe = exe.with_child(
                Element::new("sandbox")
                    .with_attr("name", s.name.clone())
                    .with_child(s.access.to_xml())
                    .with_child(Element::new("value").with_attr("value", s.value.clone())),
            );
        }
        Element::new("description").with_child(exe)
    }

    /// Slot-name uniqueness and basic well-formedness.
    pub fn validate(&self) -> Result<(), WrapperError> {
        let mut seen = std::collections::HashSet::new();
        for n in self
            .inputs
            .iter()
            .map(|i| &i.name)
            .chain(self.outputs.iter().map(|o| &o.name))
        {
            if !seen.insert(n.clone()) {
                return Err(WrapperError::new(format!("duplicate slot name `{n}`")));
            }
        }
        if self.executable.value.is_empty() {
            return Err(WrapperError::new("executable value must not be empty"));
        }
        Ok(())
    }

    pub fn input(&self, name: &str) -> Option<&InputSlot> {
        self.inputs.iter().find(|i| i.name == name)
    }

    pub fn output(&self, name: &str) -> Option<&OutputSlot> {
        self.outputs.iter().find(|o| o.name == name)
    }

    /// Input slots that are files (need staging).
    pub fn file_inputs(&self) -> impl Iterator<Item = &InputSlot> {
        self.inputs.iter().filter(|i| i.is_file())
    }

    /// Input slots that are plain parameters.
    pub fn parameters(&self) -> impl Iterator<Item = &InputSlot> {
        self.inputs.iter().filter(|i| !i.is_file())
    }
}

fn required_name(el: &Element, what: &str) -> Result<String, WrapperError> {
    el.attr("name")
        .map(str::to_string)
        .ok_or_else(|| WrapperError::new(format!("<{what}> requires a name")))
}

/// The paper's Fig. 8 example: the `crestLines` service descriptor.
pub fn crest_lines_example() -> ExecutableDescriptor {
    ExecutableDescriptor {
        executable: FileItem {
            name: "CrestLines.pl".into(),
            access: AccessMethod::Url {
                server: "http://colors.unice.fr".into(),
            },
            value: "CrestLines.pl".into(),
        },
        inputs: vec![
            InputSlot {
                name: "floating_image".into(),
                option: "-im1".into(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            },
            InputSlot {
                name: "reference_image".into(),
                option: "-im2".into(),
                access: Some(AccessMethod::Gfn),
                bytes: None,
            },
            InputSlot {
                name: "scale".into(),
                option: "-s".into(),
                access: None,
                bytes: None,
            },
        ],
        outputs: vec![
            OutputSlot {
                name: "crest_reference".into(),
                option: "-c1".into(),
                access: AccessMethod::Gfn,
            },
            OutputSlot {
                name: "crest_floating".into(),
                option: "-c2".into(),
                access: AccessMethod::Gfn,
            },
        ],
        sandboxes: vec![
            FileItem {
                name: "convert8bits".into(),
                access: AccessMethod::Url {
                    server: "http://colors.unice.fr".into(),
                },
                value: "Convert8bits.pl".into(),
            },
            FileItem {
                name: "copy".into(),
                access: AccessMethod::Url {
                    server: "http://colors.unice.fr".into(),
                },
                value: "copy".into(),
            },
            FileItem {
                name: "cmatch".into(),
                access: AccessMethod::Url {
                    server: "http://colors.unice.fr".into(),
                },
                value: "cmatch".into(),
            },
        ],
        nondeterministic: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG8: &str = r#"
<description>
  <executable name="CrestLines.pl">
    <access type="URL"><path value="http://colors.unice.fr"/></access>
    <value value="CrestLines.pl"/>
    <input name="floating_image" option="-im1"><access type="GFN"/></input>
    <input name="reference_image" option="-im2"><access type="GFN"/></input>
    <input name="scale" option="-s"/>
    <output name="crest_reference" option="-c1"><access type="GFN"/></output>
    <output name="crest_floating" option="-c2"><access type="GFN"/></output>
    <sandbox name="convert8bits">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="Convert8bits.pl"/>
    </sandbox>
    <sandbox name="copy">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="copy"/>
    </sandbox>
    <sandbox name="cmatch">
      <access type="URL"><path value="http://colors.unice.fr"/></access>
      <value value="cmatch"/>
    </sandbox>
  </executable>
</description>"#;

    #[test]
    fn parses_the_papers_fig8_descriptor() {
        let d = ExecutableDescriptor::parse(FIG8).unwrap();
        assert_eq!(d, crest_lines_example());
    }

    #[test]
    fn fig8_round_trips_through_xml() {
        let d = crest_lines_example();
        let text = d.to_xml().to_pretty_string();
        assert_eq!(ExecutableDescriptor::parse(&text).unwrap(), d);
    }

    #[test]
    fn file_inputs_vs_parameters_split() {
        let d = crest_lines_example();
        let files: Vec<_> = d.file_inputs().map(|i| i.name.as_str()).collect();
        let params: Vec<_> = d.parameters().map(|i| i.name.as_str()).collect();
        assert_eq!(files, ["floating_image", "reference_image"]);
        assert_eq!(params, ["scale"]);
    }

    #[test]
    fn rejects_duplicate_slot_names() {
        let bad = r#"<description><executable name="x">
            <value value="x"/>
            <input name="a" option="-a"/>
            <output name="a" option="-o"><access type="GFN"/></output>
        </executable></description>"#;
        assert!(ExecutableDescriptor::parse(bad)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn rejects_missing_executable() {
        assert!(ExecutableDescriptor::parse("<description/>").is_err());
    }

    #[test]
    fn rejects_unknown_access_type() {
        let bad = r#"<description><executable name="x"><value value="x"/>
            <input name="a" option="-a"><access type="FTP"/></input>
        </executable></description>"#;
        assert!(ExecutableDescriptor::parse(bad).is_err());
    }

    #[test]
    fn url_access_requires_path() {
        let bad = r#"<description><executable name="x">
            <access type="URL"/><value value="x"/>
        </executable></description>"#;
        assert!(ExecutableDescriptor::parse(bad).is_err());
    }

    #[test]
    fn executable_value_defaults_to_name() {
        let d =
            ExecutableDescriptor::parse(r#"<description><executable name="tool"/></description>"#)
                .unwrap();
        assert_eq!(d.executable.value, "tool");
        assert_eq!(d.executable.access, AccessMethod::Local);
    }

    #[test]
    fn nondeterministic_attribute_round_trips() {
        let text = r#"<description><executable name="x" nondeterministic="true">
            <value value="x"/>
        </executable></description>"#;
        let d = ExecutableDescriptor::parse(text).unwrap();
        assert!(d.nondeterministic);
        let again = ExecutableDescriptor::parse(&d.to_xml().to_pretty_string()).unwrap();
        assert!(again.nondeterministic);
        // Deterministic descriptors never grow the attribute.
        let det = crest_lines_example();
        assert!(!det.to_xml().to_pretty_string().contains("nondeterministic"));
    }

    #[test]
    fn slot_lookup_helpers() {
        let d = crest_lines_example();
        assert!(d.input("scale").is_some());
        assert!(d.input("nope").is_none());
        assert_eq!(d.output("crest_floating").unwrap().option, "-c2");
    }
}
