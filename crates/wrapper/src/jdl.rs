//! JDL (Job Description Language) rendering.
//!
//! The paper contrasts the service approach with the *task-based*
//! interface of LCG2/gLite, where each job is a static JDL document
//! naming the executable, sandboxes and data. The wrapper can render
//! any [`JobPlan`] as the equivalent JDL — handy for eyeballing what a
//! virtual grouped service actually submits, and a faithful artifact of
//! the 2006 middleware this reproduction models.

use crate::invocation::JobPlan;
use std::fmt::Write as _;

/// Options for JDL rendering.
#[derive(Debug, Clone)]
pub struct JdlOptions {
    /// The virtual organisation name (`Requirements`/accounting).
    pub virtual_organisation: String,
    /// Number of resubmissions the middleware may perform.
    pub retry_count: u32,
}

impl Default for JdlOptions {
    fn default() -> Self {
        JdlOptions {
            virtual_organisation: "biomed".into(),
            retry_count: 3,
        }
    }
}

/// Render a [`JobPlan`] as an LCG2-style JDL document.
///
/// Multi-command plans (grouped services, batched jobs) become a shell
/// wrapper invocation, exactly how the real generic wrapper shipped a
/// script that ran the composed command lines in sequence.
pub fn to_jdl(plan: &JobPlan, options: &JdlOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[");
    if plan.command_lines.len() == 1 {
        let (exe, args) = split_command(&plan.command_lines[0]);
        let _ = writeln!(out, "  Executable = \"{}\";", escape(exe));
        if !args.is_empty() {
            let _ = writeln!(out, "  Arguments = \"{}\";", escape(&args));
        }
    } else {
        // The generic wrapper script runs the composed command lines.
        let _ = writeln!(out, "  Executable = \"moteur_wrapper.sh\";");
        let script: Vec<String> = plan.command_lines.iter().map(|c| escape(c)).collect();
        let _ = writeln!(out, "  Arguments = \"{}\";", script.join(" && "));
    }
    let _ = writeln!(out, "  StdOutput = \"std.out\";");
    let _ = writeln!(out, "  StdError = \"std.err\";");
    if !plan.fetch.is_empty() {
        let items: Vec<String> = plan
            .fetch
            .iter()
            .map(|f| format!("\"{}\"", escape(&f.name)))
            .collect();
        let _ = writeln!(out, "  InputSandbox = {{{}}};", items.join(", "));
    }
    if !plan.store.is_empty() {
        let items: Vec<String> = plan
            .store
            .iter()
            .map(|f| format!("\"{}\"", escape(&f.name)))
            .collect();
        let _ = writeln!(out, "  OutputSandbox = {{{}}};", items.join(", "));
    }
    let _ = writeln!(
        out,
        "  Requirements = other.GlueCEPolicyMaxCPUTime > 60 && Member(\"VO-{}\", other.GlueHostApplicationSoftwareRunTimeEnvironment);",
        escape(&options.virtual_organisation)
    );
    let _ = writeln!(out, "  RetryCount = {};", options.retry_count);
    let _ = writeln!(
        out,
        "  VirtualOrganisation = \"{}\";",
        escape(&options.virtual_organisation)
    );
    out.push_str("]\n");
    out
}

fn split_command(command: &str) -> (&str, String) {
    match command.split_once(' ') {
        Some((exe, rest)) => (exe, rest.to_string()),
        None => (command, String::new()),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::descriptor::crest_lines_example;
    use crate::invocation::{plan_single, Binding};

    fn plan() -> JobPlan {
        let mut catalog = Catalog::new();
        catalog.register("gfn://img/f.hdr", 7_864_320);
        catalog.register("gfn://img/r.hdr", 7_864_320);
        let binding = Binding::new()
            .bind_file("floating_image", "gfn://img/f.hdr")
            .bind_file("reference_image", "gfn://img/r.hdr")
            .bind_value("scale", "2")
            .bind_output("crest_reference", "gfn://o/c1", 1)
            .bind_output("crest_floating", "gfn://o/c2", 1);
        plan_single(&crest_lines_example(), &binding, &catalog).unwrap()
    }

    #[test]
    fn single_command_jdl_has_executable_and_arguments() {
        let jdl = to_jdl(&plan(), &JdlOptions::default());
        assert!(jdl.starts_with("[\n"), "{jdl}");
        assert!(jdl.contains("Executable = \"CrestLines.pl\";"), "{jdl}");
        assert!(
            jdl.contains("Arguments = \"-im1 f.hdr -im2 r.hdr -s 2"),
            "{jdl}"
        );
        assert!(jdl.contains("InputSandbox"), "{jdl}");
        assert!(jdl.contains("gfn://img/f.hdr"), "{jdl}");
        assert!(
            jdl.contains("OutputSandbox = {\"gfn://o/c1\", \"gfn://o/c2\"};"),
            "{jdl}"
        );
        assert!(jdl.contains("VirtualOrganisation = \"biomed\";"), "{jdl}");
        assert!(jdl.trim_end().ends_with(']'), "{jdl}");
    }

    #[test]
    fn grouped_plans_render_as_wrapper_script() {
        let mut p = plan();
        p.command_lines.push("cmatch -c1 c1 -c2 c2 -o t.trf".into());
        let jdl = to_jdl(&p, &JdlOptions::default());
        assert!(jdl.contains("Executable = \"moteur_wrapper.sh\";"), "{jdl}");
        assert!(jdl.contains(" && "), "composed command lines: {jdl}");
    }

    #[test]
    fn options_are_respected() {
        let jdl = to_jdl(
            &plan(),
            &JdlOptions {
                virtual_organisation: "atlas".into(),
                retry_count: 7,
            },
        );
        assert!(jdl.contains("VirtualOrganisation = \"atlas\";"));
        assert!(jdl.contains("RetryCount = 7;"));
        assert!(jdl.contains("VO-atlas"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let p = JobPlan {
            command_lines: vec!["tool \"quoted\"".into()],
            fetch: vec![],
            store: vec![],
        };
        let jdl = to_jdl(&p, &JdlOptions::default());
        assert!(jdl.contains("Arguments = \"\\\"quoted\\\"\";"), "{jdl}");
    }

    #[test]
    fn empty_sandboxes_are_omitted() {
        let p = JobPlan {
            command_lines: vec!["tool".into()],
            fetch: vec![],
            store: vec![],
        };
        let jdl = to_jdl(&p, &JdlOptions::default());
        assert!(!jdl.contains("InputSandbox"));
        assert!(!jdl.contains("OutputSandbox"));
        assert!(!jdl.contains("Arguments"));
    }
}
