//! # moteur-wrapper
//!
//! The paper's *generic code wrapper* (§3.6): a service that can run any
//! legacy executable from a declarative XML descriptor, and — the key
//! enabler for the job-grouping optimization — compose several such
//! invocations into one *virtual grouped service* submitted as a single
//! grid job.
//!
//! The descriptor (paper Fig. 8) declares:
//!
//! 1. the executable's name and access method (URL / GFN / Local),
//! 2. sandboxed side files (scripts, libraries) fetched alongside it,
//! 3. file inputs with their command-line options — *without* values,
//!    which arrive at invocation time (service-style dynamic data),
//! 4. value parameters (inputs without an access method),
//! 5. outputs with registration methods.
//!
//! From a descriptor plus a per-invocation [`Binding`], this crate
//! synthesises the exact command line and the [`JobPlan`] (files to
//! stage in, command lines to run, outputs to register) that the grid
//! backend executes. [`compose_group`] merges several plans, keeping
//! intermediate files on the worker — one submission overhead and fewer
//! transfers, which is precisely what the JG configurations measure.
//!
//! ```
//! use moteur_wrapper::{crest_lines_example, command_line, Binding};
//!
//! let desc = crest_lines_example(); // the paper's Fig. 8 descriptor
//! let binding = Binding::new()
//!     .bind_file("floating_image", "gfn://img/float.hdr")
//!     .bind_file("reference_image", "gfn://img/ref.hdr")
//!     .bind_value("scale", "2")
//!     .bind_output("crest_reference", "gfn://out/cr.crest", 400_000)
//!     .bind_output("crest_floating", "gfn://out/cf.crest", 400_000);
//! let cmd = command_line(&desc, &binding).unwrap();
//! assert!(cmd.starts_with("CrestLines.pl -im1 float.hdr -im2 ref.hdr -s 2"));
//! ```

pub mod catalog;
pub mod compose;
pub mod descriptor;
pub mod error;
pub mod invocation;
pub mod jdl;
pub mod lint;

pub use catalog::Catalog;
pub use compose::{compose_group, GroupMember};
pub use descriptor::{
    crest_lines_example, AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot,
};
pub use error::WrapperError;
pub use invocation::{
    command_line, plan_single, Binding, BoundOutput, BoundValue, JobPlan, TransferFile,
};
pub use jdl::{to_jdl, JdlOptions};
pub use lint::{lint_descriptor, DescriptorFinding};
