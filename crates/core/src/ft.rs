//! Fault tolerance: retry policies, timeouts, speculative replication
//! and graceful degradation.
//!
//! The paper's experimental ground (§2, §6) is a production grid where
//! jobs fail, stall in batch queues, and occasionally become extreme
//! outliers (the long-tailed match delay of `egee_2006`). A single
//! "resubmit up to N times, then abort the workflow" counter — the
//! enactor's historical behaviour — wastes both makespan and completed
//! work. This module provides the vocabulary the enactor wires in:
//!
//! - [`RetryPolicy`] — how a *failed* invocation is resubmitted: fixed
//!   (immediate), exponential backoff, or jittered backoff;
//! - [`TimeoutPolicy`] + [`TimeoutAction`] — when a *running*
//!   invocation is declared an outlier, and whether it is resubmitted
//!   (cancel + fresh submission) or speculatively replicated (first
//!   completion wins, losers cancelled);
//! - [`FtConfig`] — per-processor policy table plus CE blacklisting
//!   and the `--continue-on-error` switch;
//! - [`QuarantineEntry`] / [`WorkflowReport`] — the degradation
//!   record: which data items were quarantined, which downstream
//!   processors lost them, and a machine-readable run report.

use crate::obs::json::{self, JsonObject};
use moteur_gridsim::{percentile, Rng};
use std::collections::BTreeMap;

/// How a failed invocation is retried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryPolicy {
    /// Resubmit immediately, up to `max_retries` times — the legacy
    /// `max_job_retries` behaviour.
    Fixed { max_retries: u32 },
    /// Resubmit after `base_delay * factor^(retry-1)` seconds, capped
    /// at `max_delay`. Spreads resubmissions of a correlated failure
    /// burst over time.
    ExponentialBackoff {
        max_retries: u32,
        base_delay: f64,
        factor: f64,
        max_delay: f64,
    },
    /// Exponential backoff with the delay drawn uniformly from
    /// `[0, full_delay]` (decorrelated jitter), so retries of many
    /// simultaneous failures do not herd back onto the broker at once.
    Jittered {
        max_retries: u32,
        base_delay: f64,
        factor: f64,
        max_delay: f64,
    },
}

impl RetryPolicy {
    /// The retry budget (attempts = `max_retries + 1`).
    pub fn max_retries(&self) -> u32 {
        match *self {
            RetryPolicy::Fixed { max_retries }
            | RetryPolicy::ExponentialBackoff { max_retries, .. }
            | RetryPolicy::Jittered { max_retries, .. } => max_retries,
        }
    }

    /// Seconds to wait before resubmission number `retry` (counted
    /// from 1). Zero means "resubmit now".
    pub fn delay(&self, retry: u32, rng: &mut Rng) -> f64 {
        match *self {
            RetryPolicy::Fixed { .. } => 0.0,
            RetryPolicy::ExponentialBackoff {
                base_delay,
                factor,
                max_delay,
                ..
            } => backoff(base_delay, factor, max_delay, retry),
            RetryPolicy::Jittered {
                base_delay,
                factor,
                max_delay,
                ..
            } => rng.uniform() * backoff(base_delay, factor, max_delay, retry),
        }
    }
}

fn backoff(base_delay: f64, factor: f64, max_delay: f64, retry: u32) -> f64 {
    let exp = retry.saturating_sub(1).min(62);
    (base_delay * factor.powi(exp as i32))
        .min(max_delay)
        .max(0.0)
}

/// When a running invocation is declared an outlier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeoutPolicy {
    /// Never time out.
    None,
    /// A fixed wall/virtual-time budget per submission.
    Fixed { seconds: f64 },
    /// `multiplier ×` the observed `percentile` of this processor's
    /// completed submission→delivery durations. Until `min_samples`
    /// completions are observed the `fallback` budget applies
    /// (non-finite fallback disables the timeout during warm-up).
    Adaptive {
        percentile: f64,
        multiplier: f64,
        min_samples: usize,
        fallback: f64,
    },
}

impl TimeoutPolicy {
    /// The timeout budget in seconds given this processor's observed
    /// completed durations, or `None` when no timeout applies.
    pub fn timeout_secs(&self, samples: &[f64]) -> Option<f64> {
        match *self {
            TimeoutPolicy::None => None,
            TimeoutPolicy::Fixed { seconds } => finite(seconds),
            TimeoutPolicy::Adaptive {
                percentile: q,
                multiplier,
                min_samples,
                fallback,
            } => {
                if samples.len() >= min_samples.max(1) {
                    finite(percentile(samples, q) * multiplier)
                } else {
                    finite(fallback)
                }
            }
        }
    }
}

fn finite(v: f64) -> Option<f64> {
    (v.is_finite() && v > 0.0).then_some(v)
}

/// What to do when the timeout fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Cancel the running attempt and resubmit (consumes one retry).
    Resubmit,
    /// Keep the original running and launch a speculative replica —
    /// first completion wins, the losers are cancelled. At most
    /// `max_replicas` replicas per invocation.
    Replicate { max_replicas: u32 },
}

/// The complete fault-tolerance policy for one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtPolicy {
    pub retry: RetryPolicy,
    pub timeout: TimeoutPolicy,
    pub on_timeout: TimeoutAction,
}

impl FtPolicy {
    /// The legacy behaviour: immediate resubmission, no timeout.
    pub fn fixed(max_retries: u32) -> Self {
        FtPolicy {
            retry: RetryPolicy::Fixed { max_retries },
            timeout: TimeoutPolicy::None,
            on_timeout: TimeoutAction::Resubmit,
        }
    }
}

/// Workflow-wide fault-tolerance configuration: a default policy, a
/// per-processor override table, CE blacklisting, and the graceful
/// degradation switch.
#[derive(Debug, Clone, PartialEq)]
pub struct FtConfig {
    pub default: FtPolicy,
    /// Per-processor overrides (BTreeMap for deterministic iteration).
    pub per_processor: BTreeMap<String, FtPolicy>,
    /// Blacklist a computing element once this many *consecutive*
    /// enactor-visible failures land on it. `None` disables.
    pub ce_blacklist_threshold: Option<u32>,
    /// Quarantine terminally failed data items (and their history-tree
    /// descendants) instead of aborting the workflow.
    pub continue_on_error: bool,
}

impl FtConfig {
    /// Reproduce the pre-`ft` enactor: one fixed retry counter, no
    /// timeouts, no blacklisting, abort on terminal failure.
    pub fn from_legacy(max_job_retries: u32) -> Self {
        FtConfig {
            default: FtPolicy::fixed(max_job_retries),
            per_processor: BTreeMap::new(),
            ce_blacklist_threshold: None,
            continue_on_error: false,
        }
    }

    /// Replace the default policy.
    pub fn with_default(mut self, policy: FtPolicy) -> Self {
        self.default = policy;
        self
    }

    /// Override the policy of one processor.
    pub fn with_policy(mut self, processor: impl Into<String>, policy: FtPolicy) -> Self {
        self.per_processor.insert(processor.into(), policy);
        self
    }

    /// Enable (or disable) graceful degradation.
    pub fn with_continue_on_error(mut self, on: bool) -> Self {
        self.continue_on_error = on;
        self
    }

    /// Enable CE blacklisting after `threshold` consecutive failures.
    pub fn with_ce_blacklist(mut self, threshold: u32) -> Self {
        self.ce_blacklist_threshold = Some(threshold.max(1));
        self
    }

    /// The policy governing `processor`.
    pub fn policy_for(&self, processor: &str) -> &FtPolicy {
        self.per_processor.get(processor).unwrap_or(&self.default)
    }
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig::from_legacy(crate::config::EnactorConfig::default().max_job_retries)
    }
}

/// One quarantined data item: a terminal failure that
/// `--continue-on-error` contained instead of aborting.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The processor whose invocation failed.
    pub processor: String,
    /// The data index of the failed invocation (e.g. `[3]`).
    pub index: String,
    /// The terminal error message.
    pub error: String,
    /// Downstream processors that will never receive this item — the
    /// failed item's history-tree descendants, in topological order.
    pub descendants: Vec<String>,
}

impl QuarantineEntry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("processor", &self.processor)
            .str("index", &self.index)
            .str("error", &self.error)
            .raw(
                "descendants",
                &json::array(
                    self.descendants
                        .iter()
                        .map(|d| format!("\"{}\"", json::escape(d))),
                ),
            )
            .finish()
    }
}

/// The per-item outcome summary of a (possibly degraded) enactment.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowReport {
    /// Invocations that completed and routed their outputs.
    pub completed_invocations: usize,
    /// Jobs handed to the backend.
    pub jobs_submitted: usize,
    /// Total virtual (or wall) execution time in seconds.
    pub makespan_secs: f64,
    /// Quarantined items, in quarantine order.
    pub quarantined: Vec<QuarantineEntry>,
}

impl WorkflowReport {
    /// True when every data item completed.
    pub fn ok(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Single-line JSON rendering (schema `moteur/workflow-report/v1`).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("schema", "moteur/workflow-report/v1")
            .bool("ok", self.ok())
            .uint("completed_invocations", self.completed_invocations as u64)
            .uint("jobs_submitted", self.jobs_submitted as u64)
            .num("makespan_secs", self.makespan_secs)
            .uint("quarantined", self.quarantined.len() as u64)
            .raw(
                "items",
                &json::array(self.quarantined.iter().map(QuarantineEntry::to_json)),
            )
            .finish()
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "workflow report: {} — {} invocation(s) completed, {} quarantined, makespan {:.1}s",
            if self.ok() { "ok" } else { "degraded" },
            self.completed_invocations,
            self.quarantined.len(),
            self.makespan_secs,
        );
        for q in &self.quarantined {
            let _ = writeln!(out, "  quarantined {}{}: {}", q.processor, q.index, q.error);
            if !q.descendants.is_empty() {
                let _ = writeln!(out, "    lost downstream: {}", q.descendants.join(", "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_has_zero_delay_and_the_declared_budget() {
        let p = RetryPolicy::Fixed { max_retries: 5 };
        let mut rng = Rng::new(1);
        assert_eq!(p.max_retries(), 5);
        assert_eq!(p.delay(1, &mut rng), 0.0);
        assert_eq!(p.delay(5, &mut rng), 0.0);
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let p = RetryPolicy::ExponentialBackoff {
            max_retries: 8,
            base_delay: 10.0,
            factor: 2.0,
            max_delay: 60.0,
        };
        let mut rng = Rng::new(1);
        assert_eq!(p.delay(1, &mut rng), 10.0);
        assert_eq!(p.delay(2, &mut rng), 20.0);
        assert_eq!(p.delay(3, &mut rng), 40.0);
        assert_eq!(p.delay(4, &mut rng), 60.0, "capped");
        assert_eq!(p.delay(30, &mut rng), 60.0, "stays capped");
    }

    #[test]
    fn jittered_backoff_stays_within_the_envelope() {
        let p = RetryPolicy::Jittered {
            max_retries: 8,
            base_delay: 10.0,
            factor: 2.0,
            max_delay: 300.0,
        };
        let mut rng = Rng::new(42);
        for retry in 1..=6 {
            let full = backoff(10.0, 2.0, 300.0, retry);
            for _ in 0..50 {
                let d = p.delay(retry, &mut rng);
                assert!((0.0..=full).contains(&d), "retry {retry}: {d} > {full}");
            }
        }
    }

    #[test]
    fn fixed_timeout_ignores_samples() {
        let t = TimeoutPolicy::Fixed { seconds: 120.0 };
        assert_eq!(t.timeout_secs(&[]), Some(120.0));
        assert_eq!(t.timeout_secs(&[1.0, 2.0]), Some(120.0));
        assert_eq!(TimeoutPolicy::None.timeout_secs(&[1.0]), None);
    }

    #[test]
    fn adaptive_timeout_uses_fallback_until_enough_samples() {
        let t = TimeoutPolicy::Adaptive {
            percentile: 0.5,
            multiplier: 3.0,
            min_samples: 3,
            fallback: 1000.0,
        };
        assert_eq!(t.timeout_secs(&[10.0]), Some(1000.0), "warm-up fallback");
        assert_eq!(
            t.timeout_secs(&[10.0, 10.0, 10.0]),
            Some(30.0),
            "3 × median"
        );
        let disabled = TimeoutPolicy::Adaptive {
            percentile: 0.5,
            multiplier: 3.0,
            min_samples: 3,
            fallback: f64::INFINITY,
        };
        assert_eq!(disabled.timeout_secs(&[]), None, "no budget in warm-up");
    }

    #[test]
    fn config_lookup_prefers_the_processor_override() {
        let special = FtPolicy::fixed(9);
        let cfg = FtConfig::from_legacy(2).with_policy("crestLines", special);
        assert_eq!(cfg.policy_for("crestLines").retry.max_retries(), 9);
        assert_eq!(cfg.policy_for("other").retry.max_retries(), 2);
        assert!(!cfg.continue_on_error);
        assert!(cfg.ce_blacklist_threshold.is_none());
    }

    #[test]
    fn report_json_and_render_are_stable() {
        let report = WorkflowReport {
            completed_invocations: 11,
            jobs_submitted: 12,
            makespan_secs: 1234.5,
            quarantined: vec![QuarantineEntry {
                processor: "crestLines".into(),
                index: "[3]".into(),
                error: "grid job failed".into(),
                descendants: vec!["crestMatch".into(), "PFMatchICP".into()],
            }],
        };
        assert!(!report.ok());
        assert_eq!(
            report.to_json(),
            "{\"schema\":\"moteur/workflow-report/v1\",\"ok\":false,\
             \"completed_invocations\":11,\"jobs_submitted\":12,\
             \"makespan_secs\":1234.5,\"quarantined\":1,\
             \"items\":[{\"processor\":\"crestLines\",\"index\":\"[3]\",\
             \"error\":\"grid job failed\",\
             \"descendants\":[\"crestMatch\",\"PFMatchICP\"]}]}"
        );
        let text = report.render();
        assert!(text.contains("degraded"), "{text}");
        assert!(text.contains("crestLines[3]"), "{text}");
        assert!(text.contains("crestMatch, PFMatchICP"), "{text}");
        let ok = WorkflowReport {
            completed_invocations: 3,
            jobs_submitted: 3,
            makespan_secs: 1.0,
            quarantined: vec![],
        };
        assert!(ok.ok());
        assert!(ok.render().contains("ok"));
    }
}
