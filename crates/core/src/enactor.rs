//! The workflow enactor: MOTEUR's execution engine.
//!
//! Combines, per the paper, four optimization levels:
//!
//! - **workflow parallelism** (§3.2) — independent graph branches fire
//!   concurrently; inherent in the event loop, always on;
//! - **data parallelism** (§3.3) — with DP on, a service may have any
//!   number of invocations in flight; with DP off, at most one;
//! - **service parallelism** (§3.4) — with SP on, a service fires as
//!   soon as an input match exists (pipelining); with SP off, a service
//!   behaves like a stage barrier: it fires only once all its data
//!   predecessors are *exhausted* (will produce nothing more);
//! - **job grouping** (§3.6) — applied as a graph transform before
//!   enactment (see [`crate::grouping`]).
//!
//! Synchronization processors (§2.3) consume their entire input streams
//! in a single invocation once their upstream is exhausted. Cycles
//! (optimization loops, Fig. 2) are supported: processors inside a
//! strongly connected component ignore the SP-off stage barrier for
//! intra-cycle predecessors, and exhaustion of a cycle is detected
//! collectively.

use crate::backend::{
    Backend, BackendCompletion, BackendJob, InvocationId, JobPayload, ServiceOutputs, WaitOutcome,
};
use crate::config::EnactorConfig;
use crate::error::MoteurError;
use crate::ft::{FtConfig, QuarantineEntry, TimeoutAction};
use crate::graph::{ProcId, ProcessorKind, Workflow};
use crate::iterate::{MatchEngine, MatchedSet};
use crate::obs::prof::Subsystem;
use crate::obs::{Obs, TraceEvent};
use crate::service::{CostModel, GroupSource, GroupedBinding, ServiceBinding, ServiceProfile};
use crate::store::{
    descriptor_digest, group_digest, invocation_key, DataStore, HistoryXmlCache, InvocationKey,
};
use crate::token::{DataIndex, History, Token};
use crate::trace::{InvocationRecord, WorkflowResult};
use crate::value::DataValue;
use moteur_gridsim::{Rng, SimDuration, SimTime};
use moteur_wrapper::{
    compose_group, plan_single, Binding, Catalog, ExecutableDescriptor, GroupMember, JobPlan,
    TransferFile,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The workflow's input data: one value stream per source name (the
/// on-disk form is the input data-set XML language, see `moteur-scufl`).
#[derive(Debug, Clone, Default)]
pub struct InputData {
    streams: HashMap<String, Vec<DataValue>>,
}

impl InputData {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(mut self, source: impl Into<String>, values: Vec<DataValue>) -> Self {
        self.streams.insert(source.into(), values);
        self
    }

    pub fn get(&self, source: &str) -> Option<&[DataValue]> {
        self.streams.get(source).map(Vec::as_slice)
    }
}

/// Enact `workflow` over `inputs` on `backend` with the given
/// configuration. This is the crate's main entry point.
pub fn run<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    backend: &mut B,
) -> Result<WorkflowResult, MoteurError> {
    run_observed(workflow, inputs, config, backend, Obs::off())
}

/// [`run`] with observability: every enactment step emits a
/// [`TraceEvent`] through `obs`. With [`Obs::off`] this is exactly
/// [`run`] — emission sites cost one branch and build nothing.
pub fn run_observed<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    backend: &mut B,
    obs: Obs,
) -> Result<WorkflowResult, MoteurError> {
    run_inner(workflow, inputs, config, backend, obs, None)
}

/// [`run_observed`] with a provenance-keyed data manager: before each
/// descriptor-bound invocation is handed to the grid, `store` is
/// consulted with its invocation key; on a hit the grid job is elided
/// and the memoized outputs are replayed at the store's configured
/// transfer cost. Completed invocations are recorded back into the
/// store, so a second run over the same inputs (same process or a
/// warm restart from a persisted store) short-circuits all
/// deterministic grid work.
pub fn run_cached<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    backend: &mut B,
    obs: Obs,
    store: &mut DataStore,
) -> Result<WorkflowResult, MoteurError> {
    run_inner(workflow, inputs, config, backend, obs, Some(store))
}

/// [`run_observed`] under an explicit fault-tolerance configuration:
/// per-processor retry policies (fixed / exponential / jittered
/// backoff), timeout-triggered resubmission or speculative replication
/// (first completion wins), CE blacklisting, and — with
/// [`FtConfig::continue_on_error`] — graceful degradation: a terminally
/// failed data item and its history-tree descendants are quarantined
/// instead of aborting the workflow, and surface in
/// [`WorkflowResult::quarantined`].
pub fn run_fault_tolerant<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    ft: &FtConfig,
    backend: &mut B,
    obs: Obs,
) -> Result<WorkflowResult, MoteurError> {
    run_ft_inner(workflow, inputs, config, ft.clone(), backend, obs, None)
}

/// [`run_fault_tolerant`] with a provenance-keyed data manager (see
/// [`run_cached`]). Quarantined invocations never complete, so their
/// outputs are never memoized — a degraded run cannot poison the store.
pub fn run_fault_tolerant_cached<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    ft: &FtConfig,
    backend: &mut B,
    obs: Obs,
    store: &mut DataStore,
) -> Result<WorkflowResult, MoteurError> {
    run_ft_inner(
        workflow,
        inputs,
        config,
        ft.clone(),
        backend,
        obs,
        Some(store),
    )
}

fn run_inner<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    backend: &mut B,
    obs: Obs,
    store: Option<&mut DataStore>,
) -> Result<WorkflowResult, MoteurError> {
    // The legacy entry points express their single retry counter as a
    // fixed-policy fault-tolerance configuration.
    let ft = FtConfig::from_legacy(config.max_job_retries);
    run_ft_inner(workflow, inputs, config, ft, backend, obs, store)
}

fn run_ft_inner<B: Backend>(
    workflow: &Workflow,
    inputs: &InputData,
    config: EnactorConfig,
    ft: FtConfig,
    backend: &mut B,
    obs: Obs,
    store: Option<&mut DataStore>,
) -> Result<WorkflowResult, MoteurError> {
    let mut ctx = EnactCtx { backend, store };
    let mut instance = WorkflowInstance::start(workflow, inputs, config, ft, &mut ctx, obs)?;
    instance.event_loop(&mut ctx)?;
    let now = ctx.backend.now();
    instance.finish(now)
}

/// The mutable environment a [`WorkflowInstance`] steps against: the
/// execution backend and (optionally) the provenance-keyed data
/// manager. Borrowed per call rather than owned by the instance so a
/// daemon can share one backend and one memo table across many live
/// instances — each step reborrows them for exactly its duration.
///
/// `B` stays generic (instead of `dyn Backend`) so the one-shot entry
/// points keep their statically dispatched hot path; a multiplexer
/// that needs erasure can instantiate it with a concrete adapter such
/// as [`crate::backend::ScopedBackend`].
pub struct EnactCtx<'b, B: Backend + ?Sized> {
    /// Where fired invocations run.
    pub backend: &'b mut B,
    /// Provenance-keyed data manager; `None` → memoization disabled.
    pub store: Option<&'b mut DataStore>,
}

impl<B: Backend + ?Sized> std::fmt::Debug for EnactCtx<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnactCtx")
            .field("store", &self.store.as_deref().map(DataStore::stats))
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for WorkflowInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowInstance")
            .field("workflow", &self.workflow.name)
            .field("inflight", &self.inflight_total)
            .field("jobs_submitted", &self.jobs_submitted)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

struct ProcState {
    engine: MatchEngine,
    ready: VecDeque<MatchedSet>,
    inflight: usize,
    barrier_fired: bool,
    /// For synchronization processors: the collected streams, per port.
    sync_buffers: Vec<Vec<Token>>,
    /// Streaming mode: currently blocked on a full downstream port.
    /// Tracked so the suspend/resume trace events fire once per
    /// transition rather than once per blocked firing attempt.
    suspended: bool,
}

/// One source's unemitted input stream in streaming mode. Instead of
/// routing the whole stream up front, the enactor pulls items off the
/// cursor one at a time while the source's downstream ports have room —
/// the head of the end-to-end back-pressure chain.
struct SourceCursor {
    proc: ProcId,
    name: String,
    values: Vec<DataValue>,
    next: usize,
}

/// Streaming mode keeps at most this many completion-duration samples
/// per processor (a ring, overwritten oldest-first) so the adaptive
/// timeout statistics stay O(1) in the stream length.
const SAMPLE_RING: usize = 512;

/// One workflow invocation carried by a backend job (batched grid jobs
/// carry several).
struct PendEntry {
    index: DataIndex,
    input_histories: Vec<Arc<History>>,
    /// Pre-synthesised output tokens for grid jobs (`None` → the
    /// completion carries real outputs from a local service).
    grid_outputs: Option<ServiceOutputs>,
    /// `Some` when the data manager missed on this invocation: record
    /// the outputs under this key once the job completes.
    cache_key: Option<InvocationKey>,
}

struct PendingJob {
    proc: ProcId,
    entries: Vec<PendEntry>,
    /// Retained for enactor-level resubmission of failed grid jobs.
    job: BackendJob,
    retries: u32,
    submitted: SimTime,
    /// Attempt tags currently live at the backend. Failure resubmits
    /// reuse the logical tag (the failed attempt has terminally
    /// completed); timeout resubmits and speculative replicas carry
    /// fresh tags. Empty while the invocation waits in the backoff
    /// queue.
    attempts: Vec<u64>,
    /// When the current timeout window opened: original submission,
    /// restarted on every resubmission and extended on every replica.
    window_start: SimTime,
    /// True once timeouts stopped applying (replica cap reached, or a
    /// cache replay that cannot time out).
    muted: bool,
    /// Speculative replicas launched so far.
    replicas: u32,
}

/// A resumable workflow enactment: the paper's event loop broken into
/// cooperative steps so a daemon can multiplex many live instances
/// over one shared backend and one shared data manager.
///
/// An instance owns its (post-grouping) workflow and all per-run
/// state, but **not** the backend or the store — those are borrowed
/// per step through an [`EnactCtx`], which is what lets N instances
/// share them. The one-shot entry points ([`run`] and friends) are
/// now a single-instance session: [`WorkflowInstance::start`], the
/// same wait loop, [`WorkflowInstance::finish`].
pub struct WorkflowInstance {
    workflow: Workflow,
    config: EnactorConfig,
    ft: FtConfig,
    catalog: Catalog,
    rng: Rng,
    states: Vec<ProcState>,
    /// SCC id per processor and whether that SCC is a real cycle.
    scc_ids: Vec<usize>,
    in_cycle: Vec<bool>,
    pending: HashMap<u64, PendingJob>,
    next_invocation: u64,
    jobs_submitted: usize,
    inflight_total: usize,
    /// Stage-in + stage-out bytes committed to the grid across every
    /// submitted attempt (retries and replicas transfer again). The
    /// ground truth the per-link timeline series must sum to.
    bytes_transferred: u64,
    /// Successfully completed logical invocations, for SLO projection.
    completed: usize,
    /// Whether the last SLO projection exceeded the threshold (the
    /// breach event fires on the false→true transition only).
    slo_breached: bool,
    sink_outputs: HashMap<String, Vec<Token>>,
    /// Tokens delivered per sink — the full tally even in streaming
    /// mode, where `sink_outputs` retains only the first
    /// `port_capacity` tokens as a sample.
    sink_counts: HashMap<String, usize>,
    /// Unemitted source streams (streaming mode only; empty in the
    /// legacy eager mode, where sources route everything up front).
    source_cursors: Vec<SourceCursor>,
    /// Per-processor write cursor into the [`SAMPLE_RING`]-sized
    /// `proc_samples` ring (streaming mode only).
    sample_cursors: Vec<usize>,
    records: Vec<InvocationRecord>,
    start_time: SimTime,
    obs: Obs,
    /// Memoized history-tree serialisations shared by every probe and
    /// insert of this run: `provenance_key` renders each distinct tree
    /// once instead of once per call.
    history_xml: HistoryXmlCache,
    /// Per-processor service digest: `Some` for deterministic
    /// descriptor- or group-bound processors when a store is attached,
    /// `None` for everything uncacheable (local bindings, sources,
    /// sinks, non-deterministic descriptors).
    digests: Vec<Option<u64>>,
    /// Fresh attempt tag → logical invocation id. Same-tag failure
    /// resubmits need no entry; only replicas and timeout resubmits
    /// are registered here.
    attempt_of: HashMap<u64, u64>,
    /// Attempt tags whose backend job could not be retracted
    /// ([`Backend::cancel`] returned `false`); their late completions
    /// are dropped on arrival.
    cancelled_attempts: HashSet<u64>,
    /// Backoff queue: `(due time, logical invocation)` awaiting
    /// resubmission. Deferred invocations still count as in flight.
    deferred: Vec<(SimTime, u64)>,
    /// Per-processor submission→delivery durations of successful
    /// completions, feeding percentile-adaptive timeouts.
    proc_samples: Vec<Vec<f64>>,
    /// Consecutive enactor-visible failures per computing element.
    ce_failures: HashMap<usize, u32>,
    blacklisted: HashSet<usize>,
    quarantined: Vec<QuarantineEntry>,
}

/// Outcome of consulting the data manager for one ready invocation.
enum CacheProbe {
    /// Caching disabled, or this invocation is not memoizable.
    Uncached,
    /// Memoized result: replay `outputs` after a simulated transfer.
    Hit {
        outputs: ServiceOutputs,
        transfer_seconds: f64,
    },
    /// Memoizable but unknown: record under this key on completion.
    Miss(InvocationKey),
}

impl WorkflowInstance {
    /// Prepare a resumable instance: preflight lint, job grouping,
    /// graph validation and source-token emission — everything the
    /// one-shot entry points do before their first backend wait.
    ///
    /// The returned instance holds no backend or store borrow; step it
    /// with [`WorkflowInstance::pump`], [`WorkflowInstance::deliver`]
    /// and [`WorkflowInstance::on_timer`] against any [`EnactCtx`],
    /// then close it with [`WorkflowInstance::finish`] (or
    /// [`WorkflowInstance::abort`]).
    pub fn start<B: Backend + ?Sized>(
        workflow: &Workflow,
        inputs: &InputData,
        config: EnactorConfig,
        ft: FtConfig,
        ctx: &mut EnactCtx<'_, B>,
        obs: Obs,
    ) -> Result<Self, MoteurError> {
        if config.preflight {
            // Error-severity lint findings are exactly the structural
            // conditions under which enactment would panic, deadlock or
            // silently drop data — refuse them up front with a typed
            // error instead. Run on the pre-grouping workflow so
            // findings carry the source spans of the workflow the user
            // wrote.
            let findings = crate::lint::lint_errors(workflow);
            if !findings.is_empty() {
                let summary = findings
                    .diagnostics
                    .iter()
                    .map(|d| format!("[{}] {}", d.code, d.message))
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(MoteurError::lint(findings.errors(), summary));
            }
        }
        let workflow = if config.job_grouping {
            crate::grouping::group_workflow(workflow)?
        } else {
            workflow.clone()
        };
        workflow.validate()?;
        let mut instance = Self::new(workflow, config, ft, ctx, obs);
        instance.emit_sources(inputs, ctx)?;
        Ok(instance)
    }

    /// Advance the instance without waiting: fire every ready
    /// invocation the configuration (and `budget`) permits, then
    /// resubmit any backoff-deferred work that has come due. Returns
    /// how many invocations were dispatched to the backend.
    pub fn pump_budgeted<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        budget: Option<usize>,
    ) -> Result<usize, MoteurError> {
        let fired = self.fire_phase_budgeted(ctx, budget)?;
        self.service_deferred(ctx)?;
        Ok(fired)
    }

    /// [`WorkflowInstance::pump_budgeted`] without a budget: fire to
    /// fixpoint, exactly one iteration of the one-shot event loop's
    /// firing half.
    pub fn pump<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<usize, MoteurError> {
        self.pump_budgeted(ctx, None)
    }

    /// Deliver one backend completion addressed to this instance. On
    /// error the workflow has terminally failed; the caller must
    /// [`WorkflowInstance::abort`] it so no backend job is left behind.
    pub fn deliver<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        completion: BackendCompletion,
    ) -> Result<(), MoteurError> {
        self.handle_completion(ctx, completion)
    }

    /// Act on every pending invocation whose timeout window has
    /// expired and every backoff deferral that has come due at the
    /// backend clock. Call after a backend wait timed out at
    /// [`WorkflowInstance::next_wake`].
    pub fn on_timer<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<(), MoteurError> {
        self.handle_timeouts(ctx)
    }

    /// Cancel every in-flight attempt of this instance at the backend
    /// and drop its backoff queue. Through a
    /// [`crate::backend::ScopedBackend`] this retracts only the
    /// instance's own attempt tags — sibling instances sharing the
    /// underlying backend are untouched.
    pub fn abort<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>) {
        self.drain_pending(ctx);
    }

    /// Logical invocations currently in flight (running at the
    /// backend or waiting in the backoff queue).
    pub fn inflight(&self) -> usize {
        self.inflight_total
    }

    /// Backend jobs submitted so far (cache replays excluded).
    pub fn jobs_submitted(&self) -> usize {
        self.jobs_submitted
    }

    /// Successfully completed logical invocations so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Data items quarantined under `continue_on_error` so far.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Name of the (post-grouping) workflow this instance enacts.
    pub fn workflow_name(&self) -> &str {
        &self.workflow.name
    }

    fn new<B: Backend + ?Sized>(
        workflow: Workflow,
        config: EnactorConfig,
        ft: FtConfig,
        ctx: &mut EnactCtx<'_, B>,
        obs: Obs,
    ) -> Self {
        let states = workflow
            .processors
            .iter()
            .map(|p| ProcState {
                engine: MatchEngine::new(p.iteration, p.inputs.len().max(1)),
                ready: VecDeque::new(),
                inflight: 0,
                barrier_fired: false,
                sync_buffers: vec![Vec::new(); p.inputs.len()],
                suspended: false,
            })
            .collect();
        let scc_ids = workflow.scc_ids();
        let mut scc_sizes: HashMap<usize, usize> = HashMap::new();
        for &id in &scc_ids {
            *scc_sizes.entry(id).or_insert(0) += 1;
        }
        let in_cycle = (0..workflow.processors.len())
            .map(|v| {
                scc_sizes[&scc_ids[v]] > 1
                    || workflow
                        .links
                        .iter()
                        .any(|l| l.from.proc.0 == v && l.to.proc.0 == v)
            })
            .collect();
        let digests = if ctx.store.is_some() {
            workflow
                .processors
                .iter()
                .map(|p| match &p.binding {
                    Some(ServiceBinding::Descriptor {
                        descriptor,
                        profile,
                    }) if !descriptor.nondeterministic => {
                        Some(descriptor_digest(descriptor, profile))
                    }
                    Some(ServiceBinding::Grouped(g))
                        if g.stages.iter().all(|s| !s.descriptor.nondeterministic) =>
                    {
                        Some(group_digest(g))
                    }
                    _ => None,
                })
                .collect()
        } else {
            vec![None; workflow.processors.len()]
        };
        let start_time = ctx.backend.now();
        let n_procs = workflow.processors.len();
        WorkflowInstance {
            workflow,
            config,
            ft,
            rng: Rng::new(config.seed ^ 0x4D4F_5445_5552), // "MOTEUR"
            catalog: Catalog::new(),
            states,
            scc_ids,
            in_cycle,
            pending: HashMap::new(),
            next_invocation: 0,
            jobs_submitted: 0,
            inflight_total: 0,
            bytes_transferred: 0,
            completed: 0,
            slo_breached: false,
            sink_outputs: HashMap::new(),
            sink_counts: HashMap::new(),
            source_cursors: Vec::new(),
            sample_cursors: vec![0; n_procs],
            records: Vec::new(),
            start_time,
            obs,
            history_xml: HistoryXmlCache::new(),
            digests,
            attempt_of: HashMap::new(),
            cancelled_attempts: HashSet::new(),
            deferred: Vec::new(),
            proc_samples: vec![Vec::new(); n_procs],
            ce_failures: HashMap::new(),
            blacklisted: HashSet::new(),
            quarantined: Vec::new(),
        }
    }

    /// Consult the data manager for a ready invocation of `proc`.
    ///
    /// An invocation is memoizable when the processor has a
    /// deterministic service digest and every matched input token has a
    /// provenance key (no [`DataValue::Opaque`] anywhere in its value).
    fn probe_cache<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        matched: &MatchedSet,
    ) -> CacheProbe {
        let Some(digest) = self.digests[proc.0] else {
            return CacheProbe::Uncached;
        };
        if ctx.store.is_none() {
            return CacheProbe::Uncached;
        }
        let prof = self.obs.prof().clone();
        let mut pkeys = Vec::with_capacity(matched.tokens.len());
        {
            let _prof = prof.scope(Subsystem::ProvenanceKey);
            for token in &matched.tokens {
                match self
                    .history_xml
                    .provenance_key(&token.value, &token.history)
                {
                    Some(k) => pkeys.push(k),
                    None => return CacheProbe::Uncached,
                }
            }
        }
        let store = ctx.store.as_deref_mut().expect("checked above");
        let key = invocation_key(&self.workflow.processors[proc.0].name, digest, &pkeys);
        let _prof = prof.scope(Subsystem::StoreIo);
        match store.lookup(key) {
            Some(outputs) => {
                let transfer_seconds = store
                    .fetch_cost()
                    .map_or(0.0, |d| d.sample(&mut self.rng).max(0.0));
                CacheProbe::Hit {
                    outputs,
                    transfer_seconds,
                }
            }
            None => CacheProbe::Miss(key),
        }
    }

    /// Submit a cache hit: the grid job is elided and replaced by a
    /// pure transfer fetching the memoized outputs from the store.
    /// Deliberately does **not** count towards `jobs_submitted` and
    /// emits [`TraceEvent::CacheHit`] instead of `JobSubmitted`.
    fn submit_cached<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        entries: Vec<PendEntry>,
        invocation: InvocationId,
        transfer_seconds: f64,
    ) -> Result<(), MoteurError> {
        let job = BackendJob {
            invocation,
            processor: self.workflow.processors[proc.0].name.clone(),
            payload: JobPayload::Fetch { transfer_seconds },
        };
        let submitted = ctx.backend.now();
        let n_outputs = entries
            .iter()
            .map(|e| e.grid_outputs.as_ref().map_or(0, Vec::len))
            .sum();
        self.obs.emit(|| TraceEvent::CacheHit {
            at: submitted,
            invocation: invocation.0,
            processor: job.processor.clone(),
            outputs: n_outputs,
            transfer_seconds,
        });
        ctx.backend.submit(job.clone())?;
        self.pending.insert(
            invocation.0,
            PendingJob {
                proc,
                entries,
                job,
                retries: 0,
                submitted,
                attempts: vec![invocation.0],
                window_start: submitted,
                // A cache replay is a pure transfer; it never times out.
                muted: true,
                replicas: 0,
            },
        );
        self.states[proc.0].inflight += 1;
        self.inflight_total += 1;
        self.emit_gauges(ctx);
        Ok(())
    }

    fn emit_sources<B: Backend + ?Sized>(
        &mut self,
        inputs: &InputData,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<(), MoteurError> {
        for src in self.workflow.sources() {
            let name = self.workflow.processor(src).name.clone();
            let values = inputs
                .get(&name)
                .ok_or_else(|| MoteurError::new(format!("no input data for source `{name}`")))?
                .to_vec();
            if self.config.port_capacity.is_some() {
                // Streaming: hold the stream back and emit on demand as
                // downstream ports drain (see `pump_sources`).
                self.source_cursors.push(SourceCursor {
                    proc: src,
                    name,
                    values,
                    next: 0,
                });
            } else {
                for (j, value) in values.into_iter().enumerate() {
                    let token = Token::from_source(&name, j as u32, value);
                    self.route(ctx, src, 0, token);
                }
            }
        }
        Ok(())
    }

    /// Streaming mode: emit the next items of every source whose
    /// downstream ports have room, suspending the source (once, with a
    /// trace event) when they fill and resuming it when they drain.
    /// Returns whether anything was emitted. A no-op in eager mode.
    fn pump_sources<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>) -> bool {
        let Some(cap) = self.config.port_capacity else {
            return false;
        };
        let mut emitted = false;
        for c in 0..self.source_cursors.len() {
            let proc = self.source_cursors[c].proc;
            let name = self.source_cursors[c].name.clone();
            loop {
                if self.source_cursors[c].next >= self.source_cursors[c].values.len() {
                    break;
                }
                if !self.has_port_room(proc.0, cap) {
                    self.set_suspended(ctx, proc.0, true, cap);
                    break;
                }
                self.set_suspended(ctx, proc.0, false, cap);
                let j = self.source_cursors[c].next;
                self.source_cursors[c].next += 1;
                let value = self.source_cursors[c].values[j].clone();
                self.route(ctx, proc, 0, Token::from_source(&name, j as u32, value));
                emitted = true;
            }
        }
        emitted
    }

    /// Streaming mode: is there room on every bounded outgoing edge of
    /// `p` for one more data item? Sinks and synchronization
    /// processors are documented unbounded collection points; SP-off
    /// stage barriers and intra-cycle edges must buffer whole streams
    /// by construction, so those edges are exempt too.
    fn has_port_room(&self, p: usize, cap: usize) -> bool {
        if !self.config.service_parallelism {
            return true;
        }
        self.workflow
            .links
            .iter()
            .filter(|l| l.from.proc.0 == p)
            .all(|l| {
                let q = l.to.proc.0;
                let target = &self.workflow.processors[q];
                if target.kind != ProcessorKind::Service || target.synchronization {
                    return true;
                }
                if self.in_cycle[p] && self.scc_ids[q] == self.scc_ids[p] {
                    return true;
                }
                self.port_depth(p, q) < cap
            })
    }

    /// Occupancy of the bounded edge `p → q`: items queued at the
    /// consumer (complete matches plus partial tokens waiting in its
    /// match engine) plus the producer's in-flight invocations, each
    /// of which delivers one more item on completion.
    fn port_depth(&self, p: usize, q: usize) -> usize {
        self.states[q].ready.len() + self.states[q].engine.pending() + self.states[p].inflight
    }

    /// Record a suspend/resume transition of `p`'s output ports,
    /// emitting the trace event only on the edge (idempotent within a
    /// state).
    fn set_suspended<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        p: usize,
        blocked: bool,
        cap: usize,
    ) {
        if self.states[p].suspended == blocked {
            return;
        }
        self.states[p].suspended = blocked;
        if !self.obs.enabled() {
            return;
        }
        let depth = self
            .workflow
            .links
            .iter()
            .filter(|l| l.from.proc.0 == p)
            .map(|l| self.port_depth(p, l.to.proc.0))
            .max()
            .unwrap_or(0);
        let at = ctx.backend.now();
        let processor = self.workflow.processors[p].name.clone();
        self.obs.record(&if blocked {
            TraceEvent::PortSuspended {
                at,
                processor,
                depth,
                capacity: cap,
            }
        } else {
            TraceEvent::PortResumed {
                at,
                processor,
                depth,
                capacity: cap,
            }
        });
    }

    fn event_loop<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<(), MoteurError> {
        let prof = self.obs.prof().clone();
        let _prof = prof.scope(Subsystem::EnactorLoop);
        let result = self.event_loop_inner(ctx);
        if result.is_err() {
            // A workflow abort must not abandon in-flight invocations:
            // cancel their backend jobs and close their spans before
            // the error propagates.
            self.drain_pending(ctx);
        }
        result
    }

    fn event_loop_inner<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<(), MoteurError> {
        loop {
            self.fire_phase(ctx)?;
            if self.inflight_total == 0 {
                break;
            }
            self.service_deferred(ctx)?;
            match self.next_wake() {
                None => {
                    let completion = ctx
                        .backend
                        .wait_next()
                        .ok_or_else(|| MoteurError::new("backend starved with jobs in flight"))?;
                    self.handle_completion(ctx, completion)?;
                }
                Some(deadline) => match ctx.backend.wait_next_until(deadline) {
                    WaitOutcome::Completion(c) => self.handle_completion(ctx, c)?,
                    WaitOutcome::TimedOut => self.handle_timeouts(ctx)?,
                },
            }
        }
        self.deadlock_check()
    }

    /// The one-shot loop's post-conditions: nothing runnable may be
    /// left behind once the instance reports itself idle.
    fn deadlock_check(&self) -> Result<(), MoteurError> {
        for c in &self.source_cursors {
            let left = c.values.len() - c.next;
            if left > 0 {
                return Err(MoteurError::new(format!(
                    "deadlock: source `{}` still holds {left} unemitted items",
                    c.name
                )));
            }
        }
        for (i, st) in self.states.iter().enumerate() {
            let p = &self.workflow.processors[i];
            if !st.ready.is_empty() {
                return Err(MoteurError::new(format!(
                    "deadlock: `{}` still has {} ready invocations",
                    p.name,
                    st.ready.len()
                )));
            }
            if p.synchronization && !st.barrier_fired {
                return Err(MoteurError::new(format!(
                    "deadlock: synchronization processor `{}` never fired",
                    p.name
                )));
            }
        }
        Ok(())
    }

    /// Consume an idle instance and produce its [`WorkflowResult`].
    ///
    /// `now` is the backend clock at completion (the instance holds no
    /// backend borrow, so the caller supplies it). Fails with the same
    /// deadlock post-conditions the one-shot event loop enforces when
    /// runnable work was left behind.
    pub fn finish(self, now: SimTime) -> Result<WorkflowResult, MoteurError> {
        self.deadlock_check()?;
        Ok(WorkflowResult {
            sink_outputs: self.sink_outputs,
            sink_counts: self.sink_counts,
            makespan: now.since(self.start_time),
            invocations: self.records,
            jobs_submitted: self.jobs_submitted,
            bytes_transferred: self.bytes_transferred,
            quarantined: self.quarantined,
        })
    }

    /// The earliest instant anything scheduled by the fault-tolerance
    /// machinery becomes actionable: a pending invocation's timeout
    /// deadline or a backoff-deferred resubmission's due time. `None`
    /// when only completions can move the workflow forward.
    pub fn next_wake(&self) -> Option<SimTime> {
        let mut wake: Option<SimTime> = None;
        for p in self.pending.values() {
            if let Some(d) = self.deadline_of(p) {
                wake = Some(wake.map_or(d, |w| w.min(d)));
            }
        }
        for &(t, _) in &self.deferred {
            wake = Some(wake.map_or(t, |w| w.min(t)));
        }
        wake
    }

    /// Current timeout budget of `proc` in seconds, from its policy and
    /// the observed completion durations. `None` → no timeout applies.
    fn timeout_secs_for(&self, proc: ProcId) -> Option<f64> {
        let name = &self.workflow.processors[proc.0].name;
        self.ft
            .policy_for(name)
            .timeout
            .timeout_secs(&self.proc_samples[proc.0])
    }

    /// The live deadline of one pending invocation. Computed on demand
    /// (not stored) so an adaptive timeout tightens over already-running
    /// jobs as completion samples accrue — exactly the outlier-catching
    /// behaviour a percentile policy promises.
    fn deadline_of(&self, p: &PendingJob) -> Option<SimTime> {
        if p.muted || p.attempts.is_empty() {
            return None;
        }
        self.timeout_secs_for(p.proc)
            .map(|s| p.window_start + SimDuration::from_secs_f64(s))
    }

    /// Deliver a token to every input port linked to `(proc, out_port)`.
    fn route<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        out_port: usize,
        token: Token,
    ) {
        self.obs.emit(|| {
            let producer = &self.workflow.processors[proc.0];
            TraceEvent::TokenEmitted {
                at: ctx.backend.now(),
                processor: producer.name.clone(),
                port: producer.outputs.get(out_port).cloned().unwrap_or_default(),
                index: token.index.to_string(),
            }
        });
        let targets: Vec<(ProcId, usize)> = self
            .workflow
            .links
            .iter()
            .filter(|l| l.from.proc == proc && l.from.port == out_port)
            .map(|l| (l.to.proc, l.to.port))
            .collect();
        for (tp, tport) in targets {
            let target = &self.workflow.processors[tp.0];
            match target.kind {
                ProcessorKind::Sink => {
                    *self.sink_counts.entry(target.name.clone()).or_default() += 1;
                    let out = self.sink_outputs.entry(target.name.clone()).or_default();
                    // Streaming mode keeps only the first
                    // `port_capacity` sink tokens as a sample;
                    // `sink_counts` carries the full tally.
                    if self.config.port_capacity.is_none_or(|cap| out.len() < cap) {
                        out.push(token.clone());
                    }
                }
                ProcessorKind::Service if target.synchronization => {
                    self.states[tp.0].sync_buffers[tport].push(token.clone());
                }
                ProcessorKind::Service => {
                    let matches = self.states[tp.0].engine.push(tport, token.clone());
                    if self.obs.enabled() {
                        for m in &matches {
                            self.obs.record(&TraceEvent::MatchFired {
                                at: ctx.backend.now(),
                                processor: target.name.clone(),
                                index: m.index.to_string(),
                                inputs: m.tokens.len(),
                            });
                        }
                    }
                    self.states[tp.0].ready.extend(matches);
                }
                ProcessorKind::Source => {
                    // A link into a source is rejected by validate();
                    // unreachable in practice.
                }
            }
        }
    }

    /// Fire everything the configuration permits, to fixpoint.
    fn fire_phase<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<usize, MoteurError> {
        self.fire_phase_budgeted(ctx, None)
    }

    /// [`WorkflowInstance::fire_phase`] with an optional submission
    /// budget — the daemon's weighted fair-share quantum. With a
    /// budget of `Some(b)` at most `b` invocations are dispatched
    /// before returning; `None` fires to fixpoint (the one-shot
    /// behaviour, byte-identical traces included). Returns how many
    /// invocations were dispatched.
    fn fire_phase_budgeted<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        budget: Option<usize>,
    ) -> Result<usize, MoteurError> {
        let prof = self.obs.prof().clone();
        let _prof = prof.scope(Subsystem::Fire);
        let mut dispatched = 0usize;
        loop {
            if budget.is_some_and(|b| dispatched >= b) {
                return Ok(dispatched);
            }
            // Streaming: feed the pipeline before firing so ports freed
            // by the previous round pull the next items off the source
            // cursors. Source emission is not a dispatch and never
            // counts against the daemon's budget.
            let mut fired = self.pump_sources(ctx);
            let exhausted = self.compute_exhausted();
            for p in 0..self.workflow.processors.len() {
                let proc = &self.workflow.processors[p];
                if proc.kind != ProcessorKind::Service {
                    continue;
                }
                // `workflow` is owned now, so `proc` cannot outlive a
                // `&mut self` call: hoist what the firing loop needs.
                let synchronization = proc.synchronization;
                let local_binding = matches!(proc.binding, Some(ServiceBinding::Local(_)));
                if synchronization {
                    if !self.states[p].barrier_fired
                        && self.preds_exhausted(p, &exhausted, true)
                        && self.control_ok(p, &exhausted)
                    {
                        self.fire_barrier(ctx, ProcId(p))?;
                        fired = true;
                        dispatched += 1;
                    }
                    continue;
                }
                while !self.states[p].ready.is_empty()
                    && self.can_fire(p, &exhausted)
                    && budget.is_none_or(|b| dispatched < b)
                {
                    if let Some(cap) = self.config.port_capacity {
                        self.set_suspended(ctx, p, false, cap);
                    }
                    let batchable = self.config.data_batching > 1 && !local_binding;
                    if batchable {
                        let k = self.config.data_batching.min(self.states[p].ready.len());
                        let batch: Vec<MatchedSet> = (0..k)
                            .map(|_| self.states[p].ready.pop_front().expect("len checked"))
                            .collect();
                        self.fire_batch(ctx, ProcId(p), batch)?;
                    } else {
                        let matched = self.states[p].ready.pop_front().expect("checked non-empty");
                        self.fire(ctx, ProcId(p), matched)?;
                    }
                    fired = true;
                    dispatched += 1;
                }
                // A processor held back *only* by a full downstream
                // port is suspended: it transitions once into the
                // suspended state and resumes when the port drains.
                if let Some(cap) = self.config.port_capacity {
                    if !self.states[p].ready.is_empty()
                        && self.can_fire_ignoring_room(p, &exhausted)
                        && !self.has_port_room(p, cap)
                    {
                        self.set_suspended(ctx, p, true, cap);
                    }
                }
            }
            if !fired {
                return Ok(dispatched);
            }
        }
    }

    fn can_fire(&self, p: usize, exhausted: &[bool]) -> bool {
        if let Some(cap) = self.config.port_capacity {
            if !self.has_port_room(p, cap) {
                return false;
            }
        }
        self.can_fire_ignoring_room(p, exhausted)
    }

    /// [`WorkflowInstance::can_fire`] minus the streaming port-room
    /// check — the configuration-level gates only (DP, SP, control
    /// links). Used to distinguish "suspended on back-pressure" from
    /// "not runnable anyway".
    fn can_fire_ignoring_room(&self, p: usize, exhausted: &[bool]) -> bool {
        if !self.config.data_parallelism && self.states[p].inflight >= 1 {
            return false;
        }
        if !self.config.service_parallelism && !self.preds_exhausted(p, exhausted, false) {
            return false;
        }
        self.control_ok(p, exhausted)
    }

    /// Are all data predecessors of `p` exhausted? Predecessors inside
    /// the same cycle are skipped unless `include_cycle` (barriers may
    /// not sit inside cycles anyway).
    fn preds_exhausted(&self, p: usize, exhausted: &[bool], include_cycle: bool) -> bool {
        self.workflow.data_preds(ProcId(p)).into_iter().all(|q| {
            if !include_cycle && self.in_cycle[p] && self.scc_ids[q.0] == self.scc_ids[p] {
                true
            } else {
                exhausted[q.0]
            }
        })
    }

    fn control_ok(&self, p: usize, exhausted: &[bool]) -> bool {
        self.workflow
            .control
            .iter()
            .filter(|(_, after)| after.0 == p)
            .all(|(before, _)| exhausted[before.0])
    }

    /// Fixpoint computation of "will emit no more tokens".
    fn compute_exhausted(&self) -> Vec<bool> {
        let n = self.workflow.processors.len();
        let mut ex = vec![false; n];
        loop {
            let mut changed = false;
            for p in 0..n {
                if ex[p] {
                    continue;
                }
                let proc = &self.workflow.processors[p];
                let quiet = self.states[p].ready.is_empty() && self.states[p].inflight == 0;
                let value = match proc.kind {
                    // Eager mode emits whole streams up front; in
                    // streaming mode a source is exhausted only once
                    // its cursor drained.
                    ProcessorKind::Source => self.source_drained(p),
                    ProcessorKind::Sink => self.preds_exhausted(p, &ex, true),
                    ProcessorKind::Service => {
                        if self.in_cycle[p] {
                            // A cycle exhausts collectively: every
                            // member quiet and every external
                            // predecessor exhausted.
                            let scc = self.scc_ids[p];
                            let members: Vec<usize> =
                                (0..n).filter(|&m| self.scc_ids[m] == scc).collect();
                            members.iter().all(|&m| {
                                self.states[m].ready.is_empty()
                                    && self.states[m].inflight == 0
                                    && self
                                        .workflow
                                        .data_preds(ProcId(m))
                                        .into_iter()
                                        .filter(|q| self.scc_ids[q.0] != scc)
                                        .all(|q| ex[q.0])
                            })
                        } else if proc.synchronization {
                            quiet
                                && self.states[p].barrier_fired
                                && self.preds_exhausted(p, &ex, true)
                        } else {
                            quiet && self.preds_exhausted(p, &ex, true)
                        }
                    }
                };
                if value {
                    ex[p] = true;
                    changed = true;
                }
            }
            if !changed {
                return ex;
            }
        }
    }

    /// Streaming mode: drop the file catalog before building a job.
    /// Every job build registers all the files it stages (inputs via
    /// `bind_port`, outputs explicitly), so the catalog only needs the
    /// live job's entries — resetting keeps it O(job) instead of
    /// O(stream length). A no-op in eager mode, where grouped stages
    /// may look up files registered by earlier builds.
    fn reset_catalog_for_streaming(&mut self) {
        if self.config.port_capacity.is_some() {
            self.catalog = Catalog::new();
        }
    }

    /// Will source `p` emit nothing more? Always true in eager mode
    /// (streams are routed up front); cursor-drained in streaming mode.
    fn source_drained(&self, p: usize) -> bool {
        self.source_cursors
            .iter()
            .find(|c| c.proc.0 == p)
            .is_none_or(|c| c.next >= c.values.len())
    }

    fn eval_cost(&mut self, cost: &CostModel, index: &DataIndex) -> f64 {
        eval_cost_with(&mut self.rng, cost, index)
    }

    fn fire<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        matched: MatchedSet,
    ) -> Result<(), MoteurError> {
        self.reset_catalog_for_streaming();
        let binding = self.workflow.processors[proc.0]
            .binding
            .clone()
            .ok_or_else(|| MoteurError::new("firing an unbound processor"))?;
        let invocation = InvocationId(self.next_invocation);
        self.next_invocation += 1;
        let probe = self.probe_cache(ctx, proc, &matched);
        if let CacheProbe::Hit {
            outputs,
            transfer_seconds,
        } = probe
        {
            let entry = PendEntry {
                index: matched.index,
                input_histories: matched.tokens.iter().map(|t| t.history.clone()).collect(),
                grid_outputs: Some(outputs),
                cache_key: None,
            };
            return self.submit_cached(ctx, proc, vec![entry], invocation, transfer_seconds);
        }
        let cache_key = match probe {
            CacheProbe::Miss(key) => {
                self.obs.emit(|| TraceEvent::CacheMiss {
                    at: ctx.backend.now(),
                    invocation: invocation.0,
                    processor: self.workflow.processors[proc.0].name.clone(),
                });
                Some(key)
            }
            _ => None,
        };
        let (payload, grid_outputs) = match &binding {
            ServiceBinding::Local(service) => (
                JobPayload::Local {
                    service: service.clone(),
                    inputs: matched.tokens.clone(),
                },
                None,
            ),
            ServiceBinding::Descriptor {
                descriptor,
                profile,
            } => {
                let (plan, compute, outputs) = self
                    .build_descriptor_job(ctx, proc, descriptor, profile, &matched, invocation)?;
                (
                    JobPayload::Grid {
                        plan,
                        compute_seconds: compute,
                    },
                    Some(outputs),
                )
            }
            ServiceBinding::Grouped(group) => {
                let (plan, compute, outputs) =
                    self.build_grouped_job(ctx, proc, group, &matched, invocation)?;
                (
                    JobPayload::Grid {
                        plan,
                        compute_seconds: compute,
                    },
                    Some(outputs),
                )
            }
        };
        let entry = PendEntry {
            index: matched.index,
            input_histories: matched.tokens.iter().map(|t| t.history.clone()).collect(),
            grid_outputs,
            cache_key,
        };
        self.submit(ctx, proc, vec![entry], invocation, payload)
    }

    /// Submit several ready invocations of one descriptor-bound service
    /// as a single grid job — the paper's §5.4 single-service grouping.
    fn fire_batch<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        batch: Vec<MatchedSet>,
    ) -> Result<(), MoteurError> {
        self.reset_catalog_for_streaming();
        let binding = self.workflow.processors[proc.0]
            .binding
            .clone()
            .ok_or_else(|| MoteurError::new("firing an unbound processor"))?;
        let invocation = InvocationId(self.next_invocation);
        self.next_invocation += 1;
        // Consult the data manager first: memoized members leave the
        // batch and are replayed as individual fetches; only the
        // misses travel to the grid as one grouped job.
        let mut misses: Vec<(MatchedSet, Option<InvocationKey>)> = Vec::with_capacity(batch.len());
        for matched in batch {
            match self.probe_cache(ctx, proc, &matched) {
                CacheProbe::Hit {
                    outputs,
                    transfer_seconds,
                } => {
                    let hit_invocation = InvocationId(self.next_invocation);
                    self.next_invocation += 1;
                    let entry = PendEntry {
                        index: matched.index,
                        input_histories: matched.tokens.iter().map(|t| t.history.clone()).collect(),
                        grid_outputs: Some(outputs),
                        cache_key: None,
                    };
                    self.submit_cached(ctx, proc, vec![entry], hit_invocation, transfer_seconds)?;
                }
                CacheProbe::Miss(key) => misses.push((matched, Some(key))),
                CacheProbe::Uncached => misses.push((matched, None)),
            }
        }
        if misses.is_empty() {
            return Ok(());
        }
        let mut command_lines = Vec::new();
        let mut fetch: Vec<TransferFile> = Vec::new();
        let mut store: Vec<TransferFile> = Vec::new();
        let mut compute_total = 0.0;
        let mut entries = Vec::with_capacity(misses.len());
        for (k, (matched, cache_key)) in misses.into_iter().enumerate() {
            let sub_invocation = InvocationId(invocation.0 * 1_000_000 + k as u64);
            if cache_key.is_some() {
                self.obs.emit(|| TraceEvent::CacheMiss {
                    at: ctx.backend.now(),
                    invocation: sub_invocation.0,
                    processor: self.workflow.processors[proc.0].name.clone(),
                });
            }
            let (plan, compute, outputs) = match &binding {
                ServiceBinding::Descriptor {
                    descriptor,
                    profile,
                } => self.build_descriptor_job(
                    ctx,
                    proc,
                    descriptor,
                    profile,
                    &matched,
                    sub_invocation,
                )?,
                ServiceBinding::Grouped(group) => {
                    self.build_grouped_job(ctx, proc, group, &matched, sub_invocation)?
                }
                ServiceBinding::Local(_) => {
                    return Err(MoteurError::new("local services cannot be batched"))
                }
            };
            command_lines.extend(plan.command_lines);
            for f in plan.fetch {
                if !fetch.iter().any(|e| e.name == f.name) {
                    fetch.push(f);
                }
            }
            store.extend(plan.store);
            compute_total += compute;
            entries.push(PendEntry {
                index: matched.index,
                input_histories: matched.tokens.iter().map(|t| t.history.clone()).collect(),
                grid_outputs: Some(outputs),
                cache_key,
            });
        }
        let plan = JobPlan {
            command_lines,
            fetch,
            store,
        };
        self.submit(
            ctx,
            proc,
            entries,
            invocation,
            JobPayload::Grid {
                plan,
                compute_seconds: compute_total,
            },
        )
    }

    /// Bytes a payload moves over its CE's network link (stage-in +
    /// stage-out). Local and cache-fetch payloads move no grid bytes.
    fn payload_bytes(payload: &JobPayload) -> u64 {
        match payload {
            JobPayload::Grid { plan, .. } => {
                plan.fetch.iter().map(|f| f.bytes).sum::<u64>()
                    + plan.store.iter().map(|f| f.bytes).sum::<u64>()
            }
            _ => 0,
        }
    }

    /// Sample the enactor-side gauges into the trace: in-flight and
    /// backoff-deferred invocations, quarantined items, and the data
    /// manager's occupancy. Called after every transition that moves
    /// one of them; each logical invocation holds exactly one
    /// `inflight` unit from submission to its terminal event, however
    /// many attempts (retries, replicas) it spawns.
    fn emit_gauges<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>) {
        if !self.obs.enabled() {
            return;
        }
        let (cache_entries, cache_bytes) = ctx.store.as_deref().map_or((0, 0), |s| {
            let stats = s.stats();
            (stats.entries, stats.bytes)
        });
        self.obs.record(&TraceEvent::EnactorGauges {
            at: ctx.backend.now(),
            inflight: self.inflight_total,
            deferred: self.deferred.len(),
            quarantined: self.quarantined.len(),
            cache_entries,
            cache_bytes,
        });
    }

    /// Burn-rate check against the configured SLO: extrapolate the
    /// completion time from progress so far and emit
    /// [`TraceEvent::SloBreached`] on the transition into breach.
    fn check_slo<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>) {
        let Some(slo) = self.config.slo else { return };
        if self.completed == 0 || slo.predicted_makespan_secs <= 0.0 {
            return;
        }
        let elapsed = ctx.backend.now().since(self.start_time).as_secs_f64();
        let expected = slo.expected_jobs.max(self.completed);
        let projected = elapsed * expected as f64 / self.completed as f64;
        let breached = projected > slo.predicted_makespan_secs * slo.factor;
        if breached && !self.slo_breached {
            let completed = self.completed;
            self.obs.emit(|| TraceEvent::SloBreached {
                at: ctx.backend.now(),
                predicted_secs: slo.predicted_makespan_secs,
                projected_secs: projected,
                factor: slo.factor,
                completed,
                expected,
            });
        }
        self.slo_breached = breached;
    }

    fn submit<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        entries: Vec<PendEntry>,
        invocation: InvocationId,
        payload: JobPayload,
    ) -> Result<(), MoteurError> {
        let job = BackendJob {
            invocation,
            processor: self.workflow.processors[proc.0].name.clone(),
            payload,
        };
        let submitted = ctx.backend.now();
        // Emit before handing the job to the backend so the enactor's
        // submission event precedes any grid-side event for the same
        // invocation (the simulated broker reacts synchronously).
        self.obs.emit(|| TraceEvent::JobSubmitted {
            at: submitted,
            invocation: invocation.0,
            processor: job.processor.clone(),
            grid: matches!(job.payload, JobPayload::Grid { .. }),
            batched: entries.len(),
        });
        ctx.backend.submit(job.clone())?;
        self.pending.insert(
            invocation.0,
            PendingJob {
                proc,
                entries,
                job,
                retries: 0,
                submitted,
                attempts: vec![invocation.0],
                window_start: submitted,
                muted: false,
                replicas: 0,
            },
        );
        self.states[proc.0].inflight += 1;
        self.inflight_total += 1;
        self.jobs_submitted += 1;
        self.bytes_transferred += Self::payload_bytes(&self.pending[&invocation.0].job.payload);
        self.emit_gauges(ctx);
        Ok(())
    }

    /// Bind one port's token into a descriptor slot.
    fn bind_port(
        binding: Binding,
        descriptor: &ExecutableDescriptor,
        slot_name: &str,
        token: &Token,
        catalog: &mut Catalog,
        proc_name: &str,
    ) -> Result<Binding, MoteurError> {
        let slot = descriptor.input(slot_name).ok_or_else(|| {
            MoteurError::new(format!(
                "`{proc_name}`: input port `{slot_name}` has no matching descriptor slot"
            ))
        })?;
        if slot.is_file() {
            match &token.value {
                DataValue::File { gfn, bytes } => {
                    catalog.register(gfn.clone(), *bytes);
                    Ok(binding.bind_file(slot_name, gfn.clone()))
                }
                other => Err(MoteurError::new(format!(
                    "`{proc_name}`: file slot `{slot_name}` received a non-file value {other:?}"
                ))),
            }
        } else {
            Ok(binding.bind_value(slot_name, token.value.to_param_string()))
        }
    }

    fn output_gfn(&self, proc_name: &str, invocation: InvocationId, slot: &str) -> String {
        format!(
            "gfn://{}/{}/{}/{}",
            self.workflow.name, proc_name, invocation.0, slot
        )
    }

    /// Observed bytes a token contributes to grid stage-in: file sizes,
    /// summed through collected lists. Literal parameters travel inside
    /// the job description and count as zero.
    fn staged_bytes(value: &DataValue) -> u64 {
        match value {
            DataValue::File { bytes, .. } => *bytes,
            DataValue::List(items) => items.iter().map(Self::staged_bytes).sum(),
            _ => 0,
        }
    }

    fn build_descriptor_job<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        descriptor: &ExecutableDescriptor,
        profile: &ServiceProfile,
        matched: &MatchedSet,
        invocation: InvocationId,
    ) -> Result<(JobPlan, f64, ServiceOutputs), MoteurError> {
        let p = &self.workflow.processors[proc.0];
        let mut binding = Binding::new();
        for (port_idx, port_name) in p.inputs.iter().enumerate() {
            let token = &matched.tokens[port_idx];
            self.obs.emit(|| TraceEvent::EdgeStaged {
                at: ctx.backend.now(),
                invocation: invocation.0,
                processor: p.name.clone(),
                port: port_name.clone(),
                bytes: Self::staged_bytes(&token.value),
            });
            binding = Self::bind_port(
                binding,
                descriptor,
                port_name,
                token,
                &mut self.catalog,
                &p.name,
            )?;
        }
        for (slot, value) in &profile.fixed_params {
            binding = binding.bind_value(slot.clone(), value.clone());
        }
        let mut outputs = Vec::new();
        for out in &descriptor.outputs {
            let gfn = self.output_gfn(&p.name, invocation, &out.name);
            let bytes = profile.output_size(&out.name);
            self.catalog.register(gfn.clone(), bytes);
            binding = binding.bind_output(out.name.clone(), gfn.clone(), bytes);
            outputs.push((out.name.clone(), DataValue::File { gfn, bytes }));
        }
        let plan = plan_single(descriptor, &binding, &self.catalog)?;
        let compute = self.eval_cost(&profile.compute.clone(), &matched.index);
        Ok((plan, compute, outputs))
    }

    fn build_grouped_job<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
        group: &GroupedBinding,
        matched: &MatchedSet,
        invocation: InvocationId,
    ) -> Result<(JobPlan, f64, ServiceOutputs), MoteurError> {
        let p = &self.workflow.processors[proc.0];
        let mut members: Vec<GroupMember> = Vec::with_capacity(group.stages.len());
        let mut stage_outputs: Vec<HashMap<String, (String, u64)>> = Vec::new();
        let mut compute_total = 0.0;
        for (k, stage) in group.stages.iter().enumerate() {
            let mut binding = Binding::new();
            for (slot_name, source) in &stage.inputs {
                match source {
                    GroupSource::ExternalPort(i) => {
                        let token = &matched.tokens[*i];
                        self.obs.emit(|| TraceEvent::EdgeStaged {
                            at: ctx.backend.now(),
                            invocation: invocation.0,
                            processor: p.name.clone(),
                            port: p.inputs[*i].clone(),
                            bytes: Self::staged_bytes(&token.value),
                        });
                        binding = Self::bind_port(
                            binding,
                            &stage.descriptor,
                            slot_name,
                            token,
                            &mut self.catalog,
                            &p.name,
                        )?;
                    }
                    GroupSource::StageOutput { stage: j, slot } => {
                        let (gfn, _bytes) = stage_outputs
                            .get(*j)
                            .and_then(|m| m.get(slot))
                            .ok_or_else(|| {
                                MoteurError::new(format!(
                                    "grouped `{}`: stage {k} consumes missing output `{slot}` of stage {j}",
                                    p.name
                                ))
                            })?
                            .clone();
                        binding = binding.bind_file(slot_name.clone(), gfn);
                    }
                }
            }
            for (slot, value) in &stage.profile.fixed_params {
                binding = binding.bind_value(slot.clone(), value.clone());
            }
            let mut outs = HashMap::new();
            for out in &stage.descriptor.outputs {
                let gfn = format!(
                    "gfn://{}/{}~{}/{}/{}",
                    self.workflow.name, p.name, stage.name, invocation.0, out.name
                );
                let bytes = stage.profile.output_size(&out.name);
                self.catalog.register(gfn.clone(), bytes);
                binding = binding.bind_output(out.name.clone(), gfn.clone(), bytes);
                outs.insert(out.name.clone(), (gfn, bytes));
            }
            stage_outputs.push(outs);
            compute_total += eval_cost_with(&mut self.rng, &stage.profile.compute, &matched.index);
            members.push(GroupMember {
                descriptor: stage.descriptor.clone(),
                binding,
            });
        }
        // Exposed outputs become the grouped processor's output tokens,
        // aligned with its output-port order.
        let mut outputs = Vec::new();
        let mut external = Vec::new();
        for (port_idx, (stage_idx, slot)) in group.exposed_outputs.iter().enumerate() {
            let (gfn, bytes) = stage_outputs[*stage_idx]
                .get(slot)
                .ok_or_else(|| {
                    MoteurError::new(format!(
                        "grouped `{}`: exposed output `{slot}` missing from stage {stage_idx}",
                        p.name
                    ))
                })?
                .clone();
            external.push(gfn.clone());
            outputs.push((p.outputs[port_idx].clone(), DataValue::File { gfn, bytes }));
        }
        let plan = compose_group(&members, &self.catalog, &external)?;
        self.obs.emit(|| TraceEvent::GroupComposed {
            at: ctx.backend.now(),
            processor: p.name.clone(),
            stages: group.stages.len(),
            commands: plan.command_lines.len(),
        });
        Ok((plan, compute_total, outputs))
    }

    fn fire_barrier<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        proc: ProcId,
    ) -> Result<(), MoteurError> {
        self.reset_catalog_for_streaming();
        let p = &self.workflow.processors[proc.0];
        let buffers = std::mem::take(&mut self.states[proc.0].sync_buffers);
        let mut tokens = Vec::with_capacity(buffers.len());
        let mut histories = Vec::new();
        for buf in &buffers {
            histories.extend(buf.iter().map(|t| t.history.clone()));
            tokens.push(Token {
                value: DataValue::List(buf.iter().map(|t| t.value.clone()).collect()),
                index: DataIndex::scalar(),
                history: History::derived(
                    format!("{}:collect", p.name),
                    buf.iter().map(|t| t.history.clone()).collect(),
                ),
            });
        }
        self.states[proc.0].barrier_fired = true;
        self.obs.emit(|| TraceEvent::BarrierReleased {
            at: ctx.backend.now(),
            processor: p.name.clone(),
            inputs: buffers.iter().map(Vec::len).sum(),
        });
        let invocation = InvocationId(self.next_invocation);
        self.next_invocation += 1;
        let binding = p
            .binding
            .clone()
            .ok_or_else(|| MoteurError::new("synchronization processor without binding"))?;
        let matched = MatchedSet {
            tokens,
            index: DataIndex::scalar(),
        };
        let entry = |grid_outputs: Option<ServiceOutputs>| PendEntry {
            index: matched.index.clone(),
            input_histories: matched.tokens.iter().map(|t| t.history.clone()).collect(),
            grid_outputs,
            // Synchronization barriers consume whole streams; they are
            // never memoized.
            cache_key: None,
        };
        match &binding {
            ServiceBinding::Local(service) => self.submit(
                ctx,
                proc,
                vec![entry(None)],
                invocation,
                JobPayload::Local {
                    service: service.clone(),
                    inputs: buffers_to_tokens(&buffers, p),
                },
            ),
            ServiceBinding::Descriptor {
                descriptor,
                profile,
            } => {
                // A descriptor-bound barrier consumes arbitrarily many
                // files per slot, which the one-value-per-slot wrapper
                // binding cannot express: build its plan directly.
                let mut fetch: Vec<TransferFile> = Vec::new();
                let mut n_inputs = 0usize;
                for (port_idx, buf) in buffers.iter().enumerate() {
                    for t in buf {
                        self.obs.emit(|| TraceEvent::EdgeStaged {
                            at: ctx.backend.now(),
                            invocation: invocation.0,
                            processor: p.name.clone(),
                            port: p.inputs[port_idx].clone(),
                            bytes: Self::staged_bytes(&t.value),
                        });
                        if let DataValue::File { gfn, bytes } = &t.value {
                            self.catalog.register(gfn.clone(), *bytes);
                            fetch.push(TransferFile {
                                name: gfn.clone(),
                                bytes: *bytes,
                            });
                        }
                        n_inputs += 1;
                    }
                }
                let mut outputs = Vec::new();
                let mut store = Vec::new();
                for out in &descriptor.outputs {
                    let gfn = self.output_gfn(&p.name, invocation, &out.name);
                    let bytes = profile.output_size(&out.name);
                    self.catalog.register(gfn.clone(), bytes);
                    store.push(TransferFile {
                        name: gfn.clone(),
                        bytes,
                    });
                    outputs.push((out.name.clone(), DataValue::File { gfn, bytes }));
                }
                let plan = JobPlan {
                    command_lines: vec![format!(
                        "{} <{} collected inputs>",
                        descriptor.executable.value, n_inputs
                    )],
                    fetch,
                    store,
                };
                let compute = self.eval_cost(&profile.compute.clone(), &DataIndex::scalar());
                self.submit(
                    ctx,
                    proc,
                    vec![entry(Some(outputs))],
                    invocation,
                    JobPayload::Grid {
                        plan,
                        compute_seconds: compute,
                    },
                )
            }
            ServiceBinding::Grouped(_) => Err(MoteurError::new(
                "synchronization processors cannot be grouped",
            )),
        }
    }

    fn handle_completion<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        c: BackendCompletion,
    ) -> Result<(), MoteurError> {
        let tag = c.invocation.0;
        if self.cancelled_attempts.remove(&tag) {
            // Late completion of an attempt the backend could not
            // retract — its invocation was superseded or aborted.
            return Ok(());
        }
        let logical = self.attempt_of.remove(&tag).unwrap_or(tag);
        if !self.pending.contains_key(&logical) {
            return Err(MoteurError::new("completion for unknown invocation"));
        }
        match c.outputs {
            Err(ref message) => {
                let message = message.clone();
                self.handle_failure(ctx, logical, tag, c.ce, message)
            }
            Ok(_) => self.handle_success(ctx, logical, tag, c),
        }
    }

    /// One attempt of `logical` failed. Applies, in order: CE failure
    /// bookkeeping, replica survival (another attempt still racing),
    /// the processor's retry policy (immediate or backoff-deferred
    /// resubmission), and finally terminal failure.
    fn handle_failure<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        logical: u64,
        tag: u64,
        ce: Option<usize>,
        message: String,
    ) -> Result<(), MoteurError> {
        if let Some(ce) = ce {
            self.note_ce_failure(ctx, ce);
        }
        let (proc, live, retries) = {
            let p = self
                .pending
                .get_mut(&logical)
                .expect("caller checked pending");
            p.attempts.retain(|&t| t != tag);
            (p.proc, p.attempts.len(), p.retries)
        };
        if live > 0 {
            // A speculative replica is still running; the race is not
            // lost yet.
            return Ok(());
        }
        let name = self.workflow.processors[proc.0].name.clone();
        let policy = *self.ft.policy_for(&name);
        if retries < policy.retry.max_retries() {
            let retry = retries + 1;
            self.pending
                .get_mut(&logical)
                .expect("still pending")
                .retries = retry;
            let delay = policy.retry.delay(retry, &mut self.rng);
            if delay > 0.0 {
                let due = ctx.backend.now() + SimDuration::from_secs_f64(delay);
                self.deferred.push((due, logical));
                self.emit_gauges(ctx);
            } else {
                self.resubmit(ctx, logical)?;
            }
            return Ok(());
        }
        self.terminal_failure(ctx, logical, message)
    }

    /// Resubmit `logical` now, reusing its logical tag (the previous
    /// attempt has terminally completed, so the tag is free), and
    /// restart its timeout window.
    fn resubmit<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        logical: u64,
    ) -> Result<(), MoteurError> {
        let now = ctx.backend.now();
        let (job, retry, proc) = {
            let p = self
                .pending
                .get_mut(&logical)
                .expect("resubmitted invocation is pending");
            p.attempts = vec![logical];
            p.window_start = now;
            (p.job.clone(), p.retries, p.proc)
        };
        let name = self.workflow.processors[proc.0].name.clone();
        self.obs.emit(|| TraceEvent::JobResubmitted {
            at: now,
            invocation: logical,
            processor: name,
            retry,
            attempt: logical,
        });
        self.bytes_transferred += Self::payload_bytes(&job.payload);
        ctx.backend.submit(job)
    }

    /// Resubmit every backoff-deferred invocation whose due time has
    /// arrived.
    fn service_deferred<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<(), MoteurError> {
        let now = ctx.backend.now();
        let mut due: Vec<u64> = Vec::new();
        self.deferred.retain(|&(t, id)| {
            if t <= now {
                due.push(id);
                false
            } else {
                true
            }
        });
        let serviced = !due.is_empty();
        for logical in due {
            self.resubmit(ctx, logical)?;
        }
        if serviced {
            self.emit_gauges(ctx);
        }
        Ok(())
    }

    /// Act on every pending invocation whose timeout window expired.
    fn handle_timeouts<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
    ) -> Result<(), MoteurError> {
        let now = ctx.backend.now();
        let mut expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| self.deadline_of(p).is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        expired.sort_unstable(); // deterministic order over the HashMap
        for logical in expired {
            self.handle_one_timeout(ctx, logical)?;
        }
        Ok(())
    }

    fn handle_one_timeout<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        logical: u64,
    ) -> Result<(), MoteurError> {
        let now = ctx.backend.now();
        let (proc, retries, replicas) = {
            let p = &self.pending[&logical];
            (p.proc, p.retries, p.replicas)
        };
        let name = self.workflow.processors[proc.0].name.clone();
        let policy = *self.ft.policy_for(&name);
        let budget = self.timeout_secs_for(proc).unwrap_or(0.0);
        match policy.on_timeout {
            TimeoutAction::Resubmit => {
                self.cancel_attempts(ctx, logical);
                if retries < policy.retry.max_retries() {
                    self.obs.emit(|| TraceEvent::JobTimedOut {
                        at: now,
                        invocation: logical,
                        processor: name.clone(),
                        timeout_secs: budget,
                        action: "resubmit",
                    });
                    // Fresh tag: the cancelled attempt may still
                    // surface on backends that cannot retract work.
                    let fresh = self.next_invocation;
                    self.next_invocation += 1;
                    self.attempt_of.insert(fresh, logical);
                    let (mut job, retry) = {
                        let p = self.pending.get_mut(&logical).expect("still pending");
                        p.retries += 1;
                        p.attempts = vec![fresh];
                        p.window_start = now;
                        (p.job.clone(), p.retries)
                    };
                    job.invocation = InvocationId(fresh);
                    self.obs.emit(|| TraceEvent::JobResubmitted {
                        at: now,
                        invocation: logical,
                        processor: name.clone(),
                        retry,
                        attempt: fresh,
                    });
                    self.bytes_transferred += Self::payload_bytes(&job.payload);
                    ctx.backend.submit(job)?;
                } else {
                    self.obs.emit(|| TraceEvent::JobTimedOut {
                        at: now,
                        invocation: logical,
                        processor: name.clone(),
                        timeout_secs: budget,
                        action: "fail",
                    });
                    self.terminal_failure(
                        ctx,
                        logical,
                        format!("timed out after {budget:.1}s with the retry budget exhausted"),
                    )?;
                }
            }
            TimeoutAction::Replicate { max_replicas } => {
                if replicas < max_replicas {
                    self.obs.emit(|| TraceEvent::JobTimedOut {
                        at: now,
                        invocation: logical,
                        processor: name.clone(),
                        timeout_secs: budget,
                        action: "replicate",
                    });
                    let fresh = self.next_invocation;
                    self.next_invocation += 1;
                    self.attempt_of.insert(fresh, logical);
                    let (mut job, n) = {
                        let p = self.pending.get_mut(&logical).expect("still pending");
                        p.replicas += 1;
                        p.attempts.push(fresh);
                        p.window_start = now;
                        (p.job.clone(), p.replicas)
                    };
                    job.invocation = InvocationId(fresh);
                    self.obs.emit(|| TraceEvent::JobReplicated {
                        at: now,
                        invocation: logical,
                        processor: name.clone(),
                        replica: n,
                        attempt: fresh,
                    });
                    self.bytes_transferred += Self::payload_bytes(&job.payload);
                    ctx.backend.submit(job)?;
                } else {
                    // Replica cap reached: let the race run to the end.
                    self.pending.get_mut(&logical).expect("still pending").muted = true;
                }
            }
        }
        Ok(())
    }

    /// Cancel every live attempt of `logical` at the backend. Attempts
    /// the backend cannot retract are remembered so their late
    /// completions are dropped.
    fn cancel_attempts<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>, logical: u64) {
        let attempts = match self.pending.get_mut(&logical) {
            Some(p) => std::mem::take(&mut p.attempts),
            None => return,
        };
        for tag in attempts {
            self.attempt_of.remove(&tag);
            if !ctx.backend.cancel(InvocationId(tag)) {
                self.cancelled_attempts.insert(tag);
            }
        }
    }

    /// Count one enactor-visible failure against `ce`; blacklist it at
    /// the configured consecutive-failure threshold.
    fn note_ce_failure<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>, ce: usize) {
        let n = self.ce_failures.entry(ce).or_insert(0);
        *n += 1;
        let failures = *n;
        if let Some(threshold) = self.ft.ce_blacklist_threshold {
            if failures >= threshold && self.blacklisted.insert(ce) {
                let at = ctx.backend.now();
                ctx.backend.blacklist_ce(ce, true);
                self.obs
                    .emit(|| TraceEvent::CeBlacklisted { at, ce, failures });
            }
        }
    }

    /// `logical` has exhausted its fault-tolerance options. Under
    /// `continue_on_error` the carried data items are quarantined —
    /// no tokens are routed, so their history-tree descendants simply
    /// never fire — and the workflow keeps going; otherwise the
    /// enactment aborts.
    fn terminal_failure<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        logical: u64,
        message: String,
    ) -> Result<(), MoteurError> {
        let pend = self
            .pending
            .remove(&logical)
            .expect("terminal invocation is pending");
        self.states[pend.proc.0].inflight -= 1;
        self.inflight_total -= 1;
        let name = self.workflow.processors[pend.proc.0].name.clone();
        self.obs.emit(|| TraceEvent::JobFailed {
            at: ctx.backend.now(),
            invocation: logical,
            processor: name.clone(),
            error: message.clone(),
        });
        if self.ft.continue_on_error {
            let descendants = self.descendants_of(pend.proc);
            for entry in &pend.entries {
                self.quarantined.push(QuarantineEntry {
                    processor: name.clone(),
                    index: entry.index.to_string(),
                    error: message.clone(),
                    descendants: descendants.clone(),
                });
            }
            self.emit_gauges(ctx);
            Ok(())
        } else {
            Err(MoteurError::new(format!(
                "invocation of `{name}` failed: {message}"
            )))
        }
    }

    /// Downstream processors reachable from `proc` over data links, in
    /// breadth-first order — the descendants a quarantined item will
    /// never reach.
    fn descendants_of(&self, proc: ProcId) -> Vec<String> {
        let mut seen = vec![false; self.workflow.processors.len()];
        seen[proc.0] = true;
        let mut queue = VecDeque::from([proc]);
        let mut out = Vec::new();
        while let Some(p) = queue.pop_front() {
            for l in &self.workflow.links {
                if l.from.proc == p && !seen[l.to.proc.0] {
                    seen[l.to.proc.0] = true;
                    out.push(self.workflow.processors[l.to.proc.0].name.clone());
                    queue.push_back(l.to.proc);
                }
            }
        }
        out
    }

    /// Cancel and close every in-flight invocation: the workflow is
    /// aborting and nothing may be left with an open span or a live
    /// backend job.
    fn drain_pending<B: Backend + ?Sized>(&mut self, ctx: &mut EnactCtx<'_, B>) {
        let at = ctx.backend.now();
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for logical in ids {
            self.cancel_attempts(ctx, logical);
            let pend = self.pending.remove(&logical).expect("listed above");
            self.states[pend.proc.0].inflight -= 1;
            self.inflight_total -= 1;
            let name = self.workflow.processors[pend.proc.0].name.clone();
            self.obs.emit(|| TraceEvent::JobCancelled {
                at,
                invocation: logical,
                processor: name,
                reason: "abort",
            });
        }
        self.deferred.clear();
        self.emit_gauges(ctx);
    }

    /// The winning attempt of `logical` completed: cancel the losers,
    /// record the duration sample, and route the outputs.
    fn handle_success<B: Backend + ?Sized>(
        &mut self,
        ctx: &mut EnactCtx<'_, B>,
        logical: u64,
        winner: u64,
        c: BackendCompletion,
    ) -> Result<(), MoteurError> {
        let mut pend = self
            .pending
            .remove(&logical)
            .expect("caller checked pending");
        self.states[pend.proc.0].inflight -= 1;
        self.inflight_total -= 1;
        let proc_id = pend.proc;
        let name = self.workflow.processors[proc_id.0].name.clone();
        for tag in pend.attempts.drain(..) {
            if tag == winner {
                continue;
            }
            self.attempt_of.remove(&tag);
            if !ctx.backend.cancel(InvocationId(tag)) {
                self.cancelled_attempts.insert(tag);
            }
            let at = ctx.backend.now();
            self.obs.emit(|| TraceEvent::JobCancelled {
                at,
                invocation: tag,
                processor: name.clone(),
                reason: "superseded",
            });
        }
        if let Some(ce) = c.ce {
            // A success resets the CE's consecutive-failure count.
            self.ce_failures.insert(ce, 0);
        }
        let sample = c.finished_at.since(pend.submitted).as_secs_f64();
        let samples = &mut self.proc_samples[proc_id.0];
        if self.config.port_capacity.is_some() && samples.len() >= SAMPLE_RING {
            // Streaming mode bounds the timeout statistics: overwrite
            // the oldest sample (percentiles don't care about order).
            let slot = self.sample_cursors[proc_id.0] % SAMPLE_RING;
            samples[slot] = sample;
            self.sample_cursors[proc_id.0] = self.sample_cursors[proc_id.0].wrapping_add(1);
        } else {
            samples.push(sample);
        }
        let local_outputs = c.outputs.expect("failure case handled by caller");
        for mut entry in pend.entries {
            let outputs = match (&local_outputs, entry.grid_outputs.take()) {
                (_, Some(synthesised)) => synthesised,
                (Some(outs), None) => outs.clone(),
                (None, None) => {
                    return Err(MoteurError::new(
                        "grid completion without synthesised outputs",
                    ))
                }
            };
            let proc_name = self.workflow.processors[proc_id.0].name.clone();
            let proc_outputs = self.workflow.processors[proc_id.0].outputs.clone();
            // Streaming mode keeps only the first `port_capacity`
            // invocation records as a sample (`completed` and
            // `sink_counts` carry the full tallies).
            if self
                .config
                .port_capacity
                .is_none_or(|cap| self.records.len() < cap)
            {
                self.records.push(InvocationRecord {
                    processor: proc_name.clone(),
                    index: entry.index.clone(),
                    submitted: pend.submitted,
                    started: c.started_at,
                    finished: c.finished_at,
                    retries: pend.retries,
                });
            }
            let history = History::derived(proc_name.clone(), entry.input_histories.clone());
            if let Some(key) = entry.cache_key.filter(|_| ctx.store.is_some()) {
                let prof = self.obs.prof().clone();
                let _prof = prof.scope(Subsystem::StoreIo);
                let mut recorded = Vec::with_capacity(outputs.len());
                for (port_name, value) in &outputs {
                    let pk = {
                        let _prof = prof.scope(Subsystem::ProvenanceKey);
                        self.history_xml.provenance_key(value, &history)
                    };
                    let store = ctx.store.as_deref_mut().expect("checked above");
                    match pk.and_then(|k| store.insert_with_key(k, value)) {
                        Some(pk) => recorded.push((port_name.clone(), pk)),
                        None => {
                            recorded.clear();
                            break;
                        }
                    }
                }
                let store = ctx.store.as_deref_mut().expect("checked above");
                // Only a complete output set makes a replayable
                // invocation; partial ones (an Opaque output, or an
                // output too large for the store's budget) are dropped.
                if !recorded.is_empty() && recorded.len() == outputs.len() {
                    store.record_invocation(key, proc_name.clone(), recorded);
                }
            }
            for (port_name, value) in outputs {
                let port_idx = proc_outputs
                    .iter()
                    .position(|o| *o == port_name)
                    .ok_or_else(|| {
                        MoteurError::new(format!(
                            "service `{proc_name}` produced a value on unknown port `{port_name}`"
                        ))
                    })?;
                let token = Token {
                    value,
                    index: entry.index.clone(),
                    history: history.clone(),
                };
                self.route(ctx, proc_id, port_idx, token);
            }
        }
        self.obs.emit(|| TraceEvent::JobCompleted {
            at: ctx.backend.now(),
            invocation: logical,
            processor: self.workflow.processors[proc_id.0].name.clone(),
        });
        self.completed += 1;
        self.check_slo(ctx);
        self.emit_gauges(ctx);
        Ok(())
    }
}

/// Evaluate a cost model against only the rng — a free function so
/// call sites can keep a disjoint borrow of the owned workflow alive.
fn eval_cost_with(rng: &mut Rng, cost: &CostModel, index: &DataIndex) -> f64 {
    match cost {
        CostModel::Fixed(v) => *v,
        CostModel::Stochastic(d) => d.sample(rng),
        CostModel::ByIndex(f) => f(index),
    }
}

/// Input tokens handed to a *local* synchronization service: one list
/// token per port.
fn buffers_to_tokens(buffers: &[Vec<Token>], p: &crate::graph::Processor) -> Vec<Token> {
    buffers
        .iter()
        .map(|buf| Token {
            value: DataValue::List(buf.iter().map(|t| t.value.clone()).collect()),
            index: DataIndex::scalar(),
            history: History::derived(
                format!("{}:collect", p.name),
                buf.iter().map(|t| t.history.clone()).collect(),
            ),
        })
        .collect()
}
