//! Service bindings: what a processor actually runs when it fires.
//!
//! The paper's enactor talks to two kinds of application services (§4.1:
//! "MOTEUR is implementing an interface to both Web Services and
//! GridRPC instrumented application code"). Here the equivalent split
//! is:
//!
//! - [`LocalService`] — an in-process implementation invoked on worker
//!   threads by the local backend (real computation, e.g. the
//!   registration algorithms);
//! - descriptor-bound services — the generic wrapper of §3.6, executed
//!   on the (simulated) grid from an [`ExecutableDescriptor`] plus a
//!   [`ServiceProfile`] describing costs and output sizes.

use crate::token::{DataIndex, Token};
use crate::value::DataValue;
use moteur_gridsim::Distribution;
use moteur_wrapper::ExecutableDescriptor;
use std::fmt;
use std::sync::Arc;

/// An in-process service invoked by the local backend.
///
/// `inputs` arrive in processor input-port order; outputs are
/// `(output-port-name, value)` pairs. Producing values on a *subset* of
/// the output ports implements conditional routing (the optimization
/// loops of paper Fig. 2).
pub trait LocalService: Send + Sync {
    fn invoke(&self, inputs: &[Token]) -> Result<Vec<(String, DataValue)>, String>;
}

/// Blanket impl so closures can be used as services.
impl<F> LocalService for F
where
    F: Fn(&[Token]) -> Result<Vec<(String, DataValue)>, String> + Send + Sync,
{
    fn invoke(&self, inputs: &[Token]) -> Result<Vec<(String, DataValue)>, String> {
        self(inputs)
    }
}

/// Compute-cost model for descriptor-bound services (reference-machine
/// seconds; the grid's CE speeds and jitter scale it).
#[derive(Clone)]
pub enum CostModel {
    /// Constant per invocation.
    Fixed(f64),
    /// Sampled per invocation from a distribution (enactor RNG).
    Stochastic(Distribution),
    /// Determined by the invocation's data index — how the theoretical
    /// model's arbitrary `T[i][j]` matrices are driven in tests.
    ByIndex(Arc<dyn Fn(&DataIndex) -> f64 + Send + Sync>),
}

impl CostModel {
    pub fn by_index(f: impl Fn(&DataIndex) -> f64 + Send + Sync + 'static) -> Self {
        CostModel::ByIndex(Arc::new(f))
    }
}

impl fmt::Debug for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModel::Fixed(v) => write!(f, "Fixed({v})"),
            CostModel::Stochastic(d) => write!(f, "Stochastic({d:?})"),
            CostModel::ByIndex(_) => write!(f, "ByIndex(..)"),
        }
    }
}

/// Execution profile of a descriptor-bound service: everything the
/// descriptor itself (deliberately faithful to Fig. 8) does not say.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    pub compute: CostModel,
    /// Descriptor parameter slots fixed at binding time (e.g. the
    /// crestLines `-s` scale), instead of being fed by a workflow link.
    pub fixed_params: Vec<(String, String)>,
    /// Expected size (bytes) of each output slot, for the transfer
    /// model and catalog registration.
    pub output_bytes: Vec<(String, u64)>,
}

impl ServiceProfile {
    pub fn new(compute_seconds: f64) -> Self {
        ServiceProfile {
            compute: CostModel::Fixed(compute_seconds),
            fixed_params: Vec::new(),
            output_bytes: Vec::new(),
        }
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.compute = cost;
        self
    }

    pub fn with_fixed_param(mut self, slot: impl Into<String>, value: impl Into<String>) -> Self {
        self.fixed_params.push((slot.into(), value.into()));
        self
    }

    pub fn with_output_bytes(mut self, slot: impl Into<String>, bytes: u64) -> Self {
        self.output_bytes.push((slot.into(), bytes));
        self
    }

    pub fn output_size(&self, slot: &str) -> u64 {
        self.output_bytes
            .iter()
            .find(|(s, _)| s == slot)
            .map_or(64 * 1024, |(_, b)| *b)
    }

    pub fn fixed_param(&self, slot: &str) -> Option<&str> {
        self.fixed_params
            .iter()
            .find(|(s, _)| s == slot)
            .map(|(_, v)| v.as_str())
    }
}

/// One stage of a grouped (virtual) service — see `grouping`.
#[derive(Debug, Clone)]
pub struct GroupedStage {
    pub name: String,
    pub descriptor: ExecutableDescriptor,
    pub profile: ServiceProfile,
    /// For each *file/parameter input slot* of the descriptor that is
    /// not a fixed param: where its value comes from.
    pub inputs: Vec<(String, GroupSource)>,
}

/// Where a grouped stage's input slot is fed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupSource {
    /// The grouped processor's external input port with this index.
    ExternalPort(usize),
    /// Output slot `slot` of an earlier member `stage`.
    StageOutput { stage: usize, slot: String },
}

/// Binding of a grouped virtual processor.
#[derive(Debug, Clone)]
pub struct GroupedBinding {
    pub stages: Vec<GroupedStage>,
    /// The grouped processor's output ports: which stage/slot each
    /// exposes, in port order.
    pub exposed_outputs: Vec<(usize, String)>,
}

/// What a processor runs.
#[derive(Clone)]
pub enum ServiceBinding {
    /// In-process service (local backend).
    Local(Arc<dyn LocalService>),
    /// Generic-wrapper service from an executable descriptor (grid
    /// backend).
    Descriptor {
        descriptor: ExecutableDescriptor,
        profile: ServiceProfile,
    },
    /// A virtual grouped service (paper §3.6).
    Grouped(GroupedBinding),
}

impl fmt::Debug for ServiceBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceBinding::Local(_) => write!(f, "Local(..)"),
            ServiceBinding::Descriptor { descriptor, .. } => {
                write!(f, "Descriptor({})", descriptor.executable.name)
            }
            ServiceBinding::Grouped(g) => {
                let names: Vec<&str> = g.stages.iter().map(|s| s.name.as_str()).collect();
                write!(f, "Grouped({})", names.join("+"))
            }
        }
    }
}

impl ServiceBinding {
    pub fn local(service: impl LocalService + 'static) -> Self {
        ServiceBinding::Local(Arc::new(service))
    }

    pub fn descriptor(descriptor: ExecutableDescriptor, profile: ServiceProfile) -> Self {
        ServiceBinding::Descriptor {
            descriptor,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_local_service() {
        let svc = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
            Ok(vec![("out".into(), inputs[0].value.clone())])
        };
        let t = Token::from_source("s", 0, DataValue::from("x"));
        let out = svc.invoke(std::slice::from_ref(&t)).unwrap();
        assert_eq!(out[0].1.as_str(), Some("x"));
    }

    #[test]
    fn profile_builders_and_lookups() {
        let p = ServiceProfile::new(90.0)
            .with_fixed_param("scale", "2")
            .with_output_bytes("crest_reference", 400_000);
        assert_eq!(p.fixed_param("scale"), Some("2"));
        assert_eq!(p.fixed_param("nope"), None);
        assert_eq!(p.output_size("crest_reference"), 400_000);
        assert_eq!(p.output_size("unknown"), 64 * 1024, "default size");
        match p.compute {
            CostModel::Fixed(v) => assert_eq!(v, 90.0),
            _ => panic!("expected fixed cost"),
        }
    }

    #[test]
    fn by_index_cost_model_evaluates() {
        let cost = CostModel::by_index(|idx| 10.0 * (idx.0[0] + 1) as f64);
        match cost {
            CostModel::ByIndex(f) => {
                assert_eq!(f(&DataIndex::single(0)), 10.0);
                assert_eq!(f(&DataIndex::single(2)), 30.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn binding_debug_formats() {
        let b = ServiceBinding::descriptor(
            moteur_wrapper::crest_lines_example(),
            ServiceProfile::new(1.0),
        );
        assert!(format!("{b:?}").contains("CrestLines.pl"));
    }
}
