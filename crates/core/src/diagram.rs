//! ASCII execution diagrams in the style of paper Figs. 4–6.
//!
//! Rows are processors (top to bottom as given), columns are the time
//! intervals between consecutive invocation boundaries. A cell shows
//! the data sets being processed by that service during that interval
//! (`D0`, `D0 D2`, …) or `X` when the service is idle.

use crate::trace::InvocationRecord;
use moteur_gridsim::SimTime;

/// Render an execution diagram for `processors` (row order preserved)
/// from the run's invocation records. Uses the execution window
/// `[started, finished)` of each record.
pub fn render(records: &[InvocationRecord], processors: &[&str]) -> String {
    let relevant: Vec<&InvocationRecord> = records
        .iter()
        .filter(|r| processors.contains(&r.processor.as_str()))
        .collect();
    if relevant.is_empty() {
        return String::new();
    }
    // Column boundaries: every distinct start/finish instant.
    let mut bounds: Vec<SimTime> = relevant
        .iter()
        .flat_map(|r| [r.started, r.finished])
        .collect();
    bounds.sort();
    bounds.dedup();

    // Cell contents.
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(processors.len());
    for proc in processors {
        let mut cells = Vec::with_capacity(bounds.len().saturating_sub(1));
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut active: Vec<String> = relevant
                .iter()
                .filter(|r| r.processor == *proc && r.started < hi && r.finished > lo)
                .map(|r| {
                    let label: Vec<String> = r
                        .index
                        .0
                        .iter()
                        .map(std::string::ToString::to_string)
                        .collect();
                    format!("D{}", label.join("."))
                })
                .collect();
            active.sort();
            active.dedup();
            cells.push(if active.is_empty() {
                "X".to_string()
            } else {
                active.join(" ")
            });
        }
        rows.push(cells);
    }

    // Column widths + row labels.
    let n_cols = bounds.len().saturating_sub(1);
    let mut widths = vec![1usize; n_cols];
    for row in &rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let label_width = processors.iter().map(|p| p.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (proc, row) in processors.iter().zip(&rows) {
        out.push_str(&format!("{proc:label_width$} |"));
        for (c, cell) in row.iter().enumerate() {
            out.push_str(&format!(" {cell:^w$} |", w = widths[c]));
        }
        out.push('\n');
    }
    // Time axis.
    out.push_str(&format!("{:label_width$} +", ""));
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('+');
    }
    out.push('\n');
    out.push_str(&format!(
        "{:label_width$}  t = {}",
        "",
        bounds
            .iter()
            .map(|b| format!("{:.0}", b.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(" / ")
    ));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::DataIndex;

    fn rec(proc: &str, idx: u32, start: f64, end: f64) -> InvocationRecord {
        InvocationRecord {
            processor: proc.into(),
            index: DataIndex::single(idx),
            submitted: SimTime::from_secs_f64(start),
            started: SimTime::from_secs_f64(start),
            finished: SimTime::from_secs_f64(end),
            retries: 0,
        }
    }

    #[test]
    fn empty_records_render_empty() {
        assert_eq!(render(&[], &["P1"]), "");
    }

    #[test]
    fn service_parallel_staircase_matches_fig5_shape() {
        // Fig. 5: SP only, 3 services, 3 data, constant T = 1.
        let mut records = Vec::new();
        for (i, p) in ["P1", "P2", "P3"].iter().enumerate() {
            for j in 0..3u32 {
                let s = (i + j as usize) as f64;
                records.push(rec(p, j, s, s + 1.0));
            }
        }
        let out = render(&records, &["P3", "P2", "P1"]);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("P3 | X  | X  | D0 | D1 | D2 |"), "{out}");
        assert!(lines[1].contains("P2 | X  | D0 | D1 | D2 | X  |"), "{out}");
        assert!(lines[2].contains("P1 | D0 | D1 | D2 | X  | X  |"), "{out}");
    }

    #[test]
    fn data_parallel_cell_lists_concurrent_data() {
        // Fig. 4: DP, all three data in one interval per service.
        let records = vec![
            rec("P1", 0, 0.0, 1.0),
            rec("P1", 1, 0.0, 1.0),
            rec("P1", 2, 0.0, 1.0),
            rec("P2", 0, 1.0, 2.0),
            rec("P2", 1, 1.0, 2.0),
            rec("P2", 2, 1.0, 2.0),
        ];
        let out = render(&records, &["P2", "P1"]);
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[0].contains("X") && lines[0].contains("D0 D1 D2"),
            "{out}"
        );
        assert!(lines[1].starts_with("P1 | D0 D1 D2 |"), "{out}");
    }

    #[test]
    fn time_axis_lists_boundaries() {
        let out = render(&[rec("P1", 0, 0.0, 5.0)], &["P1"]);
        assert!(out.contains("t = 0 / 5"), "{out}");
    }

    #[test]
    fn unknown_processors_are_ignored() {
        let out = render(&[rec("P9", 0, 0.0, 1.0)], &["P1"]);
        assert_eq!(out, "");
    }
}
