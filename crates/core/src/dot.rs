//! Graphviz DOT export of workflow graphs — for documentation and for
//! eyeballing what the grouping transform did to an application.

use crate::graph::{IterationStrategy, ProcessorKind, Workflow};
use crate::service::ServiceBinding;
use std::fmt::Write as _;

/// Render the workflow as a Graphviz `digraph`.
///
/// Sources are house-shaped, sinks inverted-house, synchronization
/// processors doubly-circled (the paper's Fig. 9 double square),
/// grouped virtual services shown as boxed records listing their
/// stages. Control links are dashed.
pub fn to_dot(workflow: &Workflow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&workflow.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for (i, p) in workflow.processors.iter().enumerate() {
        let (shape, extra) = match p.kind {
            ProcessorKind::Source => ("house", String::new()),
            ProcessorKind::Sink => ("invhouse", String::new()),
            ProcessorKind::Service if p.synchronization => ("doubleoctagon", String::new()),
            ProcessorKind::Service => {
                let label = match &p.binding {
                    Some(ServiceBinding::Grouped(g)) => {
                        let stages: Vec<&str> = g.stages.iter().map(|s| s.name.as_str()).collect();
                        format!(", label=\"{}\\n[{}]\"", escape(&p.name), stages.join(" ; "))
                    }
                    _ => String::new(),
                };
                ("box", label)
            }
        };
        let iter_mark = if p.inputs.len() > 1 && p.iteration == IterationStrategy::Cross {
            ", color=purple"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{i} [shape={shape}{extra}{iter_mark}, label=\"{}\"];",
            escape(&p.name)
        );
    }
    for l in &workflow.links {
        let from = &workflow.processors[l.from.proc.0];
        let to = &workflow.processors[l.to.proc.0];
        let _ = writeln!(
            out,
            "  n{} -> n{} [taillabel=\"{}\", headlabel=\"{}\", fontsize=9];",
            l.from.proc.0,
            l.to.proc.0,
            escape(&from.outputs[l.from.port]),
            escape(&to.inputs[l.to.port]),
        );
    }
    for (b, a) in &workflow.control {
        let _ = writeln!(out, "  n{} -> n{} [style=dashed, color=gray];", b.0, a.0);
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceProfile;
    use moteur_wrapper::crest_lines_example;

    fn workflow() -> Workflow {
        let mut w = Workflow::new("demo");
        let s = w.add_source("imgs");
        let p = w.add_service(
            "crestLines",
            &["floating_image", "reference_image"],
            &["crest_reference", "crest_floating"],
            ServiceBinding::descriptor(crest_lines_example(), ServiceProfile::new(1.0)),
        );
        let k = w.add_sink("out");
        w.connect(s, "out", p, "floating_image").unwrap();
        w.connect(s, "out", p, "reference_image").unwrap();
        w.connect(p, "crest_reference", k, "in").unwrap();
        w.add_control(s, p);
        w
    }

    #[test]
    fn renders_nodes_edges_and_control_links() {
        let dot = to_dot(&workflow());
        assert!(dot.starts_with("digraph \"demo\" {"));
        assert!(dot.contains("shape=house"), "{dot}");
        assert!(dot.contains("shape=invhouse"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dashed"), "control link rendered");
        assert!(dot.matches(" -> ").count() >= 4);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn synchronization_processors_get_double_octagons() {
        let mut w = workflow();
        let p = w.find("crestLines").unwrap();
        w.set_synchronization(p, true);
        assert!(to_dot(&w).contains("doubleoctagon"));
    }

    #[test]
    fn grouped_services_list_their_stages() {
        let mut w = Workflow::new("g");
        let s = w.add_source("src");
        let a = w.add_service(
            "A",
            &["floating_image", "reference_image"],
            &["crest_reference", "crest_floating"],
            ServiceBinding::descriptor(crest_lines_example(), ServiceProfile::new(1.0)),
        );
        // A fake 1-slot consumer so grouping applies.
        let mut d = crest_lines_example();
        d.inputs.truncate(1);
        d.inputs[0].name = "crest_reference".into();
        d.outputs.truncate(1);
        let b = w.add_service("B", &["crest_reference"], &["crest_reference"], {
            let mut d2 = d.clone();
            d2.outputs[0].name = "crest_reference".into();
            ServiceBinding::descriptor(d2, ServiceProfile::new(1.0))
        });
        let k = w.add_sink("out");
        w.connect(s, "out", a, "floating_image").unwrap();
        w.connect(s, "out", a, "reference_image").unwrap();
        w.connect(a, "crest_reference", b, "crest_reference")
            .unwrap();
        w.connect(b, "crest_reference", k, "in").unwrap();
        // A has two outputs but only one is linked; grouping requires
        // all out-links to target B, which holds here.
        let g = crate::grouping::group_workflow(&w).unwrap();
        if g.find("A+B").is_some() {
            let dot = to_dot(&g);
            assert!(dot.contains("[A ; B]"), "{dot}");
        }
    }

    #[test]
    fn names_are_escaped() {
        let mut w = Workflow::new("has \"quotes\"");
        w.add_source("s\"rc");
        let dot = to_dot(&w);
        assert!(dot.contains("has \\\"quotes\\\""));
        assert!(dot.contains("s\\\"rc"));
    }
}
