//! Streaming iteration strategies (paper §2.2, Fig. 3).
//!
//! A multi-input service composes its port streams with an iteration
//! strategy: the **dot product** pairs items of equal index (producing
//! `min(n, m)` invocations), the **cross product** combines everything
//! with everything (`n × m` invocations, concatenated index vectors).
//!
//! The engine is *streaming*: tokens arrive in any order (data and
//! service parallelism reorder completions — the causality problem of
//! §3.3), and matches are emitted as soon as they exist. Identity is
//! the token's [`DataIndex`], exactly the provenance-based pairing the
//! paper prescribes.

use crate::graph::IterationStrategy;
use crate::token::{DataIndex, Token};
use std::collections::{BTreeMap, VecDeque};

/// A matched tuple ready to be fired: one token per input port, plus
/// the invocation's result index.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedSet {
    pub tokens: Vec<Token>,
    pub index: DataIndex,
}

/// Per-processor incremental matcher.
#[derive(Debug)]
pub struct MatchEngine {
    strategy: IterationStrategy,
    /// Dot state: per port, tokens queued by index (queues handle loop
    /// feedback where the same index legitimately recurs).
    dot: Vec<BTreeMap<DataIndex, VecDeque<Token>>>,
    /// Cross state: per port, all tokens seen so far.
    cross: Vec<Vec<Token>>,
}

impl MatchEngine {
    pub fn new(strategy: IterationStrategy, ports: usize) -> Self {
        MatchEngine {
            strategy,
            dot: (0..ports).map(|_| BTreeMap::new()).collect(),
            cross: (0..ports).map(|_| Vec::new()).collect(),
        }
    }

    pub fn ports(&self) -> usize {
        self.dot.len()
    }

    /// Feed one token into `port`; returns every invocation tuple this
    /// arrival completes.
    pub fn push(&mut self, port: usize, token: Token) -> Vec<MatchedSet> {
        assert!(port < self.ports(), "port {port} out of range");
        if self.ports() == 1 {
            let index = token.index.clone();
            return vec![MatchedSet {
                tokens: vec![token],
                index,
            }];
        }
        match self.strategy {
            IterationStrategy::Dot => self.push_dot(port, token),
            IterationStrategy::Cross => self.push_cross(port, token),
        }
    }

    fn push_dot(&mut self, port: usize, token: Token) -> Vec<MatchedSet> {
        let index = token.index.clone();
        self.dot[port]
            .entry(index.clone())
            .or_default()
            .push_back(token);
        // A match exists when every port has a queued token at `index`.
        let ready = self
            .dot
            .iter()
            .all(|m| m.get(&index).is_some_and(|q| !q.is_empty()));
        if !ready {
            return Vec::new();
        }
        let tokens: Vec<Token> = self
            .dot
            .iter_mut()
            .map(|m| {
                let q = m.get_mut(&index).expect("checked above");
                let t = q.pop_front().expect("checked non-empty");
                if q.is_empty() {
                    m.remove(&index);
                }
                t
            })
            .collect();
        vec![MatchedSet { tokens, index }]
    }

    fn push_cross(&mut self, port: usize, token: Token) -> Vec<MatchedSet> {
        // Combine the newcomer with every existing combination of the
        // other ports, then retain it.
        let mut partials: Vec<Vec<&Token>> = vec![Vec::new()];
        for (p, seen) in self.cross.iter().enumerate() {
            if p == port {
                continue;
            }
            let mut next = Vec::new();
            for partial in &partials {
                for t in seen {
                    let mut np = partial.clone();
                    np.push(t);
                    next.push(np);
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
        let mut out = Vec::new();
        for combo in partials {
            // Assemble in port order, inserting the new token at `port`.
            let mut tokens: Vec<Token> = Vec::with_capacity(self.ports());
            let mut it = combo.into_iter();
            for p in 0..self.ports() {
                if p == port {
                    tokens.push(token.clone());
                } else {
                    tokens.push((*it.next().expect("combo covers other ports")).clone());
                }
            }
            let index = tokens
                .iter()
                .fold(DataIndex::scalar(), |acc, t| acc.concat(&t.index));
            out.push(MatchedSet { tokens, index });
        }
        self.cross[port].push(token);
        out
    }

    /// Tokens buffered without a complete match yet (dot only; cross
    /// never holds back a possible combination).
    pub fn pending(&self) -> usize {
        match self.strategy {
            IterationStrategy::Dot => self
                .dot
                .iter()
                .map(|m| m.values().map(VecDeque::len).sum::<usize>())
                .sum(),
            IterationStrategy::Cross => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataValue;

    fn tok(src: &str, i: u32) -> Token {
        Token::from_source(src, i, DataValue::Str(format!("{src}{i}")))
    }

    #[test]
    fn single_port_fires_every_token() {
        let mut e = MatchEngine::new(IterationStrategy::Dot, 1);
        let out = e.push(0, tok("a", 3));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, DataIndex::single(3));
    }

    #[test]
    fn dot_pairs_equal_indices_in_order() {
        let mut e = MatchEngine::new(IterationStrategy::Dot, 2);
        assert!(e.push(0, tok("a", 0)).is_empty());
        assert!(e.push(0, tok("a", 1)).is_empty());
        let m = e.push(1, tok("b", 0));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].index, DataIndex::single(0));
        assert_eq!(m[0].tokens[0].value.as_str(), Some("a0"));
        assert_eq!(m[0].tokens[1].value.as_str(), Some("b0"));
        let m = e.push(1, tok("b", 1));
        assert_eq!(m[0].index, DataIndex::single(1));
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn dot_is_order_insensitive() {
        // Tokens arriving out of order (the DP/SP causality problem)
        // still pair by index, not by arrival rank.
        let mut e = MatchEngine::new(IterationStrategy::Dot, 2);
        assert!(e.push(0, tok("a", 1)).is_empty());
        assert!(e.push(1, tok("b", 0)).is_empty());
        let m = e.push(0, tok("a", 0));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].index, DataIndex::single(0));
        let m = e.push(1, tok("b", 1));
        assert_eq!(m[0].index, DataIndex::single(1));
    }

    #[test]
    fn dot_produces_min_n_m_results() {
        let mut e = MatchEngine::new(IterationStrategy::Dot, 2);
        let mut matches = 0;
        for i in 0..5 {
            matches += e.push(0, tok("a", i)).len();
        }
        for i in 0..3 {
            matches += e.push(1, tok("b", i)).len();
        }
        assert_eq!(matches, 3, "min(5, 3)");
        assert_eq!(e.pending(), 2, "two unmatched `a` tokens remain");
    }

    #[test]
    fn dot_with_duplicate_index_queues_fifo() {
        // Loop feedback can resend index 0; pair occurrences in FIFO order.
        let mut e = MatchEngine::new(IterationStrategy::Dot, 2);
        e.push(0, Token::from_source("a", 0, DataValue::from("first")));
        e.push(0, Token::from_source("a", 0, DataValue::from("second")));
        let m1 = e.push(1, tok("b", 0));
        assert_eq!(m1[0].tokens[0].value.as_str(), Some("first"));
        let m2 = e.push(1, tok("b", 0));
        assert_eq!(m2[0].tokens[0].value.as_str(), Some("second"));
    }

    #[test]
    fn cross_produces_n_times_m_results() {
        let mut e = MatchEngine::new(IterationStrategy::Cross, 2);
        let mut total = 0;
        for i in 0..4 {
            total += e.push(0, tok("a", i)).len();
        }
        for j in 0..3 {
            total += e.push(1, tok("b", j)).len();
        }
        assert_eq!(total, 12, "4 × 3 combinations");
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn cross_concatenates_indices_in_port_order() {
        let mut e = MatchEngine::new(IterationStrategy::Cross, 2);
        e.push(0, tok("a", 2));
        let m = e.push(1, tok("b", 5));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].index, DataIndex(vec![2, 5]));
        // New arrival on port 0 pairs with the retained b5.
        let m = e.push(0, tok("a", 3));
        assert_eq!(m[0].index, DataIndex(vec![3, 5]));
    }

    #[test]
    fn cross_with_three_ports() {
        let mut e = MatchEngine::new(IterationStrategy::Cross, 3);
        e.push(0, tok("a", 0));
        e.push(1, tok("b", 0));
        assert!(e.push(1, tok("b", 1)).is_empty(), "port 2 still empty");
        let m = e.push(2, tok("c", 0));
        assert_eq!(m.len(), 2, "1 × 2 × 1 combos completed by c0");
        let e2 = e.push(2, tok("c", 1));
        assert_eq!(e2.len(), 2);
    }

    #[test]
    fn interleaved_arrival_emits_every_cross_combo_exactly_once() {
        let mut e = MatchEngine::new(IterationStrategy::Cross, 2);
        let mut seen = std::collections::HashSet::new();
        let pushes = [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)];
        for (port, i) in pushes {
            for m in e.push(port, tok(if port == 0 { "a" } else { "b" }, i)) {
                assert!(
                    seen.insert(m.index.clone()),
                    "duplicate combo {:?}",
                    m.index
                );
            }
        }
        assert_eq!(seen.len(), 9, "3 × 3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pushing_to_bad_port_panics() {
        MatchEngine::new(IterationStrategy::Dot, 2).push(5, tok("a", 0));
    }
}
