//! Enactor configuration: which of the paper's optimizations are
//! enabled. Workflow (graph) parallelism is inherent and always on.

/// Service-level objective: the makespan the run is expected to track,
/// normally the `crate::lint::predict` eq. 1–4 prediction for the
/// active configuration. With an SLO set, the enactor projects the
/// completion time after every finished invocation
/// (`elapsed × expected_jobs / completed`) and emits
/// [`crate::obs::TraceEvent::SloBreached`] whenever the projection
/// first exceeds `predicted_makespan_secs × factor` — the burn-rate
/// signal an operator alerts on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Predicted makespan in virtual seconds (eq. 1–4).
    pub predicted_makespan_secs: f64,
    /// Breach threshold as a multiple of the prediction (e.g. `1.5`).
    pub factor: f64,
    /// Expected number of completed invocations for the whole run,
    /// used to extrapolate progress into a projected completion time.
    pub expected_jobs: usize,
}

/// Execution configuration — the six experimental configurations of
/// paper Table 1 are combinations of these three flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnactorConfig {
    /// DP: a service may process several data sets concurrently.
    pub data_parallelism: bool,
    /// SP: pipelining — a service may start on data set `j` before its
    /// predecessors finished the rest of the stream.
    pub service_parallelism: bool,
    /// JG: merge sequential descriptor-bound processors into single
    /// grid jobs before enactment.
    pub job_grouping: bool,
    /// Seed for stochastic cost models.
    pub seed: u64,
    /// Enactor-level resubmissions of terminally failed grid jobs.
    pub max_job_retries: u32,
    /// Data batching — the paper's §5.4 future work ("grouping jobs of
    /// a single service, thus finding a trade-off between data
    /// parallelism and the system's overhead"): up to this many ready
    /// invocations of one descriptor-bound service are submitted as a
    /// single grid job. 1 disables batching.
    pub data_batching: usize,
    /// Run the error-severity static lint rules before enacting and
    /// refuse workflows with findings ([`crate::lint::lint_errors`]).
    /// `moteur run --no-verify` turns this off, falling back to the
    /// weaker structural `validate()`.
    pub preflight: bool,
    /// Optional SLO to track during enactment; `None` disables the
    /// burn-rate check.
    pub slo: Option<SloConfig>,
    /// Streaming enactment: bound every inter-processor edge to this
    /// many queued-or-in-flight data items. A producer whose consumer
    /// is full suspends instead of eagerly fanning out, and resumes
    /// when the consumer drains — back-pressure end to end, so peak
    /// memory is O(capacity) instead of O(stream length). `None`
    /// (the default) keeps the legacy eager path: sources emit their
    /// whole stream up front and traces stay byte-identical with
    /// earlier releases.
    pub port_capacity: Option<usize>,
}

impl Default for EnactorConfig {
    fn default() -> Self {
        EnactorConfig {
            data_parallelism: true,
            service_parallelism: true,
            job_grouping: false,
            seed: 0,
            max_job_retries: 5,
            data_batching: 1,
            preflight: true,
            slo: None,
            port_capacity: None,
        }
    }
}

impl EnactorConfig {
    /// NOP: workflow parallelism only (the paper's baseline).
    pub fn nop() -> Self {
        EnactorConfig {
            data_parallelism: false,
            service_parallelism: false,
            job_grouping: false,
            ..Default::default()
        }
    }

    /// JG only.
    pub fn jg() -> Self {
        EnactorConfig {
            job_grouping: true,
            ..Self::nop()
        }
    }

    /// SP only.
    pub fn sp() -> Self {
        EnactorConfig {
            service_parallelism: true,
            ..Self::nop()
        }
    }

    /// DP only.
    pub fn dp() -> Self {
        EnactorConfig {
            data_parallelism: true,
            ..Self::nop()
        }
    }

    /// SP + DP.
    pub fn sp_dp() -> Self {
        EnactorConfig {
            data_parallelism: true,
            service_parallelism: true,
            ..Self::nop()
        }
    }

    /// Resolve a preset by its CLI / protocol label (`nop`, `jg`, `sp`,
    /// `dp`, `sp+dp`, `sp+dp+jg`); `None` for an unknown label.
    pub fn preset(label: &str) -> Option<Self> {
        match label {
            "nop" => Some(Self::nop()),
            "jg" => Some(Self::jg()),
            "sp" => Some(Self::sp()),
            "dp" => Some(Self::dp()),
            "sp+dp" => Some(Self::sp_dp()),
            "sp+dp+jg" => Some(Self::sp_dp_jg()),
            _ => None,
        }
    }

    /// SP + DP + JG — everything on.
    pub fn sp_dp_jg() -> Self {
        EnactorConfig {
            job_grouping: true,
            ..Self::sp_dp()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable data batching (§5.4 future work) with the given batch
    /// size.
    pub fn with_batching(mut self, batch: usize) -> Self {
        self.data_batching = batch.max(1);
        self
    }

    /// Skip the pre-flight lint (`moteur run --no-verify`).
    pub fn without_preflight(mut self) -> Self {
        self.preflight = false;
        self
    }

    /// Track the given SLO during enactment (`moteur run --slo`).
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Enable streaming enactment with bounded ports: at most `cap`
    /// data items queued or in flight per inter-processor edge
    /// (clamped to ≥ 1). See [`EnactorConfig::port_capacity`].
    pub fn with_port_capacity(mut self, cap: usize) -> Self {
        self.port_capacity = Some(cap.max(1));
        self
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match (
            self.service_parallelism,
            self.data_parallelism,
            self.job_grouping,
        ) {
            (false, false, false) => "NOP",
            (false, false, true) => "JG",
            (true, false, false) => "SP",
            (false, true, false) => "DP",
            (true, true, false) => "SP+DP",
            (true, true, true) => "SP+DP+JG",
            (true, false, true) => "SP+JG",
            (false, true, true) => "DP+JG",
        }
    }

    /// The six configurations of Table 1, in the paper's row order.
    pub fn table1_configurations() -> [EnactorConfig; 6] {
        [
            Self::nop(),
            Self::jg(),
            Self::sp(),
            Self::dp(),
            Self::sp_dp(),
            Self::sp_dp_jg(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_rows() {
        let labels: Vec<&str> = EnactorConfig::table1_configurations()
            .iter()
            .map(EnactorConfig::label)
            .collect();
        assert_eq!(labels, ["NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"]);
    }

    #[test]
    fn presets_set_expected_flags() {
        assert!(!EnactorConfig::nop().data_parallelism);
        assert!(!EnactorConfig::nop().service_parallelism);
        assert!(EnactorConfig::dp().data_parallelism);
        assert!(!EnactorConfig::dp().service_parallelism);
        assert!(EnactorConfig::sp_dp_jg().job_grouping);
        assert!(EnactorConfig::default().data_parallelism);
    }

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(EnactorConfig::nop().with_seed(7).seed, 7);
    }

    #[test]
    fn port_capacity_defaults_off_and_clamps_to_one() {
        assert_eq!(EnactorConfig::default().port_capacity, None);
        assert_eq!(EnactorConfig::sp_dp().port_capacity, None);
        assert_eq!(
            EnactorConfig::sp_dp().with_port_capacity(8).port_capacity,
            Some(8)
        );
        assert_eq!(
            EnactorConfig::sp_dp().with_port_capacity(0).port_capacity,
            Some(1)
        );
    }
}
