//! The daemon's control protocol: newline-delimited JSON, schema
//! `moteur/daemon/v1`, served over stdin/stdout or a Unix socket.
//!
//! Every request and response is one JSON object on one line. Requests
//! carry `"schema"` and `"op"`; responses echo `"op"` and report
//! `"ok"`. Responses are byte-stable for a given daemon state — the
//! `status` output in particular is pinned by tests so tooling can
//! diff it.
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `submit` | `tenant`, `workflow` (SCUFL XML), `inputs` (XML), `config` (preset label), `max_retries`, `continue_on_error` | `id`, `state` |
//! | `status` | `id` | full instance status |
//! | `cancel` | `id` | `id`, `state` |
//! | `list` | — | `instances`: array of statuses |
//! | `metrics` | — | daemon gauges, per-tenant families, `openmetrics` text |
//! | `drain` | — | `completed`, `running` |
//! | `shutdown` | — | `ok` (server exits after responding) |

use super::{Daemon, InstanceStatus};
use crate::config::EnactorConfig;
use crate::error::MoteurError;
use crate::ft::FtConfig;
use crate::lint::JsonValue;
use crate::obs::json::{array, JsonObject};
use std::io::{BufRead, Write};

/// Schema tag carried by every protocol message.
pub const DAEMON_SCHEMA: &str = "moteur/daemon/v1";

/// A parsed control request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Submit {
        tenant: String,
        workflow: String,
        inputs: String,
        config: String,
        max_retries: u32,
        continue_on_error: bool,
    },
    Status {
        id: u32,
    },
    Cancel {
        id: u32,
    },
    List,
    Metrics,
    Drain,
    Shutdown,
}

impl Request {
    /// Parse one protocol line. The schema field is mandatory so
    /// protocol drift fails loudly instead of best-effort.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = JsonValue::parse(line)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing `schema`")?;
        if schema != DAEMON_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (expected `{DAEMON_SCHEMA}`)"
            ));
        }
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("missing `op`")?;
        let id = |v: &JsonValue| -> Result<u32, String> {
            v.get("id")
                .and_then(JsonValue::as_usize)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "missing or invalid `id`".into())
        };
        match op {
            "submit" => {
                let field = |k: &str| -> Result<String, String> {
                    v.get(k)
                        .and_then(JsonValue::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| format!("missing `{k}`"))
                };
                Ok(Request::Submit {
                    tenant: field("tenant")?,
                    workflow: field("workflow")?,
                    inputs: field("inputs")?,
                    config: v
                        .get("config")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("sp+dp")
                        .to_owned(),
                    max_retries: v
                        .get("max_retries")
                        .and_then(JsonValue::as_usize)
                        .and_then(|n| u32::try_from(n).ok())
                        .unwrap_or(EnactorConfig::default().max_job_retries),
                    continue_on_error: v
                        .get("continue_on_error")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                })
            }
            "status" => Ok(Request::Status { id: id(&v)? }),
            "cancel" => Ok(Request::Cancel { id: id(&v)? }),
            "list" => Ok(Request::List),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Render the request as one protocol line (the client side).
    pub fn render(&self) -> String {
        let base = JsonObject::new().str("schema", DAEMON_SCHEMA);
        match self {
            Request::Submit {
                tenant,
                workflow,
                inputs,
                config,
                max_retries,
                continue_on_error,
            } => base
                .str("op", "submit")
                .str("tenant", tenant)
                .str("workflow", workflow)
                .str("inputs", inputs)
                .str("config", config)
                .uint("max_retries", u64::from(*max_retries))
                .bool("continue_on_error", *continue_on_error)
                .finish(),
            Request::Status { id } => base.str("op", "status").uint("id", u64::from(*id)).finish(),
            Request::Cancel { id } => base.str("op", "cancel").uint("id", u64::from(*id)).finish(),
            Request::List => base.str("op", "list").finish(),
            Request::Metrics => base.str("op", "metrics").finish(),
            Request::Drain => base.str("op", "drain").finish(),
            Request::Shutdown => base.str("op", "shutdown").finish(),
        }
    }

    fn op_name(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Cancel { .. } => "cancel",
            Request::List => "list",
            Request::Metrics => "metrics",
            Request::Drain => "drain",
            Request::Shutdown => "shutdown",
        }
    }
}

fn respond(op: &str) -> JsonObject {
    JsonObject::new().str("schema", DAEMON_SCHEMA).str("op", op)
}

fn error_response(op: &str, message: &str) -> String {
    respond(op).bool("ok", false).str("error", message).finish()
}

fn opt_num(o: JsonObject, k: &str, v: Option<f64>) -> JsonObject {
    match v {
        Some(v) => o.num(k, v),
        None => o.raw(k, "null"),
    }
}

/// One instance status as a raw JSON object (embedded in `status` and
/// `list` responses). Field order is part of the protocol.
fn status_object(s: &InstanceStatus) -> String {
    let o = JsonObject::new()
        .uint("id", u64::from(s.id))
        .str("tenant", &s.tenant)
        .str("workflow", &s.workflow)
        .str("state", s.state.as_str())
        .num("submitted_at", s.submitted_at);
    let o = opt_num(o, "first_job_at", s.first_job_at);
    let o = opt_num(o, "finished_at", s.finished_at);
    let o = o
        .uint("inflight", s.inflight as u64)
        .uint("jobs_submitted", s.jobs_submitted as u64)
        .uint("store_hits", s.store_hits)
        .uint("store_misses", s.store_misses);
    let o = opt_num(o, "makespan_secs", s.makespan_secs);
    match &s.error {
        Some(e) => o.str("error", e),
        None => o.raw("error", "null"),
    }
    .finish()
}

fn status_response(op: &str, s: &InstanceStatus) -> String {
    respond(op)
        .bool("ok", true)
        .raw("instance", &status_object(s))
        .finish()
}

/// Apply one request to the daemon and render the response line.
pub fn apply(daemon: &mut Daemon, req: &Request) -> String {
    let op = req.op_name();
    match req {
        Request::Submit {
            tenant,
            workflow,
            inputs,
            config,
            max_retries,
            continue_on_error,
        } => {
            let Some(cfg) = EnactorConfig::preset(config) else {
                return error_response(op, &format!("unknown config `{config}`"));
            };
            let ft = FtConfig::from_legacy(*max_retries).with_continue_on_error(*continue_on_error);
            match daemon.submit(tenant, workflow, inputs, cfg, ft) {
                Ok(id) => {
                    let state = daemon.status(id).map_or("queued", |s| s.state.as_str());
                    respond(op)
                        .bool("ok", true)
                        .uint("id", u64::from(id))
                        .str("state", state)
                        .finish()
                }
                Err(e) => error_response(op, e.message()),
            }
        }
        Request::Status { id } => match daemon.status(*id) {
            Some(s) => status_response(op, &s),
            None => error_response(op, &format!("unknown instance id {id}")),
        },
        Request::Cancel { id } => {
            if daemon.cancel(*id) {
                respond(op)
                    .bool("ok", true)
                    .uint("id", u64::from(*id))
                    .str("state", "cancelled")
                    .finish()
            } else {
                error_response(op, &format!("instance {id} is unknown or already finished"))
            }
        }
        Request::List => {
            let items = daemon.list().iter().map(status_object).collect::<Vec<_>>();
            respond(op)
                .bool("ok", true)
                .raw("instances", &array(items))
                .finish()
        }
        Request::Metrics => {
            let m = daemon.metrics();
            let tenants = m
                .tenants
                .iter()
                .map(|t| {
                    JsonObject::new()
                        .str("tenant", &t.tenant)
                        .uint("running", t.running as u64)
                        .uint("queued", t.queued as u64)
                        .uint("inflight_jobs", t.inflight_jobs as u64)
                        .uint("store_hits", t.store_hits)
                        .uint("store_misses", t.store_misses)
                        .num("hit_ratio", t.hit_ratio())
                        .finish()
                })
                .collect::<Vec<_>>();
            respond(op)
                .bool("ok", true)
                .uint("running", m.running as u64)
                .uint("queued", m.queued as u64)
                .uint("succeeded", m.succeeded as u64)
                .uint("failed", m.failed as u64)
                .uint("cancelled", m.cancelled as u64)
                .uint("store_entries", m.store.entries as u64)
                .uint("store_hits", m.store.hits)
                .uint("store_misses", m.store.misses)
                .num("store_hit_ratio", m.store.hit_ratio())
                .raw("tenants", &array(tenants))
                .str("openmetrics", &crate::obs::openmetrics::render_daemon(&m))
                .finish()
        }
        Request::Drain => {
            let completed = daemon.drain();
            respond(op)
                .bool("ok", true)
                .uint("completed", completed as u64)
                .uint("running", 0)
                .finish()
        }
        Request::Shutdown => respond(op).bool("ok", true).finish(),
    }
}

/// Serve the protocol over a line-oriented transport: one request per
/// line in, one response per line out, until EOF or `shutdown`.
/// Returns whether a `shutdown` request ended the session (so a socket
/// accept loop knows to stop accepting, while a plain EOF only ends
/// the connection).
pub fn serve<R: BufRead, W: Write>(
    daemon: &mut Daemon,
    input: R,
    out: &mut W,
) -> std::io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (response, shutdown) = match Request::parse(line) {
            Ok(req) => {
                let shutdown = matches!(req, Request::Shutdown);
                (apply(daemon, &req), shutdown)
            }
            Err(e) => (error_response("error", &e), false),
        };
        writeln!(out, "{response}")?;
        out.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Round-trip every `moteur/daemon/v1` request type through render +
/// parse, so protocol drift fails fast in CI (`moteur daemon
/// --check-protocol`). Returns the op names checked.
pub fn check_protocol() -> Result<Vec<&'static str>, MoteurError> {
    let samples = [
        Request::Submit {
            tenant: "alice".into(),
            workflow: "<scufl name=\"w\"></scufl>".into(),
            inputs: "<inputdata></inputdata>".into(),
            config: "sp+dp".into(),
            max_retries: 5,
            continue_on_error: true,
        },
        Request::Status { id: 7 },
        Request::Cancel { id: 7 },
        Request::List,
        Request::Metrics,
        Request::Drain,
        Request::Shutdown,
    ];
    let mut checked = Vec::new();
    for sample in samples {
        let line = sample.render();
        let back = Request::parse(&line)
            .map_err(|e| MoteurError::new(format!("{}: {e}", sample.op_name())))?;
        if back != sample {
            return Err(MoteurError::new(format!(
                "op `{}` did not round-trip: {line}",
                sample.op_name()
            )));
        }
        checked.push(sample.op_name());
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_round_trips() {
        let ops = check_protocol().expect("protocol is self-consistent");
        assert_eq!(
            ops,
            vec!["submit", "status", "cancel", "list", "metrics", "drain", "shutdown"]
        );
    }

    #[test]
    fn parse_rejects_wrong_schema_and_unknown_op() {
        let err = Request::parse(r#"{"schema":"moteur/daemon/v0","op":"list"}"#).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        let err =
            Request::parse(&format!(r#"{{"schema":"{DAEMON_SCHEMA}","op":"zap"}}"#)).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn submit_defaults_follow_the_one_shot_cli() {
        let line = format!(
            r#"{{"schema":"{DAEMON_SCHEMA}","op":"submit","tenant":"t","workflow":"<w/>","inputs":"<i/>"}}"#
        );
        let req = Request::parse(&line).unwrap();
        let Request::Submit {
            config,
            max_retries,
            continue_on_error,
            ..
        } = req
        else {
            panic!("parsed a submit")
        };
        assert_eq!(config, "sp+dp");
        assert_eq!(max_retries, EnactorConfig::default().max_job_retries);
        assert!(!continue_on_error);
    }
}
