//! Multi-tenant enactment daemon: a long-lived service multiplexing
//! many concurrent [`WorkflowInstance`]s over one shared backend and
//! one shared provenance memo table.
//!
//! The paper's MOTEUR enactor is a one-shot engine — load one SCUFL
//! workflow, enact it, exit. The daemon is the production step beyond
//! the paper (ROADMAP item 1): `submit` accepts SCUFL source plus a
//! tenant id, every live instance is stepped cooperatively through the
//! resumable [`WorkflowInstance`] state machine, and the shared
//! [`DataStore`] turns the data-parallel cache into a *cross-tenant*
//! memo table — the second tenant submitting an identical workflow
//! replays the first tenant's results instead of recomputing them.
//!
//! Isolation comes from [`ScopedBackend`]: each instance's invocation
//! tags live in a disjoint 32-bit-shifted namespace, so completions
//! route back to their owner and a cancel can never retract a
//! sibling's jobs. Fairness comes from weighted round-robin dispatch:
//! each scheduling round gives every tenant a dispatch budget of
//! `weight × quantum` invocations (further capped by the tenant's
//! in-flight job ceiling), so one flooding tenant cannot starve the
//! rest. Admission control bounds live workflows per tenant; excess
//! submissions queue and admit as earlier ones finish.
//!
//! The control protocol lives in [`protocol`]: newline-delimited JSON
//! (`moteur/daemon/v1`) served over stdin/stdout or a Unix socket by
//! `moteur daemon`.

pub mod protocol;

use crate::backend::{Backend, BackendCompletion, InvocationId, ScopedBackend, WaitOutcome};
use crate::config::EnactorConfig;
use crate::enactor::{EnactCtx, InputData, WorkflowInstance};
use crate::error::MoteurError;
use crate::ft::FtConfig;
use crate::graph::Workflow;
use crate::obs::Obs;
use crate::store::{DataStore, StoreStats};
use moteur_gridsim::SimTime;
use std::collections::BTreeMap;

/// How the daemon turns SCUFL source into an enactable workflow.
///
/// The core crate has no SCUFL parser (that lives in `moteur-scufl`,
/// which depends on core), so the embedder injects one: the two
/// arguments are the workflow XML and the input-data XML.
pub type ScuflParser = fn(&str, &str) -> Result<(Workflow, InputData), MoteurError>;

/// Per-tenant admission and fairness knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Relative share of each scheduling round's dispatch budget.
    pub weight: u32,
    /// Live (admitted, unfinished) workflows allowed at once; further
    /// submissions queue.
    pub max_inflight_workflows: usize,
    /// Backend jobs the tenant may have in flight across all its
    /// instances.
    pub max_inflight_jobs: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            max_inflight_workflows: 4,
            max_inflight_jobs: 256,
        }
    }
}

/// Daemon-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    /// Applied to tenants without an explicit override.
    pub tenant_defaults: TenantConfig,
    /// Invocations one weight unit may dispatch per scheduling round;
    /// `0` is treated as `1`.
    pub quantum: usize,
    /// Per-tenant overrides of the defaults.
    pub tenant_overrides: BTreeMap<String, TenantConfig>,
}

impl DaemonConfig {
    /// The effective configuration of `tenant`.
    pub fn tenant(&self, tenant: &str) -> TenantConfig {
        self.tenant_overrides
            .get(tenant)
            .copied()
            .unwrap_or(self.tenant_defaults)
    }

    fn quantum(&self) -> usize {
        self.quantum.max(1)
    }
}

/// Lifecycle of one submitted workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Accepted but waiting for an admission slot.
    Queued,
    /// Admitted and being stepped.
    Running,
    /// Finished with a valid [`crate::WorkflowResult`].
    Succeeded,
    /// Terminally failed (enactment error or deadlock).
    Failed,
    /// Cancelled by the tenant; in-flight jobs were drained.
    Cancelled,
}

impl InstanceState {
    /// Protocol label (`queued`, `running`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            InstanceState::Queued => "queued",
            InstanceState::Running => "running",
            InstanceState::Succeeded => "succeeded",
            InstanceState::Failed => "failed",
            InstanceState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(self) -> bool {
        matches!(
            self,
            InstanceState::Succeeded | InstanceState::Failed | InstanceState::Cancelled
        )
    }
}

/// A parsed submission waiting for admission.
struct QueuedWork {
    workflow: Workflow,
    inputs: InputData,
    config: EnactorConfig,
    ft: FtConfig,
}

enum Body {
    Queued(Box<QueuedWork>),
    Running(Box<WorkflowInstance>),
    Finished,
}

struct Slot {
    id: u32,
    tenant: String,
    workflow_name: String,
    state: InstanceState,
    submitted_at: SimTime,
    first_job_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    error: Option<String>,
    store_hits: u64,
    store_misses: u64,
    jobs_submitted: usize,
    makespan_secs: Option<f64>,
    body: Body,
}

impl Slot {
    fn inflight(&self) -> usize {
        match &self.body {
            Body::Running(i) => i.inflight(),
            _ => 0,
        }
    }
}

#[derive(Default)]
struct TenantState {
    store_hits: u64,
    store_misses: u64,
}

/// Point-in-time view of one instance, rendered by `status` / `list`.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStatus {
    pub id: u32,
    pub tenant: String,
    pub workflow: String,
    pub state: InstanceState,
    pub submitted_at: f64,
    pub first_job_at: Option<f64>,
    pub finished_at: Option<f64>,
    pub inflight: usize,
    pub jobs_submitted: usize,
    pub store_hits: u64,
    pub store_misses: u64,
    pub makespan_secs: Option<f64>,
    pub error: Option<String>,
}

/// Per-tenant slice of [`DaemonMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    pub tenant: String,
    pub running: usize,
    pub queued: usize,
    pub inflight_jobs: usize,
    pub store_hits: u64,
    pub store_misses: u64,
}

impl TenantMetrics {
    /// Hits over lookups attributed to this tenant; 0 with no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.store_hits + self.store_misses;
        if total == 0 {
            0.0
        } else {
            self.store_hits as f64 / total as f64
        }
    }
}

/// Daemon-level gauges plus per-tenant label families.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonMetrics {
    pub running: usize,
    pub queued: usize,
    pub succeeded: usize,
    pub failed: usize,
    pub cancelled: usize,
    pub store: StoreStats,
    pub tenants: Vec<TenantMetrics>,
}

/// The multi-tenant enactment service.
pub struct Daemon {
    backend: Box<dyn Backend>,
    store: DataStore,
    parser: ScuflParser,
    config: DaemonConfig,
    tenants: BTreeMap<String, TenantState>,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("instances", &self.slots.len())
            .field("tenants", &self.tenants.len())
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// A daemon over `backend` with `store` as the shared memo table.
    pub fn new(
        backend: Box<dyn Backend>,
        store: DataStore,
        parser: ScuflParser,
        config: DaemonConfig,
    ) -> Self {
        Daemon {
            backend,
            store,
            parser,
            config,
            tenants: BTreeMap::new(),
            slots: Vec::new(),
        }
    }

    /// Override the admission / fairness knobs of one tenant. A weight
    /// of zero is rejected: it would grant the tenant a zero dispatch
    /// budget every round, silently starving its admitted workflows
    /// forever.
    pub fn set_tenant(&mut self, tenant: &str, config: TenantConfig) -> Result<(), MoteurError> {
        if config.weight == 0 {
            return Err(MoteurError::new(format!(
                "tenant `{tenant}`: weight 0 would starve its workflows \
                 forever; use a positive weight"
            )));
        }
        self.config.tenant_overrides.insert(tenant.into(), config);
        Ok(())
    }

    /// Shared memo table (for inspection; the daemon owns it).
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Current backend clock.
    pub fn now(&self) -> SimTime {
        self.backend.now()
    }

    /// Accept a workflow submission from `tenant`. The source is
    /// parsed immediately (malformed SCUFL is rejected here, not
    /// later); the instance is admitted at once when the tenant has a
    /// free workflow slot, otherwise it queues. Returns the instance
    /// id used by `status` / `cancel`.
    pub fn submit(
        &mut self,
        tenant: &str,
        workflow_xml: &str,
        inputs_xml: &str,
        config: EnactorConfig,
        ft: FtConfig,
    ) -> Result<u32, MoteurError> {
        if self.config.tenant(tenant).weight == 0 {
            // A zero-weight tenant gets a zero dispatch budget every
            // round: its workflows would admit and then hang forever.
            // Reject loudly at the protocol boundary instead.
            return Err(MoteurError::new(format!(
                "tenant `{tenant}` has weight 0 and would never be \
                 scheduled; configure a positive weight"
            )));
        }
        let (workflow, inputs) = (self.parser)(workflow_xml, inputs_xml)?;
        let id = u32::try_from(self.slots.len() + 1)
            .map_err(|_| MoteurError::new("daemon instance table full"))?;
        self.tenants.entry(tenant.into()).or_default();
        self.slots.push(Slot {
            id,
            tenant: tenant.into(),
            workflow_name: workflow.name.clone(),
            state: InstanceState::Queued,
            submitted_at: self.backend.now(),
            first_job_at: None,
            finished_at: None,
            error: None,
            store_hits: 0,
            store_misses: 0,
            jobs_submitted: 0,
            makespan_secs: None,
            body: Body::Queued(Box::new(QueuedWork {
                workflow,
                inputs,
                config,
                ft,
            })),
        });
        self.schedule();
        Ok(id)
    }

    /// Cancel a queued or running instance, draining its in-flight
    /// jobs from the shared backend ([`WorkflowInstance::abort`]
    /// through a [`ScopedBackend`] retracts only this instance's
    /// attempt tags). `false` when the id is unknown or the instance
    /// already reached a terminal state.
    pub fn cancel(&mut self, id: u32) -> bool {
        let Some(i) = self.slot_index(id) else {
            return false;
        };
        if self.slots[i].state.is_terminal() {
            return false;
        }
        let slot = &mut self.slots[i];
        if let Body::Running(instance) = &mut slot.body {
            let mut scoped = ScopedBackend::new(self.backend.as_mut(), slot.id);
            let mut ctx = EnactCtx {
                backend: &mut scoped,
                store: Some(&mut self.store),
            };
            instance.abort(&mut ctx);
        }
        slot.body = Body::Finished;
        slot.state = InstanceState::Cancelled;
        slot.finished_at = Some(self.backend.now());
        // A workflow slot freed up; admit queued work.
        self.schedule();
        true
    }

    /// Status of one instance; `None` for an unknown id.
    pub fn status(&self, id: u32) -> Option<InstanceStatus> {
        self.slot_index(id).map(|i| self.status_of(&self.slots[i]))
    }

    /// Status of every instance, in submission order.
    pub fn list(&self) -> Vec<InstanceStatus> {
        self.slots.iter().map(|s| self.status_of(s)).collect()
    }

    /// Daemon gauges plus per-tenant families, tenants sorted by name.
    pub fn metrics(&self) -> DaemonMetrics {
        let mut running = 0;
        let mut queued = 0;
        let mut succeeded = 0;
        let mut failed = 0;
        let mut cancelled = 0;
        for s in &self.slots {
            match s.state {
                InstanceState::Queued => queued += 1,
                InstanceState::Running => running += 1,
                InstanceState::Succeeded => succeeded += 1,
                InstanceState::Failed => failed += 1,
                InstanceState::Cancelled => cancelled += 1,
            }
        }
        let tenants = self
            .tenants
            .iter()
            .map(|(name, t)| TenantMetrics {
                tenant: name.clone(),
                running: self.count_state(name, InstanceState::Running),
                queued: self.count_state(name, InstanceState::Queued),
                inflight_jobs: self.tenant_inflight_jobs(name),
                store_hits: t.store_hits,
                store_misses: t.store_misses,
            })
            .collect();
        DaemonMetrics {
            running,
            queued,
            succeeded,
            failed,
            cancelled,
            store: self.store.stats(),
            tenants,
        }
    }

    /// Step the daemon through one backend wait: admit and pump every
    /// runnable instance, then block on the earliest of the next
    /// completion and the next fault-tolerance deadline. Returns
    /// `false` once no instance is queued or running.
    pub fn step(&mut self) -> bool {
        self.schedule();
        let live: Vec<u32> = self
            .slots
            .iter()
            .filter(|s| s.state == InstanceState::Running)
            .map(|s| s.id)
            .collect();
        if live.is_empty() {
            // Queued without running can only mean admission is wedged
            // (a tenant configured with zero workflow slots).
            return false;
        }
        let mut wake: Option<SimTime> = None;
        for &id in &live {
            let i = self.slot_index(id).expect("listed above");
            if let Body::Running(instance) = &self.slots[i].body {
                if let Some(w) = instance.next_wake() {
                    wake = Some(wake.map_or(w, |c| c.min(w)));
                }
            }
        }
        match wake {
            None => match self.backend.wait_next() {
                Some(c) => self.route(c),
                None => {
                    // Running instances but nothing at the backend and
                    // no timer: the shared backend lost their jobs.
                    // Fail them rather than spin forever.
                    for id in live {
                        self.fail(
                            id,
                            "backend returned no completion for in-flight work".into(),
                        );
                    }
                }
            },
            Some(deadline) => match self.backend.wait_next_until(deadline) {
                WaitOutcome::Completion(c) => self.route(c),
                WaitOutcome::TimedOut => {
                    for id in live {
                        self.timer(id);
                    }
                }
            },
        }
        true
    }

    /// Run [`Daemon::step`] until every instance reaches a terminal
    /// state; returns how many succeeded overall.
    pub fn drain(&mut self) -> usize {
        while self.step() {}
        self.slots
            .iter()
            .filter(|s| s.state == InstanceState::Succeeded)
            .count()
    }

    // -- internals ----------------------------------------------------

    fn slot_index(&self, id: u32) -> Option<usize> {
        // Ids are 1-based submission order.
        let i = (id as usize).checked_sub(1)?;
        (i < self.slots.len()).then_some(i)
    }

    fn status_of(&self, s: &Slot) -> InstanceStatus {
        InstanceStatus {
            id: s.id,
            tenant: s.tenant.clone(),
            workflow: s.workflow_name.clone(),
            state: s.state,
            submitted_at: s.submitted_at.as_secs_f64(),
            first_job_at: s.first_job_at.map(SimTime::as_secs_f64),
            finished_at: s.finished_at.map(SimTime::as_secs_f64),
            inflight: s.inflight(),
            jobs_submitted: s.jobs_submitted,
            store_hits: s.store_hits,
            store_misses: s.store_misses,
            makespan_secs: s.makespan_secs,
            error: s.error.clone(),
        }
    }

    fn count_state(&self, tenant: &str, state: InstanceState) -> usize {
        self.slots
            .iter()
            .filter(|s| s.tenant == tenant && s.state == state)
            .count()
    }

    fn tenant_inflight_jobs(&self, tenant: &str) -> usize {
        self.slots
            .iter()
            .filter(|s| s.tenant == tenant)
            .map(Slot::inflight)
            .sum()
    }

    /// Credit a store-stats delta to slot `i` and its tenant.
    fn attribute(&mut self, i: usize, before: StoreStats) {
        let after = self.store.stats();
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        let slot = &mut self.slots[i];
        slot.store_hits += hits;
        slot.store_misses += misses;
        if let Some(t) = self.tenants.get_mut(&slot.tenant) {
            t.store_hits += hits;
            t.store_misses += misses;
        }
    }

    fn fail(&mut self, id: u32, message: String) {
        let Some(i) = self.slot_index(id) else { return };
        let slot = &mut self.slots[i];
        if let Body::Running(instance) = &mut slot.body {
            let mut scoped = ScopedBackend::new(self.backend.as_mut(), slot.id);
            let mut ctx = EnactCtx {
                backend: &mut scoped,
                store: Some(&mut self.store),
            };
            instance.abort(&mut ctx);
        }
        slot.body = Body::Finished;
        slot.state = InstanceState::Failed;
        slot.error = Some(message);
        slot.finished_at = Some(self.backend.now());
    }

    /// Admission + weighted fair dispatch + reaping, to fixpoint.
    fn schedule(&mut self) {
        loop {
            self.admit();
            let dispatched = self.dispatch_round();
            // Finished instances free admission slots mid-fixpoint.
            self.reap();
            if dispatched == 0 && !self.has_admittable() {
                break;
            }
        }
    }

    /// One weighted round-robin dispatch round: each tenant gets a
    /// budget of `weight × quantum` dispatches (capped by its
    /// in-flight job ceiling), spread over its running instances in
    /// submission order. [`Daemon::schedule`] repeats rounds until one
    /// dispatches nothing, so dispatch reaches the same fixpoint as
    /// the one-shot engine's fire-to-fixpoint phase — just interleaved
    /// fairly across tenants.
    fn dispatch_round(&mut self) -> usize {
        let tenant_names: Vec<String> = self.tenants.keys().cloned().collect();
        let mut dispatched = 0;
        for tenant in &tenant_names {
            let cfg = self.config.tenant(tenant);
            // saturating_mul: an extreme `--weights` value must clamp
            // the budget, not overflow it to a tiny (or panicking) cap.
            let cap = (cfg.weight as usize)
                .saturating_mul(self.config.quantum())
                .min(
                    cfg.max_inflight_jobs
                        .saturating_sub(self.tenant_inflight_jobs(tenant)),
                );
            let mut remaining = cap;
            let ids: Vec<u32> = self
                .slots
                .iter()
                .filter(|s| s.tenant == *tenant && s.state == InstanceState::Running)
                .map(|s| s.id)
                .collect();
            for id in ids {
                if remaining == 0 {
                    break;
                }
                let fired = self.pump(id, Some(remaining));
                remaining -= fired.min(remaining);
                dispatched += fired;
            }
        }
        dispatched
    }

    /// Is any queued submission admissible right now?
    fn has_admittable(&self) -> bool {
        self.slots.iter().any(|s| {
            s.state == InstanceState::Queued
                && self.count_state(&s.tenant, InstanceState::Running)
                    < self.config.tenant(&s.tenant).max_inflight_workflows
        })
    }

    /// Admit queued submissions whose tenant has a free workflow slot.
    fn admit(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].state != InstanceState::Queued {
                continue;
            }
            let tenant = self.slots[i].tenant.clone();
            let cfg = self.config.tenant(&tenant);
            if self.count_state(&tenant, InstanceState::Running) >= cfg.max_inflight_workflows {
                continue;
            }
            let body = std::mem::replace(&mut self.slots[i].body, Body::Finished);
            let Body::Queued(work) = body else {
                unreachable!("queued state carries queued work")
            };
            let before = self.store.stats();
            let id = self.slots[i].id;
            let mut scoped = ScopedBackend::new(self.backend.as_mut(), id);
            let mut ctx = EnactCtx {
                backend: &mut scoped,
                store: Some(&mut self.store),
            };
            match WorkflowInstance::start(
                &work.workflow,
                &work.inputs,
                work.config,
                work.ft,
                &mut ctx,
                Obs::off(),
            ) {
                Ok(instance) => {
                    self.slots[i].body = Body::Running(Box::new(instance));
                    self.slots[i].state = InstanceState::Running;
                    self.attribute(i, before);
                }
                Err(e) => {
                    self.attribute(i, before);
                    self.fail(id, e.message().into());
                }
            }
        }
    }

    /// Pump one running instance under a dispatch budget; returns how
    /// many invocations it dispatched. Errors fail the instance.
    fn pump(&mut self, id: u32, budget: Option<usize>) -> usize {
        let Some(i) = self.slot_index(id) else {
            return 0;
        };
        let before = self.store.stats();
        let slot = &mut self.slots[i];
        let Body::Running(instance) = &mut slot.body else {
            return 0;
        };
        let mut scoped = ScopedBackend::new(self.backend.as_mut(), slot.id);
        let mut ctx = EnactCtx {
            backend: &mut scoped,
            store: Some(&mut self.store),
        };
        let result = instance.pump_budgeted(&mut ctx, budget);
        let jobs = instance.jobs_submitted();
        self.slots[i].jobs_submitted = jobs;
        self.attribute(i, before);
        match result {
            Ok(fired) => {
                if fired > 0 && self.slots[i].first_job_at.is_none() {
                    self.slots[i].first_job_at = Some(self.backend.now());
                }
                fired
            }
            Err(e) => {
                self.fail(id, e.message().into());
                0
            }
        }
    }

    /// Finish every running instance whose work is exhausted. Mirrors
    /// the one-shot loop's exit condition: after a fire-to-fixpoint
    /// with nothing dispatched, zero in-flight work means done.
    fn reap(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].state != InstanceState::Running || self.slots[i].inflight() > 0 {
                continue;
            }
            // A final unbudgeted pump distinguishes "done" from "ready
            // work parked behind a budget cap".
            let id = self.slots[i].id;
            if self.pump(id, None) > 0 || self.slots[i].state != InstanceState::Running {
                continue;
            }
            let body = std::mem::replace(&mut self.slots[i].body, Body::Finished);
            let Body::Running(instance) = body else {
                unreachable!("running state carries an instance")
            };
            let now = self.backend.now();
            let slot = &mut self.slots[i];
            slot.finished_at = Some(now);
            match instance.finish(now) {
                Ok(result) => {
                    slot.state = InstanceState::Succeeded;
                    slot.jobs_submitted = result.jobs_submitted;
                    slot.makespan_secs = Some(result.makespan.as_secs_f64());
                }
                Err(e) => {
                    slot.state = InstanceState::Failed;
                    slot.error = Some(e.message().into());
                }
            }
        }
    }

    /// Route one raw backend completion to its owning instance.
    fn route(&mut self, mut c: BackendCompletion) {
        let id = ScopedBackend::instance_of(c.invocation.0);
        c.invocation = InvocationId(ScopedBackend::local_tag(c.invocation.0));
        let Some(i) = self.slot_index(id) else {
            return; // late completion of an unknown instance: drop
        };
        let before = self.store.stats();
        let slot = &mut self.slots[i];
        let Body::Running(instance) = &mut slot.body else {
            return; // instance already cancelled/failed: drop
        };
        let mut scoped = ScopedBackend::new(self.backend.as_mut(), slot.id);
        let mut ctx = EnactCtx {
            backend: &mut scoped,
            store: Some(&mut self.store),
        };
        let result = instance.deliver(&mut ctx, c);
        self.attribute(i, before);
        if let Err(e) = result {
            self.fail(id, e.message().into());
        }
    }

    /// A backend wait timed out at an instance deadline: let every
    /// running instance act on expired timeouts and due backoffs.
    fn timer(&mut self, id: u32) {
        let Some(i) = self.slot_index(id) else { return };
        let before = self.store.stats();
        let slot = &mut self.slots[i];
        let Body::Running(instance) = &mut slot.body else {
            return;
        };
        let mut scoped = ScopedBackend::new(self.backend.as_mut(), slot.id);
        let mut ctx = EnactCtx {
            backend: &mut scoped,
            store: Some(&mut self.store),
        };
        let result = instance.on_timer(&mut ctx);
        self.attribute(i, before);
        if let Err(e) = result {
            self.fail(id, e.message().into());
        }
    }
}

// The daemon's behavioural tests live in `tests/daemon.rs`: they
// parse SCUFL through `moteur-scufl`, whose dev-dependency cycle
// resolves to a *separate* build of this crate inside unit tests.
