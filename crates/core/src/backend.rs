//! Execution backends: where fired invocations actually run.
//!
//! The enactor is written against one small trait with asynchronous
//! submission semantics — submit never blocks, completions are pulled —
//! mirroring the paper's §3.1 requirement that service calls be
//! non-blocking so every level of parallelism can be exploited.
//!
//! Three implementations:
//!
//! - [`VirtualBackend`] — zero-overhead virtual time with unlimited
//!   parallelism; job duration is exactly the declared compute time.
//!   On this backend the enactor must reproduce the theoretical model
//!   of paper §3.5 to the microsecond (asserted by tests).
//! - [`SimBackend`] — the EGEE-like discrete-event grid simulator
//!   ([`moteur_gridsim`]); used by all campaign experiments.
//! - [`LocalBackend`] — real execution of [`LocalService`]s on spawned
//!   worker threads (the paper's "spawning independent system threads
//!   for each processor being executed"), timed with the wall clock.

use crate::error::MoteurError;
use crate::service::LocalService;
use crate::token::Token;
use crate::value::DataValue;
use moteur_gridsim::{GridConfig, GridJobSpec, GridSim, JobOutcome, SimTime};
use moteur_wrapper::JobPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Correlation id for one fired invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InvocationId(pub u64);

/// What to run.
#[derive(Clone)]
pub enum JobPayload {
    /// A wrapper-service grid job: transfer plan plus compute seconds.
    Grid { plan: JobPlan, compute_seconds: f64 },
    /// An in-process service call with its input tokens.
    Local {
        service: Arc<dyn LocalService>,
        inputs: Vec<Token>,
    },
    /// A cache-elided invocation: no computation, only the simulated
    /// transfer of already-stored results back to the enactor (the
    /// data manager's fetch cost).
    Fetch { transfer_seconds: f64 },
}

impl std::fmt::Debug for JobPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobPayload::Grid {
                plan,
                compute_seconds,
            } => f
                .debug_struct("Grid")
                .field("commands", &plan.command_lines.len())
                .field("compute_seconds", compute_seconds)
                .finish(),
            JobPayload::Local { inputs, .. } => f
                .debug_struct("Local")
                .field("inputs", &inputs.len())
                .finish(),
            JobPayload::Fetch { transfer_seconds } => f
                .debug_struct("Fetch")
                .field("transfer_seconds", transfer_seconds)
                .finish(),
        }
    }
}

/// A submitted job.
#[derive(Debug, Clone)]
pub struct BackendJob {
    pub invocation: InvocationId,
    pub processor: String,
    pub payload: JobPayload,
}

/// Result of a finished job.
#[derive(Debug)]
pub struct BackendCompletion {
    pub invocation: InvocationId,
    /// `Ok(Some(outputs))` for local services, `Ok(None)` for grid jobs
    /// (the enactor synthesised the output file tokens at submission),
    /// `Err` for a failed execution.
    pub outputs: Result<Option<ServiceOutputs>, String>,
    pub started_at: SimTime,
    pub finished_at: SimTime,
    /// Computing element the final attempt ran on, when the backend
    /// knows one (only [`SimBackend`]). Feeds CE blacklisting.
    pub ce: Option<usize>,
}

/// What [`Backend::wait_next_until`] produced.
#[derive(Debug)]
pub enum WaitOutcome {
    /// A job finished before the deadline.
    Completion(BackendCompletion),
    /// The deadline passed first; the backend clock now sits at (or
    /// past) the deadline even when nothing was in flight.
    TimedOut,
}

/// An asynchronous execution backend.
pub trait Backend {
    /// Non-blocking submission. `Err` means the job was *not* accepted
    /// (e.g. an invocation tag that would corrupt a shared namespace)
    /// and no completion will ever surface for it; the caller must
    /// treat this as a hard enactment failure rather than retry.
    fn submit(&mut self, job: BackendJob) -> Result<(), MoteurError>;
    /// Block (or advance virtual time) until the next completion;
    /// `None` when nothing is in flight.
    fn wait_next(&mut self) -> Option<BackendCompletion>;
    /// Like [`Backend::wait_next`], but give up once the backend clock
    /// reaches `deadline` — the enactor's timeout and backoff timer.
    fn wait_next_until(&mut self, deadline: SimTime) -> WaitOutcome;
    /// Best-effort cancellation of an in-flight submission. `true`
    /// guarantees no completion will surface for it; `false` means the
    /// backend cannot retract it (already delivered, unknown, or — on
    /// [`LocalBackend`] — a thread that cannot be stopped) and the
    /// caller must discard any late completion itself.
    fn cancel(&mut self, invocation: InvocationId) -> bool;
    /// Stop (or resume) routing new submissions to a computing
    /// element. A no-op on backends without a broker.
    fn blacklist_ce(&mut self, _ce: usize, _blocked: bool) {}
    /// Current time on this backend's clock.
    fn now(&self) -> SimTime;
}

// ---------------------------------------------------------------------
// VirtualBackend
// ---------------------------------------------------------------------

/// Output list of a service invocation: `(port name, value)` pairs.
pub type ServiceOutputs = Vec<(String, DataValue)>;

/// Ideal virtual-time backend: unlimited parallelism, zero overhead.
#[derive(Default, Debug)]
pub struct VirtualBackend {
    clock: SimTime,
    heap: BinaryHeap<Reverse<(SimTime, u64, InvocationId)>>,
    seq: u64,
    /// Results of local calls executed eagerly at submission.
    local_results: Vec<(InvocationId, Result<ServiceOutputs, String>)>,
    starts: std::collections::HashMap<u64, SimTime>,
    /// Invocations cancelled while still on the heap; their entries are
    /// discarded (without advancing the clock) when popped.
    cancelled: std::collections::HashSet<u64>,
}

impl VirtualBackend {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pop the next non-cancelled heap entry into a completion.
    fn pop_live(&mut self) -> Option<BackendCompletion> {
        loop {
            let Reverse((at, _, invocation)) = self.heap.pop()?;
            if self.cancelled.remove(&invocation.0) {
                self.starts.remove(&invocation.0);
                self.local_results.retain(|(i, _)| *i != invocation);
                continue;
            }
            self.clock = self.clock.max(at);
            let started_at = self.starts.remove(&invocation.0).unwrap_or(SimTime::ZERO);
            let outputs = if let Some(pos) = self
                .local_results
                .iter()
                .position(|(i, _)| *i == invocation)
            {
                let (_, r) = self.local_results.swap_remove(pos);
                r.map(Some)
            } else {
                Ok(None)
            };
            return Some(BackendCompletion {
                invocation,
                outputs,
                started_at,
                finished_at: at,
                ce: None,
            });
        }
    }
}

impl Backend for VirtualBackend {
    fn submit(&mut self, job: BackendJob) -> Result<(), MoteurError> {
        let start = self.clock;
        self.starts.insert(job.invocation.0, start);
        match job.payload {
            JobPayload::Grid {
                compute_seconds, ..
            } => {
                let end = start + moteur_gridsim::SimDuration::from_secs_f64(compute_seconds);
                self.heap.push(Reverse((end, self.seq, job.invocation)));
                self.seq += 1;
            }
            JobPayload::Local { service, inputs } => {
                // Local calls are logic, not timing: run eagerly, zero
                // virtual duration.
                let result = service.invoke(&inputs);
                self.local_results.push((job.invocation, result));
                self.heap.push(Reverse((start, self.seq, job.invocation)));
                self.seq += 1;
            }
            JobPayload::Fetch { transfer_seconds } => {
                let end = start + moteur_gridsim::SimDuration::from_secs_f64(transfer_seconds);
                self.heap.push(Reverse((end, self.seq, job.invocation)));
                self.seq += 1;
            }
        }
        Ok(())
    }

    fn wait_next(&mut self) -> Option<BackendCompletion> {
        self.pop_live()
    }

    fn wait_next_until(&mut self, deadline: SimTime) -> WaitOutcome {
        loop {
            let head = self.heap.peek().map(|Reverse((at, _, inv))| (*at, *inv));
            match head {
                Some((_, inv)) if self.cancelled.contains(&inv.0) => {
                    self.heap.pop();
                    self.cancelled.remove(&inv.0);
                    self.starts.remove(&inv.0);
                    self.local_results.retain(|(i, _)| *i != inv);
                }
                Some((at, _)) if at <= deadline => {
                    let c = self.pop_live().expect("peeked a live entry");
                    return WaitOutcome::Completion(c);
                }
                _ => {
                    self.clock = self.clock.max(deadline);
                    return WaitOutcome::TimedOut;
                }
            }
        }
    }

    fn cancel(&mut self, invocation: InvocationId) -> bool {
        // `starts` holds exactly the in-flight set: inserted at submit,
        // removed at delivery (or here, so double-cancel is false).
        if self.starts.remove(&invocation.0).is_some() {
            self.cancelled.insert(invocation.0);
            true
        } else {
            false
        }
    }

    fn now(&self) -> SimTime {
        self.clock
    }
}

// ---------------------------------------------------------------------
// SimBackend
// ---------------------------------------------------------------------

/// Backend running grid jobs on the discrete-event EGEE simulator.
#[derive(Debug)]
pub struct SimBackend {
    sim: GridSim,
    /// Latest simulator job for each invocation tag, so cancellation
    /// can reach back into the simulator. A resubmission with the same
    /// tag overwrites the entry — only the live attempt is cancellable.
    jobs: std::collections::HashMap<u64, moteur_gridsim::JobId>,
}

impl SimBackend {
    pub fn new(config: GridConfig, seed: u64) -> Self {
        SimBackend {
            sim: GridSim::new(config, seed),
            jobs: std::collections::HashMap::new(),
        }
    }

    /// Like [`SimBackend::new`], but forwarding every simulator
    /// lifecycle event ([`moteur_gridsim::SimEvent`]) into `obs` as
    /// grid-level [`crate::obs::TraceEvent`]s. With a disabled handle
    /// no observer is installed and the simulator's hot path is
    /// untouched.
    pub fn with_obs(config: GridConfig, seed: u64, obs: &crate::obs::Obs) -> Self {
        let mut backend = Self::new(config, seed);
        if obs.enabled() {
            let forward = obs.clone();
            backend.sim.set_observer(Box::new(move |e| {
                forward.record(&crate::obs::TraceEvent::from_sim(e));
            }));
        }
        if obs.prof().is_enabled() {
            backend.sim.set_prof(obs.prof().clone());
        }
        backend
    }

    /// Access the underlying simulator (job records, etc.).
    pub fn sim(&self) -> &GridSim {
        &self.sim
    }

    /// Map a simulator completion into the backend vocabulary.
    fn convert(c: moteur_gridsim::GridJobCompletion) -> BackendCompletion {
        let outputs = match c.outcome {
            JobOutcome::Success => Ok(None),
            JobOutcome::Failed => Err(format!(
                "grid job `{}` failed after {} attempts",
                c.record.name, c.record.attempts
            )),
        };
        BackendCompletion {
            invocation: InvocationId(c.tag),
            outputs,
            started_at: c.record.started_at,
            finished_at: c.delivered_at,
            ce: c.record.ce.map(|ce| ce.0),
        }
    }
}

impl Backend for SimBackend {
    fn submit(&mut self, job: BackendJob) -> Result<(), MoteurError> {
        match job.payload {
            JobPayload::Grid {
                plan,
                compute_seconds,
            } => {
                let spec = GridJobSpec::new(job.processor, compute_seconds)
                    .with_files(
                        plan.fetch.iter().map(|f| f.bytes).collect(),
                        plan.store.iter().map(|f| f.bytes).collect(),
                    )
                    .with_tag(job.invocation.0);
                let id = self.sim.submit(spec);
                self.jobs.insert(job.invocation.0, id);
            }
            JobPayload::Local { .. } => {
                panic!(
                    "SimBackend cannot execute in-process services; bind `{}` to a descriptor",
                    job.processor
                );
            }
            JobPayload::Fetch { transfer_seconds } => {
                let id = self
                    .sim
                    .submit_fetch(job.processor, transfer_seconds, job.invocation.0);
                self.jobs.insert(job.invocation.0, id);
            }
        }
        Ok(())
    }

    fn wait_next(&mut self) -> Option<BackendCompletion> {
        let c = self.sim.next_completion()?;
        self.jobs.remove(&c.tag);
        Some(Self::convert(c))
    }

    fn wait_next_until(&mut self, deadline: SimTime) -> WaitOutcome {
        match self.sim.next_completion_until(deadline) {
            Some(c) => {
                self.jobs.remove(&c.tag);
                WaitOutcome::Completion(Self::convert(c))
            }
            None => WaitOutcome::TimedOut,
        }
    }

    fn cancel(&mut self, invocation: InvocationId) -> bool {
        match self.jobs.remove(&invocation.0) {
            Some(id) => self.sim.cancel(id),
            None => false,
        }
    }

    fn blacklist_ce(&mut self, ce: usize, blocked: bool) {
        self.sim.set_ce_blocked(ce, blocked);
    }

    fn now(&self) -> SimTime {
        self.sim.now()
    }
}

// ---------------------------------------------------------------------
// LocalBackend
// ---------------------------------------------------------------------

/// Real-thread backend: each submission spawns a worker thread (the
/// paper's per-call threads) and completions arrive over a channel.
pub struct LocalBackend {
    started: Instant,
    tx: std::sync::mpsc::Sender<BackendCompletion>,
    rx: std::sync::mpsc::Receiver<BackendCompletion>,
    in_flight: usize,
}

impl std::fmt::Debug for LocalBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalBackend")
            .field("started", &self.started)
            .field("in_flight", &self.in_flight)
            .finish_non_exhaustive()
    }
}

impl Default for LocalBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalBackend {
    pub fn new() -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        LocalBackend {
            started: Instant::now(),
            tx,
            rx,
            in_flight: 0,
        }
    }

    fn wall_now(&self) -> SimTime {
        SimTime::from_secs_f64(self.started.elapsed().as_secs_f64())
    }
}

impl Backend for LocalBackend {
    fn submit(&mut self, job: BackendJob) -> Result<(), MoteurError> {
        match job.payload {
            JobPayload::Local { service, inputs } => {
                let tx = self.tx.clone();
                let started = self.started;
                let invocation = job.invocation;
                self.in_flight += 1;
                std::thread::spawn(move || {
                    let t0 = SimTime::from_secs_f64(started.elapsed().as_secs_f64());
                    let result = service.invoke(&inputs);
                    let t1 = SimTime::from_secs_f64(started.elapsed().as_secs_f64());
                    let _ = tx.send(BackendCompletion {
                        invocation,
                        outputs: result.map(Some),
                        started_at: t0,
                        finished_at: t1,
                        ce: None,
                    });
                });
            }
            JobPayload::Grid { .. } => {
                panic!(
                    "LocalBackend cannot execute grid jobs; run `{}` on SimBackend",
                    job.processor
                );
            }
            JobPayload::Fetch { .. } => {
                // Cached results are already in process memory; on the
                // wall clock a fetch completes immediately.
                let now = self.wall_now();
                self.in_flight += 1;
                let _ = self.tx.send(BackendCompletion {
                    invocation: job.invocation,
                    outputs: Ok(None),
                    started_at: now,
                    finished_at: now,
                    ce: None,
                });
            }
        }
        Ok(())
    }

    fn wait_next(&mut self) -> Option<BackendCompletion> {
        if self.in_flight == 0 {
            return None;
        }
        let c = self.rx.recv().ok()?;
        self.in_flight -= 1;
        Some(c)
    }

    fn wait_next_until(&mut self, deadline: SimTime) -> WaitOutcome {
        let remaining = deadline.since(self.wall_now());
        let dur = std::time::Duration::from_secs_f64(remaining.as_secs_f64());
        if self.in_flight == 0 {
            // Nothing can complete; honour the contract that the clock
            // reaches the deadline (a real backoff sleep).
            std::thread::sleep(dur);
            return WaitOutcome::TimedOut;
        }
        match self.rx.recv_timeout(dur) {
            Ok(c) => {
                self.in_flight -= 1;
                WaitOutcome::Completion(c)
            }
            Err(_) => WaitOutcome::TimedOut,
        }
    }

    fn cancel(&mut self, _invocation: InvocationId) -> bool {
        // A spawned worker thread cannot be stopped; its completion
        // will still arrive and the caller must discard it.
        false
    }

    fn now(&self) -> SimTime {
        self.wall_now()
    }
}

// ---------------------------------------------------------------------
// ScopedBackend
// ---------------------------------------------------------------------

/// A per-instance view of a shared backend, used by the enactment
/// daemon to multiplex many [`crate::WorkflowInstance`]s over one
/// backend. Every invocation tag submitted through the view is offset
/// into a disjoint namespace — `instance << 32 | local_tag` — so job
/// routing, timeout cancellation and abort-drain from one instance can
/// never reach a sibling's jobs. The daemon waits on the *raw* backend
/// and uses [`ScopedBackend::instance_of`] to route each completion to
/// its owner, then [`ScopedBackend::local_tag`] to restore the tag the
/// instance knows.
pub struct ScopedBackend<'a> {
    inner: &'a mut dyn Backend,
    base: u64,
}

impl std::fmt::Debug for ScopedBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedBackend")
            .field("instance", &(self.base >> 32))
            .finish_non_exhaustive()
    }
}

impl<'a> ScopedBackend<'a> {
    /// Wrap `inner`, namespacing every tag under `instance`.
    pub fn new(inner: &'a mut dyn Backend, instance: u32) -> Self {
        ScopedBackend {
            inner,
            base: u64::from(instance) << 32,
        }
    }

    /// Which instance a raw (namespaced) tag belongs to.
    pub fn instance_of(tag: u64) -> u32 {
        (tag >> 32) as u32
    }

    /// The instance-local tag inside a raw (namespaced) tag.
    pub fn local_tag(tag: u64) -> u64 {
        tag & 0xFFFF_FFFF
    }

    fn strip(&self, mut c: BackendCompletion) -> BackendCompletion {
        debug_assert_eq!(
            c.invocation.0 & !0xFFFF_FFFF,
            self.base,
            "completion crossed an instance boundary through a scoped wait"
        );
        c.invocation = InvocationId(Self::local_tag(c.invocation.0));
        c
    }
}

impl Backend for ScopedBackend<'_> {
    fn submit(&mut self, mut job: BackendJob) -> Result<(), MoteurError> {
        // A tag ≥ 2^32 would bleed into the instance bits: completions
        // for it would be routed to a *different* tenant and its own
        // enactor would hang waiting for a job that never returns. A
        // hard error (not a debug assertion) because release builds hit
        // it too.
        if job.invocation.0 > 0xFFFF_FFFF {
            return Err(MoteurError::new(format!(
                "instance-local tag {} overflows the 32-bit job namespace \
                 (instance {})",
                job.invocation.0,
                self.base >> 32
            )));
        }
        job.invocation = InvocationId(self.base | job.invocation.0);
        self.inner.submit(job)
    }

    /// Only meaningful while this instance's jobs are the only ones in
    /// flight (the one-shot path); the daemon waits on the raw backend.
    fn wait_next(&mut self) -> Option<BackendCompletion> {
        self.inner.wait_next().map(|c| self.strip(c))
    }

    fn wait_next_until(&mut self, deadline: SimTime) -> WaitOutcome {
        match self.inner.wait_next_until(deadline) {
            WaitOutcome::Completion(c) => WaitOutcome::Completion(self.strip(c)),
            WaitOutcome::TimedOut => WaitOutcome::TimedOut,
        }
    }

    fn cancel(&mut self, invocation: InvocationId) -> bool {
        self.inner.cancel(InvocationId(self.base | invocation.0))
    }

    fn blacklist_ce(&mut self, ce: usize, blocked: bool) {
        self.inner.blacklist_ce(ce, blocked);
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn grid_job(id: u64, secs: f64) -> BackendJob {
        BackendJob {
            invocation: InvocationId(id),
            processor: format!("p{id}"),
            payload: JobPayload::Grid {
                plan: JobPlan {
                    command_lines: vec!["x".into()],
                    fetch: vec![],
                    store: vec![],
                },
                compute_seconds: secs,
            },
        }
    }

    #[test]
    fn virtual_backend_orders_by_duration() {
        let mut b = VirtualBackend::new();
        b.submit(grid_job(1, 30.0)).unwrap();
        b.submit(grid_job(2, 10.0)).unwrap();
        let first = b.wait_next().unwrap();
        assert_eq!(first.invocation, InvocationId(2));
        assert!((first.finished_at.as_secs_f64() - 10.0).abs() < 1e-9);
        let second = b.wait_next().unwrap();
        assert_eq!(second.invocation, InvocationId(1));
        assert!((b.now().as_secs_f64() - 30.0).abs() < 1e-9);
        assert!(b.wait_next().is_none());
    }

    #[test]
    fn virtual_backend_submissions_after_time_advances_stack_up() {
        let mut b = VirtualBackend::new();
        b.submit(grid_job(1, 10.0)).unwrap();
        b.wait_next().unwrap();
        b.submit(grid_job(2, 5.0)).unwrap(); // starts at t=10
        let c = b.wait_next().unwrap();
        assert!((c.finished_at.as_secs_f64() - 15.0).abs() < 1e-9);
        assert!((c.started_at.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn virtual_backend_runs_local_services_eagerly() {
        let svc = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
            Ok(vec![("out".into(), inputs[0].value.clone())])
        };
        let mut b = VirtualBackend::new();
        b.submit(BackendJob {
            invocation: InvocationId(9),
            processor: "local".into(),
            payload: JobPayload::Local {
                service: Arc::new(svc),
                inputs: vec![Token::from_source("s", 0, DataValue::from("v"))],
            },
        })
        .unwrap();
        let c = b.wait_next().unwrap();
        let outs = c.outputs.unwrap().unwrap();
        assert_eq!(outs[0].1.as_str(), Some("v"));
        assert_eq!(
            c.finished_at,
            SimTime::ZERO,
            "local calls cost no virtual time"
        );
    }

    #[test]
    fn sim_backend_runs_grid_jobs_with_overhead() {
        let mut b = SimBackend::new(GridConfig::egee_2006(), 5);
        b.submit(grid_job(1, 60.0)).unwrap();
        let c = b.wait_next().unwrap();
        assert_eq!(c.invocation, InvocationId(1));
        assert!(c.outputs.is_ok());
        assert!(c.finished_at.as_secs_f64() > 60.0, "overhead must exist");
        assert_eq!(b.now(), c.finished_at);
    }

    #[test]
    #[should_panic(expected = "cannot execute in-process services")]
    fn sim_backend_rejects_local_payloads() {
        let svc = |_: &[Token]| -> Result<Vec<(String, DataValue)>, String> { Ok(vec![]) };
        let mut b = SimBackend::new(GridConfig::ideal(), 1);
        let _ = b.submit(BackendJob {
            invocation: InvocationId(1),
            processor: "x".into(),
            payload: JobPayload::Local {
                service: Arc::new(svc),
                inputs: vec![],
            },
        });
    }

    #[test]
    fn local_backend_runs_services_on_threads() {
        let svc = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
            let n = inputs[0].value.as_num().unwrap();
            Ok(vec![("out".into(), DataValue::from(n * 2.0))])
        };
        let mut b = LocalBackend::new();
        for i in 0..4 {
            b.submit(BackendJob {
                invocation: InvocationId(i),
                processor: "dbl".into(),
                payload: JobPayload::Local {
                    service: Arc::new(svc),
                    inputs: vec![Token::from_source("s", i as u32, DataValue::from(i as f64))],
                },
            })
            .unwrap();
        }
        let mut results = Vec::new();
        while let Some(c) = b.wait_next() {
            let outs = c.outputs.unwrap().unwrap();
            results.push((c.invocation.0, outs[0].1.as_num().unwrap()));
        }
        results.sort_by_key(|(i, _)| *i);
        assert_eq!(results, vec![(0, 0.0), (1, 2.0), (2, 4.0), (3, 6.0)]);
    }

    #[test]
    fn virtual_backend_cancel_suppresses_the_completion() {
        let mut b = VirtualBackend::new();
        b.submit(grid_job(1, 30.0)).unwrap();
        b.submit(grid_job(2, 10.0)).unwrap();
        assert!(b.cancel(InvocationId(2)));
        assert!(!b.cancel(InvocationId(2)), "double cancel is false");
        let only = b.wait_next().unwrap();
        assert_eq!(only.invocation, InvocationId(1));
        assert!(b.wait_next().is_none());
    }

    #[test]
    fn virtual_backend_wait_until_times_out_and_advances_the_clock() {
        let mut b = VirtualBackend::new();
        b.submit(grid_job(1, 100.0)).unwrap();
        match b.wait_next_until(SimTime::from_secs_f64(40.0)) {
            WaitOutcome::TimedOut => {}
            WaitOutcome::Completion(c) => panic!("early completion {c:?}"),
        }
        assert!((b.now().as_secs_f64() - 40.0).abs() < 1e-9);
        match b.wait_next_until(SimTime::from_secs_f64(500.0)) {
            WaitOutcome::Completion(c) => {
                assert_eq!(c.invocation, InvocationId(1));
                assert!((c.finished_at.as_secs_f64() - 100.0).abs() < 1e-9);
            }
            WaitOutcome::TimedOut => panic!("completion was due at t=100"),
        }
    }

    #[test]
    fn sim_backend_cancel_reaches_into_the_simulator() {
        let mut b = SimBackend::new(GridConfig::ideal(), 5);
        b.submit(grid_job(1, 60.0)).unwrap();
        b.submit(grid_job(2, 60.0)).unwrap();
        assert!(b.cancel(InvocationId(2)));
        let c = b.wait_next().unwrap();
        assert_eq!(c.invocation, InvocationId(1));
        assert!(b.wait_next().is_none());
    }

    #[test]
    fn sim_backend_reports_the_ce_of_the_final_attempt() {
        let mut b = SimBackend::new(GridConfig::egee_2006(), 5);
        b.submit(grid_job(1, 60.0)).unwrap();
        let c = b.wait_next().unwrap();
        assert!(c.ce.is_some(), "grid jobs ran somewhere: {c:?}");
    }

    #[test]
    fn scoped_backend_namespaces_tags_and_round_trips_completions() {
        let mut raw = VirtualBackend::new();
        {
            let mut scoped = ScopedBackend::new(&mut raw, 3);
            scoped.submit(grid_job(7, 10.0)).unwrap();
        }
        // The raw backend sees the namespaced tag…
        let c = raw.wait_next().unwrap();
        assert_eq!(c.invocation.0, (3u64 << 32) | 7);
        assert_eq!(ScopedBackend::instance_of(c.invocation.0), 3);
        assert_eq!(ScopedBackend::local_tag(c.invocation.0), 7);
        // …and a scoped wait strips it back to the local tag.
        let mut scoped = ScopedBackend::new(&mut raw, 3);
        scoped.submit(grid_job(7, 5.0)).unwrap();
        let c = scoped.wait_next().unwrap();
        assert_eq!(c.invocation, InvocationId(7));
    }

    #[test]
    fn scoped_backend_cancel_cannot_reach_a_sibling_instance() {
        let mut raw = VirtualBackend::new();
        ScopedBackend::new(&mut raw, 1)
            .submit(grid_job(7, 10.0))
            .unwrap();
        ScopedBackend::new(&mut raw, 2)
            .submit(grid_job(7, 20.0))
            .unwrap();
        // Instance 1 cancels its own tag 7; instance 2's tag 7 survives.
        assert!(ScopedBackend::new(&mut raw, 1).cancel(InvocationId(7)));
        let c = raw.wait_next().unwrap();
        assert_eq!(ScopedBackend::instance_of(c.invocation.0), 2);
        assert!(raw.wait_next().is_none());
        // Cancelling a tag the instance never submitted is a no-op.
        assert!(!ScopedBackend::new(&mut raw, 1).cancel(InvocationId(99)));
    }

    #[test]
    fn scoped_backend_rejects_tags_that_overflow_the_namespace() {
        // Regression: this used to be a debug_assert!, so release
        // builds silently corrupted the instance namespace — tag
        // 2^32 + 7 from instance 1 masqueraded as instance 2's tag 7.
        // It must be a hard error in every build profile.
        let mut raw = VirtualBackend::new();
        let mut scoped = ScopedBackend::new(&mut raw, 1);
        let err = scoped
            .submit(grid_job(1u64 << 32 | 7, 10.0))
            .expect_err("overflowing tag must be rejected");
        assert!(
            err.message().contains("overflows the 32-bit job namespace"),
            "unexpected error: {}",
            err.message()
        );
        // Nothing reached the raw backend.
        assert!(raw.wait_next().is_none());
        // The boundary tag itself is still fine.
        ScopedBackend::new(&mut raw, 1)
            .submit(grid_job(0xFFFF_FFFF, 1.0))
            .unwrap();
        assert!(raw.wait_next().is_some());
    }

    #[test]
    fn local_backend_propagates_service_errors() {
        let svc =
            |_: &[Token]| -> Result<Vec<(String, DataValue)>, String> { Err("kaboom".into()) };
        let mut b = LocalBackend::new();
        b.submit(BackendJob {
            invocation: InvocationId(1),
            processor: "bad".into(),
            payload: JobPayload::Local {
                service: Arc::new(svc),
                inputs: vec![],
            },
        })
        .unwrap();
        let c = b.wait_next().unwrap();
        assert_eq!(c.outputs.unwrap_err(), "kaboom");
        assert!(b.wait_next().is_none());
    }
}
