//! Per-service execution reports from a run's invocation trace — the
//! operational view a workflow user reads after a campaign: how many
//! invocations each service fired, how long they computed, and how much
//! grid overhead they paid.

use crate::trace::WorkflowResult;
use moteur_gridsim::{percentile, SimDuration};
use std::collections::BTreeMap;

/// Aggregated timings of one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    pub processor: String,
    pub invocations: usize,
    pub retries: u32,
    /// Mean/min/max of (finished − started): the execution window.
    pub mean_execution_secs: f64,
    pub min_execution_secs: f64,
    pub max_execution_secs: f64,
    /// Execution-window distribution tails (linear interpolation).
    pub p50_execution_secs: f64,
    pub p95_execution_secs: f64,
    pub p99_execution_secs: f64,
    /// Mean of (started − submitted): grid overhead before execution.
    pub mean_wait_secs: f64,
    /// Sum of execution windows (total busy time).
    pub total_execution_secs: f64,
}

/// Compute per-processor statistics, sorted by processor name.
pub fn service_stats(result: &WorkflowResult) -> Vec<ServiceStats> {
    let mut groups: BTreeMap<&str, Vec<(f64, f64, u32)>> = BTreeMap::new();
    for r in &result.invocations {
        let exec = r.finished.since(r.started).as_secs_f64();
        let wait = r.started.since(r.submitted).as_secs_f64();
        groups
            .entry(&r.processor)
            .or_default()
            .push((exec, wait, r.retries));
    }
    groups
        .into_iter()
        .map(|(name, rows)| {
            let n = rows.len() as f64;
            let execs: Vec<f64> = rows.iter().map(|(e, _, _)| *e).collect();
            ServiceStats {
                processor: name.to_string(),
                invocations: rows.len(),
                retries: rows.iter().map(|(_, _, r)| *r).sum(),
                mean_execution_secs: execs.iter().sum::<f64>() / n,
                min_execution_secs: execs.iter().copied().fold(f64::INFINITY, f64::min),
                max_execution_secs: execs.iter().copied().fold(0.0, f64::max),
                p50_execution_secs: percentile(&execs, 0.50),
                p95_execution_secs: percentile(&execs, 0.95),
                p99_execution_secs: percentile(&execs, 0.99),
                mean_wait_secs: rows.iter().map(|(_, w, _)| w).sum::<f64>() / n,
                total_execution_secs: execs.iter().sum(),
            }
        })
        .collect()
}

/// Render the stats as an aligned text table.
pub fn render_report(result: &WorkflowResult) -> String {
    let stats = service_stats(result);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>6} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "service",
        "invoc",
        "retries",
        "mean exec",
        "p50 exec",
        "p95 exec",
        "max exec",
        "mean wait",
        "busy total"
    ));
    out.push_str(&"-".repeat(106));
    out.push('\n');
    for s in &stats {
        out.push_str(&format!(
            "{:<24} {:>6} {:>7} {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}s\n",
            s.processor,
            s.invocations,
            s.retries,
            s.mean_execution_secs,
            s.p50_execution_secs,
            s.p95_execution_secs,
            s.max_execution_secs,
            s.mean_wait_secs,
            s.total_execution_secs,
        ));
    }
    out.push_str(&format!(
        "makespan {:.1}s over {} jobs\n",
        result.makespan.as_secs_f64(),
        result.jobs_submitted
    ));
    out
}

/// Total busy time across all services — the "grid time consumed" that
/// the paper's 9-day campaign total reflects.
pub fn total_busy(result: &WorkflowResult) -> SimDuration {
    let secs: f64 = result
        .invocations
        .iter()
        .map(|r| r.finished.since(r.started).as_secs_f64())
        .sum();
    SimDuration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::DataIndex;
    use crate::trace::InvocationRecord;
    use moteur_gridsim::SimTime;
    use std::collections::HashMap;

    fn result_with(records: Vec<InvocationRecord>) -> WorkflowResult {
        WorkflowResult {
            sink_outputs: HashMap::new(),
            sink_counts: HashMap::new(),
            makespan: SimDuration::from_secs(100),
            invocations: records,
            jobs_submitted: 3,
            bytes_transferred: 0,
            quarantined: vec![],
        }
    }

    fn rec(proc: &str, submit: f64, start: f64, end: f64, retries: u32) -> InvocationRecord {
        InvocationRecord {
            processor: proc.into(),
            index: DataIndex::single(0),
            submitted: SimTime::from_secs_f64(submit),
            started: SimTime::from_secs_f64(start),
            finished: SimTime::from_secs_f64(end),
            retries,
        }
    }

    #[test]
    fn stats_aggregate_per_processor() {
        let r = result_with(vec![
            rec("A", 0.0, 10.0, 30.0, 0),
            rec("A", 0.0, 20.0, 60.0, 1),
            rec("B", 5.0, 15.0, 20.0, 0),
        ]);
        let stats = service_stats(&r);
        assert_eq!(stats.len(), 2);
        let a = &stats[0];
        assert_eq!(a.processor, "A");
        assert_eq!(a.invocations, 2);
        assert_eq!(a.retries, 1);
        assert!(
            (a.mean_execution_secs - 30.0).abs() < 1e-9,
            "mean of 20 and 40"
        );
        assert!((a.min_execution_secs - 20.0).abs() < 1e-9);
        assert!((a.max_execution_secs - 40.0).abs() < 1e-9);
        assert!((a.mean_wait_secs - 15.0).abs() < 1e-9, "mean of 10 and 20");
        assert!((a.total_execution_secs - 60.0).abs() < 1e-9);
        // Two samples 20 and 40: p50 interpolates to 30, p95/p99 near 40.
        assert!((a.p50_execution_secs - 30.0).abs() < 1e-9);
        assert!(a.p95_execution_secs <= a.p99_execution_secs);
        assert!((a.p99_execution_secs - 39.8).abs() < 0.2 + 1e-9);
        let b = &stats[1];
        assert_eq!(b.invocations, 1);
        assert!(
            (b.p50_execution_secs - 5.0).abs() < 1e-9,
            "single sample = every percentile"
        );
        assert!((b.p99_execution_secs - 5.0).abs() < 1e-9);
    }

    #[test]
    fn report_renders_rows_and_makespan() {
        let r = result_with(vec![rec("crestLines", 0.0, 1.0, 2.0, 0)]);
        let text = render_report(&r);
        assert!(text.contains("crestLines"), "{text}");
        assert!(text.contains("makespan 100.0s over 3 jobs"));
    }

    #[test]
    fn total_busy_sums_execution_windows() {
        let r = result_with(vec![
            rec("A", 0.0, 0.0, 10.0, 0),
            rec("B", 0.0, 5.0, 25.0, 0),
        ]);
        assert!((total_busy(&r).as_secs_f64() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn empty_result_renders_header_only() {
        let r = result_with(vec![]);
        assert!(service_stats(&r).is_empty());
        assert!(render_report(&r).contains("makespan"));
    }
}
