//! Tokens: data values tagged with an index vector and a provenance
//! history tree.
//!
//! The paper (§4.1) notes that with data and service parallelism,
//! results are "likely to be computed in a different order in every
//! service, which could lead to wrong dot product computations", and
//! solves it by attaching to each data segment "a history tree
//! containing all the intermediate results computed to process it".
//! [`DataIndex`] is the positional identity used by the iteration
//! strategies; [`History`] is the full provenance tree.

use crate::value::DataValue;
use std::fmt;
use std::sync::Arc;

/// Taverna-style index vector identifying a datum's position in the
/// (possibly nested, via cross products) input space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DataIndex(pub Vec<u32>);

impl DataIndex {
    /// The scalar index (e.g. a synchronization processor's single
    /// result).
    pub fn scalar() -> Self {
        DataIndex(Vec::new())
    }

    pub fn single(i: u32) -> Self {
        DataIndex(vec![i])
    }

    /// Concatenate two index vectors — the index algebra of the cross
    /// product.
    pub fn concat(&self, other: &DataIndex) -> DataIndex {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        DataIndex(v)
    }

    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for DataIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (k, i) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "]")
    }
}

/// Provenance history tree (paper §4.1): every token records how it was
/// produced, back to the workflow sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum History {
    /// Produced by a data source: source name and position in its
    /// stream.
    Source { source: String, position: u32 },
    /// Produced by a processor invocation from a set of input tokens.
    Derived {
        processor: String,
        inputs: Vec<Arc<History>>,
    },
}

impl History {
    pub fn source(name: impl Into<String>, position: u32) -> Arc<History> {
        Arc::new(History::Source {
            source: name.into(),
            position,
        })
    }

    pub fn derived(processor: impl Into<String>, inputs: Vec<Arc<History>>) -> Arc<History> {
        Arc::new(History::Derived {
            processor: processor.into(),
            inputs,
        })
    }

    /// All source leaves of the tree, in left-to-right order.
    pub fn sources(&self) -> Vec<(String, u32)> {
        match self {
            History::Source { source, position } => vec![(source.clone(), *position)],
            History::Derived { inputs, .. } => inputs.iter().flat_map(|i| i.sources()).collect(),
        }
    }

    /// Does any ancestor involve `processor`?
    pub fn involves(&self, processor: &str) -> bool {
        match self {
            History::Source { .. } => false,
            History::Derived {
                processor: p,
                inputs,
            } => p == processor || inputs.iter().any(|i| i.involves(processor)),
        }
    }

    /// Depth of the tree (1 for a source leaf).
    pub fn depth(&self) -> usize {
        match self {
            History::Source { .. } => 1,
            History::Derived { inputs, .. } => {
                1 + inputs.iter().map(|i| i.depth()).max().unwrap_or(0)
            }
        }
    }
}

/// A datum in flight: value + positional index + provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub value: DataValue,
    pub index: DataIndex,
    pub history: Arc<History>,
}

impl Token {
    pub fn from_source(source: &str, position: u32, value: DataValue) -> Token {
        Token {
            value,
            index: DataIndex::single(position),
            history: History::source(source, position),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_concat_is_associative_with_lengths_adding() {
        let a = DataIndex(vec![1, 2]);
        let b = DataIndex(vec![3]);
        let c = DataIndex(vec![4, 5]);
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
        assert_eq!(a.concat(&b).depth(), 3);
    }

    #[test]
    fn scalar_index_is_identity_for_concat() {
        let a = DataIndex(vec![7, 8]);
        assert_eq!(a.concat(&DataIndex::scalar()), a);
        assert_eq!(DataIndex::scalar().concat(&a), a);
    }

    #[test]
    fn index_display() {
        assert_eq!(DataIndex(vec![1, 2, 3]).to_string(), "[1,2,3]");
        assert_eq!(DataIndex::scalar().to_string(), "[]");
    }

    #[test]
    fn history_sources_collects_leaves_in_order() {
        let h = History::derived(
            "crestMatch",
            vec![
                History::derived("crestLines", vec![History::source("floating", 0)]),
                History::source("reference", 0),
            ],
        );
        assert_eq!(
            h.sources(),
            vec![("floating".to_string(), 0), ("reference".to_string(), 0)]
        );
    }

    #[test]
    fn history_involves_searches_ancestors() {
        let h = History::derived(
            "PFRegister",
            vec![History::derived(
                "PFMatchICP",
                vec![History::source("img", 3)],
            )],
        );
        assert!(h.involves("PFMatchICP"));
        assert!(h.involves("PFRegister"));
        assert!(!h.involves("Yasmina"));
    }

    #[test]
    fn history_depth() {
        let leaf = History::source("s", 0);
        assert_eq!(leaf.depth(), 1);
        let d = History::derived("p", vec![leaf]);
        assert_eq!(d.depth(), 2);
    }

    #[test]
    fn token_from_source_sets_index_and_history() {
        let t = Token::from_source("referenceImage", 4, DataValue::from("img4"));
        assert_eq!(t.index, DataIndex::single(4));
        assert_eq!(t.history.sources(), vec![("referenceImage".to_string(), 4)]);
    }

    #[test]
    fn tokens_with_same_source_position_are_distinguished_by_history() {
        // Two different sources can emit position 0; the index collides
        // but the history tree disambiguates (the causality problem).
        let a = Token::from_source("refs", 0, DataValue::from("a"));
        let b = Token::from_source("floats", 0, DataValue::from("b"));
        assert_eq!(a.index, b.index);
        assert_ne!(a.history, b.history);
    }
}
