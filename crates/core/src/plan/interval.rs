//! The interval cardinality abstract domain.
//!
//! Generalizes the exact M020 cardinality algebra
//! ([`crate::lint::rules::cardinality`]) from monomials over source
//! sizes to `[lo, hi]` *bounds* on stream lengths: every construct the
//! exact algebra must give up on (cycles, merged streams, unconnected
//! ports) still gets a sound interval, so downstream byte estimates
//! always exist. The invariant — checked by a property test against the
//! exact algebra — is containment: whatever the true stream length is
//! at run time, it lies inside the interval.

use crate::graph::{IterationStrategy, ProcId, ProcessorKind, Workflow};
use std::collections::BTreeMap;
use std::fmt;

/// A bound on a stream's length: between `lo` and `hi` items, with
/// `hi = None` meaning *unbounded* (cycles whose trip count is only
/// known at run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardInterval {
    /// Fewest items the stream can carry.
    pub lo: u64,
    /// Most items the stream can carry; `None` when unbounded.
    pub hi: Option<u64>,
}

impl CardInterval {
    /// The exactly-`n` interval `[n, n]`.
    pub fn exact(n: u64) -> Self {
        CardInterval { lo: n, hi: Some(n) }
    }

    /// The unbounded interval `[0, ∞)`.
    pub fn unbounded() -> Self {
        CardInterval { lo: 0, hi: None }
    }

    /// Does the interval contain `n`?
    pub fn contains(&self, n: u64) -> bool {
        self.lo <= n && self.hi.is_none_or(|hi| n <= hi)
    }

    /// Is the interval a single point?
    pub fn is_exact(&self) -> bool {
        self.hi == Some(self.lo)
    }

    /// Interval of `min(a, b)`: the minimum can be as small as the
    /// smaller `lo` and no larger than the smaller `hi` (dot pairing
    /// truncates to the shortest stream).
    pub fn min(self, other: Self) -> Self {
        CardInterval {
            lo: self.lo.min(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
        }
    }

    /// Scale both bounds by a per-item byte size, saturating.
    pub fn scale(self, bytes: u64) -> Self {
        CardInterval {
            lo: self.lo.saturating_mul(bytes),
            hi: self.hi.map(|h| h.saturating_mul(bytes)),
        }
    }
}

/// Interval of `a + b` (stream merge), saturating.
impl std::ops::Add for CardInterval {
    type Output = Self;

    fn add(self, other: Self) -> Self {
        CardInterval {
            lo: self.lo.saturating_add(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }
}

/// Interval of `a × b` (cross product), saturating. A guaranteed zero
/// factor annihilates even an unbounded one: no tuples can ever
/// assemble.
impl std::ops::Mul for CardInterval {
    type Output = Self;

    fn mul(self, other: Self) -> Self {
        CardInterval {
            lo: self.lo.saturating_mul(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.saturating_mul(b)),
                (Some(0), None) | (None, Some(0)) => Some(0),
                _ => None,
            },
        }
    }
}

impl fmt::Display for CardInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(hi) if hi == self.lo => write!(f, "{}", self.lo),
            Some(hi) => write!(f, "[{}, {}]", self.lo, hi),
            None => write!(f, "[{}, ∞)", self.lo),
        }
    }
}

/// Per-source stream sizes the analysis assumes. Sources absent from
/// the map get [`SourceSizes::default_n`] items exactly.
#[derive(Debug, Clone)]
pub struct SourceSizes {
    /// Item count assumed for sources not listed in `per_source` — the
    /// paper's smallest campaign (12 image pairs) by default, matching
    /// the M021 example convention.
    pub default_n: u64,
    /// Explicit per-source item counts, by processor name.
    pub per_source: BTreeMap<String, u64>,
}

impl Default for SourceSizes {
    fn default() -> Self {
        SourceSizes {
            default_n: 12,
            per_source: BTreeMap::new(),
        }
    }
}

impl SourceSizes {
    /// Uniform sizing: every source carries exactly `n` items.
    pub fn uniform(n: u64) -> Self {
        SourceSizes {
            default_n: n,
            per_source: BTreeMap::new(),
        }
    }

    /// Override one source's item count.
    pub fn with(mut self, source: impl Into<String>, n: u64) -> Self {
        self.per_source.insert(source.into(), n);
        self
    }

    fn of(&self, name: &str) -> u64 {
        self.per_source.get(name).copied().unwrap_or(self.default_n)
    }
}

/// Interval on the *output* stream of every processor (indexed by
/// [`ProcId`]), propagated from `sizes` through iteration strategies.
///
/// Transfer rules, mirroring the exact algebra where it is defined and
/// staying sound where it is not:
///
/// - a source emits exactly its declared item count;
/// - any processor on a data-link cycle (non-trivial SCC or self-loop)
///   is `[0, ∞)` — trip counts are run-time properties;
/// - a synchronization barrier consumes whole streams and fires once;
/// - a dot product truncates to the shortest input port stream
///   ([`CardInterval::min`]);
/// - a cross product multiplies port streams (`Mul for CardInterval`);
/// - an input port fed by several links sees the merged stream
///   (`Add for CardInterval` over feeders), one fed by none is `[0, 0]`;
/// - a sink passes its input port stream through.
pub fn output_intervals(wf: &Workflow, sizes: &SourceSizes) -> Vec<CardInterval> {
    let n = wf.processors.len();
    let scc_ids = wf.scc_ids();
    let mut scc_size: BTreeMap<usize, usize> = BTreeMap::new();
    for &c in &scc_ids {
        *scc_size.entry(c).or_insert(0) += 1;
    }
    let in_cycle = |v: usize| {
        scc_size[&scc_ids[v]] > 1
            || wf
                .links
                .iter()
                .any(|l| l.from.proc.0 == v && l.to.proc.0 == v)
    };

    let mut out: Vec<Option<CardInterval>> = vec![None; n];
    // Fixpoint iteration; cycles resolve immediately, so the acyclic
    // remainder converges in ≤ n passes exactly like the exact algebra.
    for _ in 0..=n {
        let mut changed = false;
        for v in 0..n {
            if out[v].is_some() {
                continue;
            }
            let p = &wf.processors[v];
            let interval = if in_cycle(v) {
                Some(CardInterval::unbounded())
            } else if p.kind == ProcessorKind::Source {
                Some(CardInterval::exact(sizes.of(&p.name)))
            } else {
                input_intervals(wf, ProcId(v), &out).map(|ins| combine(p, &ins))
            };
            if interval.is_some() {
                out[v] = interval;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Anything still unresolved is downstream of nothing computable —
    // stay sound with the unbounded interval.
    out.into_iter()
        .map(|c| c.unwrap_or_else(CardInterval::unbounded))
        .collect()
}

/// Interval on each *input port* stream of `proc`, or `None` while a
/// predecessor is still unresolved. Multiple feeders merge (sum);
/// an unconnected port carries nothing.
pub fn input_intervals(
    wf: &Workflow,
    proc: ProcId,
    out: &[Option<CardInterval>],
) -> Option<Vec<CardInterval>> {
    let p = wf.processor(proc);
    let n_ports = if p.kind == ProcessorKind::Sink {
        1
    } else {
        p.inputs.len()
    };
    let mut intervals = Vec::with_capacity(n_ports);
    for port in 0..n_ports {
        let mut acc: Option<CardInterval> = None;
        for l in wf
            .links
            .iter()
            .filter(|l| l.to.proc == proc && l.to.port == port)
        {
            let feeder = (*out.get(l.from.proc.0)?)?;
            acc = Some(match acc {
                None => feeder,
                Some(prev) => prev + feeder,
            });
        }
        intervals.push(acc.unwrap_or(CardInterval::exact(0)));
    }
    Some(intervals)
}

/// Combine input-port intervals under the processor's iteration
/// strategy into its output-stream interval.
fn combine(p: &crate::graph::Processor, inputs: &[CardInterval]) -> CardInterval {
    if p.kind == ProcessorKind::Sink {
        // A sink collects its input stream unchanged.
        return inputs.first().copied().unwrap_or(CardInterval::exact(0));
    }
    if p.synchronization {
        // A barrier consumes its entire input streams and fires once.
        return CardInterval::exact(1);
    }
    if inputs.is_empty() {
        // A no-input service never assembles a tuple beyond the empty
        // one (sources are handled by the caller).
        return CardInterval::exact(1);
    }
    match p.iteration {
        IterationStrategy::Dot => inputs
            .iter()
            .copied()
            .reduce(CardInterval::min)
            .unwrap_or(CardInterval::exact(0)),
        IterationStrategy::Cross => inputs
            .iter()
            .copied()
            .reduce(|a, b| a * b)
            .unwrap_or(CardInterval::exact(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::rules::cardinality::output_cardinalities;
    use crate::service::{ServiceBinding, ServiceProfile};
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

    fn desc(name: &str, inputs: &[&str]) -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: name.into(),
                access: AccessMethod::Local,
                value: name.into(),
            },
            inputs: inputs
                .iter()
                .map(|i| InputSlot {
                    name: (*i).into(),
                    option: format!("-{i}"),
                    access: Some(AccessMethod::Gfn),
                    bytes: None,
                })
                .collect(),
            outputs: vec![OutputSlot {
                name: "out".into(),
                option: "-o".into(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: false,
        }
    }

    fn service(wf: &mut Workflow, name: &str, inputs: &[&str]) -> ProcId {
        wf.add_service(
            name,
            inputs,
            &["out"],
            ServiceBinding::descriptor(desc(name, inputs), ServiceProfile::new(1.0)),
        )
    }

    #[test]
    fn interval_arithmetic_and_rendering() {
        let three = CardInterval::exact(3);
        let wide = CardInterval { lo: 2, hi: Some(5) };
        let inf = CardInterval::unbounded();
        assert_eq!(three.min(wide), CardInterval { lo: 2, hi: Some(3) });
        assert_eq!(
            three * wide,
            CardInterval {
                lo: 6,
                hi: Some(15)
            }
        );
        assert_eq!(three + wide, CardInterval { lo: 5, hi: Some(8) });
        // The unbounded stream could be empty, so the min's floor is 0.
        assert_eq!(wide.min(inf), CardInterval { lo: 0, hi: Some(5) });
        assert_eq!(CardInterval::exact(0) * inf, CardInterval::exact(0));
        assert!(inf.contains(u64::MAX));
        assert!(!wide.contains(6));
        assert_eq!(three.to_string(), "3");
        assert_eq!(wide.to_string(), "[2, 5]");
        assert_eq!(inf.to_string(), "[0, ∞)");
        assert_eq!(
            wide.scale(10),
            CardInterval {
                lo: 20,
                hi: Some(50)
            }
        );
    }

    #[test]
    fn saturating_never_wraps() {
        let huge = CardInterval::exact(u64::MAX / 2);
        let prod = huge * huge;
        assert_eq!(prod.hi, Some(u64::MAX));
        assert_eq!((huge + huge).hi, Some(u64::MAX - 1));
        assert_eq!(huge.scale(u64::MAX).lo, u64::MAX);
    }

    #[test]
    fn empty_input_sets_propagate_zero() {
        // Satellite edge case: a campaign with no data at all.
        let mut wf = Workflow::new("empty");
        let src = wf.add_source("src");
        let a = service(&mut wf, "a", &["in"]);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", sink, "in").unwrap();
        let iv = output_intervals(&wf, &SourceSizes::uniform(0));
        assert_eq!(iv[a.0], CardInterval::exact(0));
        assert_eq!(iv[sink.0], CardInterval::exact(0));
    }

    #[test]
    fn zero_cardinality_port_annihilates_cross_products() {
        // Satellite edge case: one empty source against a full one.
        let mut wf = Workflow::new("zero-port");
        let full = wf.add_source("full");
        let empty = wf.add_source("empty");
        let x = service(&mut wf, "x", &["a", "b"]);
        wf.set_iteration(x, IterationStrategy::Cross);
        let sink = wf.add_sink("sink");
        wf.connect(full, "out", x, "a").unwrap();
        wf.connect(empty, "out", x, "b").unwrap();
        wf.connect(x, "out", sink, "in").unwrap();
        let sizes = SourceSizes::uniform(12).with("empty", 0);
        let iv = output_intervals(&wf, &sizes);
        assert_eq!(iv[x.0], CardInterval::exact(0));
    }

    #[test]
    fn unconnected_input_port_means_no_invocations() {
        let mut wf = Workflow::new("unfed");
        let src = wf.add_source("src");
        let a = service(&mut wf, "a", &["in", "never_fed"]);
        wf.connect(src, "out", a, "in").unwrap();
        let iv = output_intervals(&wf, &SourceSizes::uniform(5));
        // Dot of [5,5] with [0,0] can never assemble a tuple.
        assert_eq!(iv[a.0], CardInterval::exact(0));
    }

    #[test]
    fn nested_dot_within_cross() {
        // Satellite edge case: d = dot(a, b) feeding x = cross(d, c).
        // Exact counts: |d| = min(n, m) = 3, |x| = 3 × k = 12.
        let mut wf = Workflow::new("nested");
        let a = wf.add_source("a");
        let b = wf.add_source("b");
        let c = wf.add_source("c");
        let d = service(&mut wf, "d", &["l", "r"]);
        let x = service(&mut wf, "x", &["l", "r"]);
        wf.set_iteration(x, IterationStrategy::Cross);
        let sink = wf.add_sink("sink");
        wf.connect(a, "out", d, "l").unwrap();
        wf.connect(b, "out", d, "r").unwrap();
        wf.connect(d, "out", x, "l").unwrap();
        wf.connect(c, "out", x, "r").unwrap();
        wf.connect(x, "out", sink, "in").unwrap();
        let sizes = SourceSizes::uniform(3).with("b", 7).with("c", 4);
        let iv = output_intervals(&wf, &sizes);
        assert_eq!(iv[d.0], CardInterval::exact(3));
        assert_eq!(iv[x.0], CardInterval::exact(12));
        assert_eq!(iv[sink.0], CardInterval::exact(12));
    }

    #[test]
    fn barriers_and_cycles() {
        let mut wf = Workflow::new("sync-cycle");
        let src = wf.add_source("src");
        let a = service(&mut wf, "a", &["in"]);
        let barrier = service(&mut wf, "barrier", &["in"]);
        wf.set_synchronization(barrier, true);
        let looper = service(&mut wf, "looper", &["in", "feedback"]);
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", barrier, "in").unwrap();
        wf.connect(barrier, "out", looper, "in").unwrap();
        wf.connect(looper, "out", looper, "feedback").unwrap();
        wf.connect(looper, "out", sink, "in").unwrap();
        let iv = output_intervals(&wf, &SourceSizes::uniform(9));
        assert_eq!(iv[barrier.0], CardInterval::exact(1));
        assert_eq!(iv[looper.0], CardInterval::unbounded());
        // The sink inherits the loop's unboundedness.
        assert_eq!(iv[sink.0], CardInterval::unbounded());
    }

    #[test]
    fn merged_streams_sum() {
        let mut wf = Workflow::new("merge");
        let a = wf.add_source("a");
        let b = wf.add_source("b");
        let m = service(&mut wf, "m", &["in"]);
        let sink = wf.add_sink("sink");
        wf.connect(a, "out", m, "in").unwrap();
        wf.connect(b, "out", m, "in").unwrap();
        wf.connect(m, "out", sink, "in").unwrap();
        let iv = output_intervals(&wf, &SourceSizes::uniform(4).with("b", 6));
        assert_eq!(iv[m.0], CardInterval::exact(10));
    }

    /// Property (satellite): on workflows where the exact algebra is
    /// defined, the interval always contains the exact count. Random
    /// layered DAGs from a deterministic LCG — no external rand crate.
    #[test]
    fn intervals_contain_exact_counts() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |bound: u64| {
            // xorshift*; plenty for structural fuzzing.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d) % bound
        };
        for case in 0..200 {
            let mut wf = Workflow::new(format!("fuzz{case}"));
            let n_sources = 1 + next(3) as usize;
            let mut pool: Vec<ProcId> = (0..n_sources)
                .map(|i| wf.add_source(format!("s{i}")))
                .collect();
            let n_services = 1 + next(5) as usize;
            for i in 0..n_services {
                let fan_in = 1 + next(2.min(pool.len() as u64)) as usize;
                let ports: Vec<String> = (0..fan_in).map(|p| format!("in{p}")).collect();
                let port_refs: Vec<&str> = ports.iter().map(String::as_str).collect();
                let svc = service(&mut wf, &format!("v{i}"), &port_refs);
                if next(2) == 0 {
                    wf.set_iteration(svc, IterationStrategy::Cross);
                }
                for port in &ports {
                    let feeder = pool[next(pool.len() as u64) as usize];
                    wf.connect(feeder, "out", svc, port).unwrap();
                }
                pool.push(svc);
            }
            let n = 1 + next(6);
            let exact = output_cardinalities(&wf);
            let intervals = output_intervals(&wf, &SourceSizes::uniform(n));
            for (proc, (card, interval)) in exact.iter().zip(&intervals).enumerate() {
                if let Some(count) = card.count(n as usize) {
                    assert!(
                        interval.contains(count),
                        "case {case} proc {proc}: exact {count} outside {interval}"
                    );
                }
            }
        }
    }
}
