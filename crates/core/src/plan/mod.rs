//! Whole-workflow static planning (`moteur plan`).
//!
//! Abstract-interprets the processor graph *before* enactment:
//! per-port cardinality intervals ([`interval`]) are combined with
//! declared item sizes into per-edge transfer-volume bounds, the
//! eq. 1–4 makespan closed forms gain a data-transfer term, and a
//! greedy min-cut-style partitioner groups services into site fragments
//! that minimize the bytes the central enactor must route — the
//! scalability ceiling ROADMAP item 3 is about.
//!
//! The analysis is deliberately total: cycles, merged streams and
//! missing declarations degrade to wider intervals or default sizes,
//! never to an error, so `moteur plan` always has something to report.
//! Trustworthiness is checked end-to-end by `moteur-bench plan`, which
//! asserts every static byte interval contains the bytes the enactment
//! timeline actually recorded.

#![warn(missing_docs)]

pub mod interval;

use crate::graph::{Link, ProcessorKind, Workflow};
use crate::model::TimeMatrix;
use crate::obs::json::{array, JsonObject};
use crate::service::ServiceBinding;
use interval::{output_intervals, CardInterval, SourceSizes};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Item size assumed when neither the producer nor the consumer
/// declares one (matches [`crate::service::ServiceProfile::output_size`]).
pub const DEFAULT_ITEM_BYTES: u64 = 64 * 1024;

/// Knobs of the static analysis.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Assumed per-source input-set sizes.
    pub sizes: SourceSizes,
    /// Per-job grid latency charged by the makespan predictor (s).
    pub overhead: f64,
    /// Link bandwidth the transfer term divides by (bytes/s) — the
    /// simulator's 2006-WAN default.
    pub bandwidth: f64,
    /// Invocation-count bound above which M080 calls a cardinality
    /// explosion.
    pub explosion_cap: u64,
    /// Largest number of services one site fragment may hold.
    pub max_fragment: usize,
    /// Fallback per-item size when nothing is declared.
    pub default_item_bytes: u64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            sizes: SourceSizes::default(),
            overhead: 300.0,
            bandwidth: 2.0e6,
            explosion_cap: 1_000_000,
            max_fragment: 4,
            default_item_bytes: DEFAULT_ITEM_BYTES,
        }
    }
}

/// Static transfer estimate for one data link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePlan {
    /// Producer processor name.
    pub from: String,
    /// Producer output port name.
    pub from_port: String,
    /// Consumer processor name.
    pub to: String,
    /// Consumer input port name.
    pub to_port: String,
    /// Bound on the number of items transferred over the edge in one
    /// campaign.
    pub items: CardInterval,
    /// Per-item size used for the byte bound.
    pub item_bytes: u64,
    /// Bound on the bytes transferred (`items × item_bytes`).
    pub bytes: CardInterval,
    /// Does the edge reach a grid job's input (consumer is a service)?
    /// Edges into sinks are delivered enactor-internally and produce no
    /// grid transfer.
    pub grid: bool,
}

/// One group of services co-located on a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Service processor names in workflow order.
    pub processors: Vec<String>,
}

/// The greedy partition and its byte accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Site fragments, largest first.
    pub fragments: Vec<Fragment>,
    /// Bytes the enactor still routes with the partition applied
    /// (cross-fragment edges plus source-fed edges).
    pub cut_bytes: CardInterval,
    /// Bytes the enactor routes centrally (every grid edge).
    pub total_bytes: CardInterval,
}

/// Everything `moteur plan` reports about one workflow.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Workflow name.
    pub workflow: String,
    /// Assumed input-set size (the default source sizing).
    pub n_data: u64,
    /// Per-job overhead the makespans charge (s).
    pub overhead: f64,
    /// Link bandwidth the transfer term uses (bytes/s).
    pub bandwidth: f64,
    /// Output-stream interval per processor, in workflow order.
    pub intervals: Vec<(String, CardInterval)>,
    /// Per-edge transfer estimates, in link order.
    pub edges: Vec<EdgePlan>,
    /// Greedy site partition minimizing enactor-routed bytes.
    pub partition: Partition,
    /// Eq. 1–4 makespan (Σ_DSP) with a transfer term charging *every*
    /// grid edge through the central enactor; `None` when the workflow
    /// is cyclic or has no declared cost models.
    pub makespan_centralized: Option<f64>,
    /// Same predictor charging only the partition's cut edges.
    pub makespan_partitioned: Option<f64>,
}

/// Per-edge transfer bounds only — the cost-model-free part of the
/// analysis. The lint rules (M080–M085) use this instead of
/// [`analyze`]: weighing edges must not evaluate user cost models,
/// whose closures may only be defined for the enactment's actual
/// `n_data`, not the lint sizing convention.
pub fn transfer_edges(wf: &Workflow, opts: &PlanOptions) -> Vec<EdgePlan> {
    let out = output_intervals(wf, &opts.sizes);
    wf.links
        .iter()
        .map(|l| edge_plan(wf, l, &out, opts))
        .collect()
}

/// Run the whole static analysis.
pub fn analyze(wf: &Workflow, opts: &PlanOptions) -> PlanReport {
    let out = output_intervals(wf, &opts.sizes);
    let edges: Vec<EdgePlan> = wf
        .links
        .iter()
        .map(|l| edge_plan(wf, l, &out, opts))
        .collect();
    let partition = partition(wf, &edges, opts.max_fragment);
    let makespan_centralized = makespan_with_charged(wf, &edges, opts, |_| true);
    let fragment_of = fragment_index(&partition);
    // Sink deliveries pass through the enactor either way; only
    // fragment-internal service edges stop being routed centrally.
    let makespan_partitioned =
        makespan_with_charged(wf, &edges, opts, |e| !e.grid || is_cut(e, &fragment_of));
    PlanReport {
        workflow: wf.name.clone(),
        n_data: opts.sizes.default_n,
        overhead: opts.overhead,
        bandwidth: opts.bandwidth,
        intervals: wf
            .processors
            .iter()
            .zip(&out)
            .map(|(p, iv)| (p.name.clone(), *iv))
            .collect(),
        edges,
        partition,
        makespan_centralized,
        makespan_partitioned,
    }
}

/// Static estimate for one link.
fn edge_plan(wf: &Workflow, link: &Link, out: &[CardInterval], opts: &PlanOptions) -> EdgePlan {
    let producer = wf.processor(link.from.proc);
    let consumer = wf.processor(link.to.proc);
    let producer_out = out[link.from.proc.0];

    let items = match consumer.kind {
        // A sink collects the whole stream (enactor-internal delivery).
        ProcessorKind::Sink => producer_out,
        _ if consumer.synchronization => {
            // A barrier's single invocation fetches each feeder's whole
            // stream.
            producer_out
        }
        _ => {
            let feeders = wf
                .links
                .iter()
                .filter(|l| l.to.proc == link.to.proc && l.to.port == link.to.port)
                .count();
            let invocations = out[link.to.proc.0];
            if feeders > 1 {
                // Each invocation consumes one token from the merged
                // stream; this edge's share is anywhere between nothing
                // and all of what the producer emits (but never more
                // than the invocation count).
                CardInterval {
                    lo: 0,
                    hi: match (invocations.hi, producer_out.hi) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (Some(a), None) | (None, Some(a)) => Some(a),
                        (None, None) => None,
                    },
                }
            } else {
                // One fetch per invocation: dot skips unmatched items,
                // cross re-fetches an item for every tuple it is in.
                invocations
            }
        }
    };

    let item_bytes = edge_item_bytes(wf, link, opts.default_item_bytes);
    EdgePlan {
        from: producer.name.clone(),
        from_port: producer
            .outputs
            .get(link.from.port)
            .cloned()
            .unwrap_or_else(|| "out".to_string()),
        to: consumer.name.clone(),
        to_port: if consumer.kind == ProcessorKind::Sink {
            "in".to_string()
        } else {
            consumer
                .inputs
                .get(link.to.port)
                .cloned()
                .unwrap_or_else(|| "in".to_string())
        },
        items,
        item_bytes,
        bytes: items.scale(item_bytes),
        grid: consumer.kind == ProcessorKind::Service,
    }
}

/// Resolve the per-item size of a link: the producer's declaration
/// wins (source `bytes=`, or a descriptor's `<outputsize>`), then the
/// consumer's `<input bytes=…>` slot, then the default.
fn edge_item_bytes(wf: &Workflow, link: &Link, default: u64) -> u64 {
    let producer = wf.processor(link.from.proc);
    if let Some(b) = producer.item_bytes {
        return b;
    }
    if let Some(ServiceBinding::Descriptor { profile, .. }) = &producer.binding {
        if let Some(port) = producer.outputs.get(link.from.port) {
            // `output_size` has its own default; only trust it when the
            // profile actually declares the slot.
            if profile.output_bytes.iter().any(|(s, _)| s == port) {
                return profile.output_size(port);
            }
        }
    }
    consumer_slot_bytes(wf, link).unwrap_or(default)
}

/// The consumer descriptor's declared `bytes=` for the fed slot.
fn consumer_slot_bytes(wf: &Workflow, link: &Link) -> Option<u64> {
    let consumer = wf.processor(link.to.proc);
    let port = consumer.inputs.get(link.to.port)?;
    if let Some(ServiceBinding::Descriptor { descriptor, .. }) = &consumer.binding {
        return descriptor
            .inputs
            .iter()
            .find(|s| &s.name == port)
            .and_then(|s| s.bytes);
    }
    None
}

// ---------------------------------------------------------------------
// Greedy partitioner
// ---------------------------------------------------------------------

/// Kruskal-style grouping: walk service↔service edges by descending
/// byte bound and union their endpoints while the merged fragment stays
/// within `max_fragment` services — the heaviest flows become
/// site-internal first, which is exactly a greedy min-cut on the
/// enactor's routing load. Sources and sinks stay with the enactor.
pub fn partition(wf: &Workflow, edges: &[EdgePlan], max_fragment: usize) -> Partition {
    let services: Vec<&str> = wf
        .processors
        .iter()
        .filter(|p| p.kind == ProcessorKind::Service)
        .map(|p| p.name.as_str())
        .collect();
    let index: BTreeMap<&str, usize> = services.iter().enumerate().map(|(i, s)| (*s, i)).collect();

    // Union-find over service indices.
    let mut parent: Vec<usize> = (0..services.len()).collect();
    let mut size: Vec<usize> = vec![1; services.len()];
    fn root(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }

    let mut candidates: Vec<(&EdgePlan, usize, usize)> = edges
        .iter()
        .filter_map(|e| {
            let a = *index.get(e.from.as_str())?;
            let b = *index.get(e.to.as_str())?;
            Some((e, a, b))
        })
        .collect();
    // Heaviest first; unbounded edges outrank every finite one. Name
    // order breaks ties so the partition is deterministic.
    candidates.sort_by(|(x, _, _), (y, _, _)| {
        let key = |e: &EdgePlan| (e.bytes.hi.unwrap_or(u64::MAX), e.bytes.lo);
        key(y)
            .cmp(&key(x))
            .then_with(|| (&x.from, &x.to).cmp(&(&y.from, &y.to)))
    });
    let cap = max_fragment.max(1);
    for (_, a, b) in candidates {
        let (ra, rb) = (root(&mut parent, a), root(&mut parent, b));
        if ra != rb && size[ra] + size[rb] <= cap {
            let (big, small) = if size[ra] >= size[rb] {
                (ra, rb)
            } else {
                (rb, ra)
            };
            parent[small] = big;
            size[big] += size[small];
        }
    }

    let mut groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, s) in services.iter().enumerate() {
        groups
            .entry(root(&mut parent, i))
            .or_default()
            .push((*s).to_string());
    }
    let mut fragments: Vec<Fragment> = groups
        .into_values()
        .map(|processors| Fragment { processors })
        .collect();
    fragments.sort_by(|a, b| {
        b.processors
            .len()
            .cmp(&a.processors.len())
            .then_with(|| a.processors.cmp(&b.processors))
    });

    let partition = Partition {
        fragments,
        cut_bytes: CardInterval::exact(0),
        total_bytes: CardInterval::exact(0),
    };
    let fragment_of = fragment_index(&partition);
    let mut cut = CardInterval::exact(0);
    let mut total = CardInterval::exact(0);
    for e in edges.iter().filter(|e| e.grid) {
        total = total + e.bytes;
        if is_cut(e, &fragment_of) {
            cut = cut + e.bytes;
        }
    }
    Partition {
        cut_bytes: cut,
        total_bytes: total,
        ..partition
    }
}

/// Map each fragmented service name to its fragment index.
fn fragment_index(partition: &Partition) -> BTreeMap<&str, usize> {
    partition
        .fragments
        .iter()
        .enumerate()
        .flat_map(|(i, f)| f.processors.iter().map(move |p| (p.as_str(), i)))
        .collect()
}

/// Is `e` routed by the enactor under the partition? Grid edges fed by
/// a source always are (inputs start at the enactor); service→service
/// edges only when they cross fragments.
fn is_cut(e: &EdgePlan, fragment_of: &BTreeMap<&str, usize>) -> bool {
    if !e.grid {
        return false;
    }
    match (
        fragment_of.get(e.from.as_str()),
        fragment_of.get(e.to.as_str()),
    ) {
        (Some(a), Some(b)) => a != b,
        _ => true,
    }
}

// ---------------------------------------------------------------------
// Makespan with a transfer term
// ---------------------------------------------------------------------

/// Σ_DSP over the eq. 1–4 matrix with each service's per-job time
/// increased by the time to move its charged edges' items across the
/// link (`bytes / bandwidth`). `charged` selects which edges the
/// central enactor still routes.
fn makespan_with_charged(
    wf: &Workflow,
    edges: &[EdgePlan],
    opts: &PlanOptions,
    charged: impl Fn(&EdgePlan) -> bool,
) -> Option<f64> {
    let n_data = usize::try_from(opts.sizes.default_n).ok()?.max(1);
    let per_service = per_job_transfer_bytes(wf, edges, &charged);
    let matrix = TimeMatrix::from_workflow_with(wf, n_data, opts.overhead, |id| {
        per_service
            .get(&wf.processor(id).name)
            .map_or(0.0, |b| *b as f64 / opts.bandwidth)
    })
    .ok()?;
    Some(matrix.sigma_dsp())
}

/// Bytes one job of each service moves over charged edges: one item per
/// charged in-port (the fetch) plus one item per charged out-port (the
/// store). Barrier jobs fetch whole streams in their single invocation,
/// so their in-edges are charged at the stream-byte bound instead.
fn per_job_transfer_bytes(
    wf: &Workflow,
    edges: &[EdgePlan],
    charged: &impl Fn(&EdgePlan) -> bool,
) -> BTreeMap<String, u64> {
    // The finite estimate of a byte bound: the upper bound when it
    // exists, otherwise the guaranteed floor.
    let estimate = |iv: CardInterval| iv.hi.unwrap_or(iv.lo);

    let mut per: BTreeMap<String, u64> = BTreeMap::new();
    for p in wf
        .processors
        .iter()
        .filter(|p| p.kind == ProcessorKind::Service)
    {
        let mut bytes: u64 = 0;
        // Fetch side. Ports are deduplicated: a multi-fed port still
        // delivers one item per invocation, so charge the widest item.
        let mut per_port: BTreeMap<&str, u64> = BTreeMap::new();
        for e in edges.iter().filter(|e| charged(e) && e.to == p.name) {
            if p.synchronization {
                bytes = bytes.saturating_add(estimate(e.bytes));
            } else {
                let slot = per_port.entry(e.to_port.as_str()).or_insert(0);
                *slot = (*slot).max(e.item_bytes);
            }
        }
        bytes = per_port.values().fold(bytes, |b, v| b.saturating_add(*v));
        // Store side: one item per output port that feeds a charged
        // edge, whatever its fan-out (the store to the enactor's
        // storage happens once; consumers fetch from there).
        let mut out_ports: BTreeMap<&str, u64> = BTreeMap::new();
        for e in edges.iter().filter(|e| charged(e) && e.from == p.name) {
            let slot = out_ports.entry(e.from_port.as_str()).or_insert(0);
            *slot = (*slot).max(e.item_bytes);
        }
        bytes = out_ports.values().fold(bytes, |b, v| b.saturating_add(*v));
        if bytes > 0 {
            per.insert(p.name.clone(), bytes);
        }
    }
    per
}

/// Seconds one job of each service spends moving its data through the
/// central enactor — the transfer term `lint --predict` adds on top of
/// eq. 1–4. Services that move nothing are absent from the map.
pub(crate) fn central_transfer_seconds(
    wf: &Workflow,
    n_data: u64,
    bandwidth: f64,
) -> BTreeMap<String, f64> {
    let opts = PlanOptions {
        sizes: SourceSizes::uniform(n_data),
        bandwidth,
        ..PlanOptions::default()
    };
    let out = output_intervals(wf, &opts.sizes);
    let edges: Vec<EdgePlan> = wf
        .links
        .iter()
        .map(|l| edge_plan(wf, l, &out, &opts))
        .collect();
    per_job_transfer_bytes(wf, &edges, &|_| true)
        .into_iter()
        .map(|(name, bytes)| (name, bytes as f64 / bandwidth))
        .collect()
}

// ---------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------

/// Render the report as an aligned human-readable table.
pub fn render_plan(report: &PlanReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan for `{}` (n_data = {}, overhead = {}s, bandwidth = {} B/s):",
        report.workflow, report.n_data, report.overhead, report.bandwidth
    );
    let _ = writeln!(out, "  per-edge transfer bounds:");
    for e in &report.edges {
        let _ = writeln!(
            out,
            "    {:<40} items {:<12} × {:>9} B = {} {}",
            format!("{}:{} → {}:{}", e.from, e.from_port, e.to, e.to_port),
            e.items.to_string(),
            e.item_bytes,
            e.bytes,
            if e.grid { "" } else { "(enactor-internal)" }
        );
    }
    let _ = writeln!(out, "  site fragments (greedy min-cut grouping):");
    for (i, f) in report.partition.fragments.iter().enumerate() {
        let _ = writeln!(out, "    fragment {}: {}", i, f.processors.join(", "));
    }
    let _ = writeln!(
        out,
        "  enactor-routed bytes: centralized {}, partitioned {}",
        report.partition.total_bytes, report.partition.cut_bytes
    );
    match (report.makespan_centralized, report.makespan_partitioned) {
        (Some(c), Some(p)) => {
            let _ = writeln!(
                out,
                "  predicted makespan (Σ_DSP + transfer): centralized {c:.2}s, \
                 partitioned {p:.2}s"
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "  predicted makespan: unavailable (cyclic workflow or no cost models)"
            );
        }
    }
    out
}

/// Append an interval's `lo`/`hi` fields to a JSON object under
/// `{prefix}_lo` / `{prefix}_hi` (`hi` is `null` when unbounded).
fn interval_fields(obj: JsonObject, prefix: &str, iv: CardInterval) -> JsonObject {
    let obj = obj.uint(&format!("{prefix}_lo"), iv.lo);
    match iv.hi {
        Some(hi) => obj.uint(&format!("{prefix}_hi"), hi),
        None => obj.raw(&format!("{prefix}_hi"), "null"),
    }
}

/// Serialise the report as single-line `moteur/plan/v1` JSON.
pub fn plan_to_json(report: &PlanReport) -> String {
    let intervals = report.intervals.iter().map(|(name, iv)| {
        interval_fields(JsonObject::new().str("processor", name), "items", *iv).finish()
    });
    let edges = report.edges.iter().map(|e| {
        let obj = JsonObject::new()
            .str("from", &e.from)
            .str("from_port", &e.from_port)
            .str("to", &e.to)
            .str("to_port", &e.to_port);
        let obj = interval_fields(obj, "items", e.items).uint("item_bytes", e.item_bytes);
        interval_fields(obj, "bytes", e.bytes)
            .bool("grid", e.grid)
            .finish()
    });
    let fragments = report.partition.fragments.iter().map(|f| {
        array(
            f.processors
                .iter()
                .map(|p| format!("\"{}\"", crate::obs::json::escape(p))),
        )
    });
    let obj = JsonObject::new()
        .str("schema", "moteur/plan/v1")
        .str("workflow", &report.workflow)
        .uint("n_data", report.n_data)
        .num("overhead", report.overhead)
        .num("bandwidth", report.bandwidth)
        .raw("intervals", &array(intervals))
        .raw("edges", &array(edges))
        .raw("fragments", &array(fragments));
    let obj = interval_fields(obj, "total_bytes", report.partition.total_bytes);
    let obj = interval_fields(obj, "cut_bytes", report.partition.cut_bytes);
    let obj = match report.makespan_centralized {
        Some(v) => obj.num("makespan_centralized", v),
        None => obj.raw("makespan_centralized", "null"),
    };
    match report.makespan_partitioned {
        Some(v) => obj.num("makespan_partitioned", v),
        None => obj.raw("makespan_partitioned", "null"),
    }
    .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IterationStrategy;
    use crate::service::ServiceProfile;
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

    fn desc(name: &str, inputs: &[(&str, Option<u64>)]) -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: name.into(),
                access: AccessMethod::Local,
                value: name.into(),
            },
            inputs: inputs
                .iter()
                .map(|(i, bytes)| InputSlot {
                    name: (*i).into(),
                    option: format!("-{i}"),
                    access: Some(AccessMethod::Gfn),
                    bytes: *bytes,
                })
                .collect(),
            outputs: vec![OutputSlot {
                name: "out".into(),
                option: "-o".into(),
                access: AccessMethod::Gfn,
            }],
            sandboxes: vec![],
            nondeterministic: false,
        }
    }

    fn add(
        wf: &mut Workflow,
        name: &str,
        inputs: &[(&str, Option<u64>)],
        profile: ServiceProfile,
    ) -> crate::graph::ProcId {
        let ports: Vec<&str> = inputs.iter().map(|(i, _)| *i).collect();
        wf.add_service(
            name,
            &ports,
            &["out"],
            ServiceBinding::descriptor(desc(name, inputs), profile),
        )
    }

    /// src(1 MB/item) → a(out 2 MB) → b → sink, 10 items.
    fn pipeline() -> Workflow {
        let mut wf = Workflow::new("pipe");
        let src = wf.add_source("src");
        wf.set_item_bytes(src, 1_000_000);
        let a = add(
            &mut wf,
            "a",
            &[("in", None)],
            ServiceProfile::new(50.0).with_output_bytes("out", 2_000_000),
        );
        let b = add(
            &mut wf,
            "b",
            &[("in", Some(3_000_000))],
            ServiceProfile::new(50.0),
        );
        let sink = wf.add_sink("sink");
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", b, "in").unwrap();
        wf.connect(b, "out", sink, "in").unwrap();
        wf
    }

    fn opts(n: u64) -> PlanOptions {
        PlanOptions {
            sizes: SourceSizes::uniform(n),
            ..PlanOptions::default()
        }
    }

    #[test]
    fn item_size_resolution_prefers_producer_declarations() {
        let wf = pipeline();
        let report = analyze(&wf, &opts(10));
        // src→a: the source's declared 1 MB wins.
        assert_eq!(report.edges[0].item_bytes, 1_000_000);
        assert_eq!(report.edges[0].bytes, CardInterval::exact(10_000_000));
        // a→b: the producer's <outputsize> beats b's declared slot size.
        assert_eq!(report.edges[1].item_bytes, 2_000_000);
        // b→sink: nothing declared on b's output — default size.
        assert_eq!(report.edges[2].item_bytes, DEFAULT_ITEM_BYTES);
        assert!(!report.edges[2].grid, "sink edges are enactor-internal");
    }

    #[test]
    fn consumer_slot_size_is_the_fallback() {
        let mut wf = Workflow::new("fallback");
        let src = wf.add_source("src"); // no declared size
        let a = add(&mut wf, "a", &[("in", Some(777))], ServiceProfile::new(1.0));
        wf.connect(src, "out", a, "in").unwrap();
        let report = analyze(&wf, &opts(3));
        assert_eq!(report.edges[0].item_bytes, 777);
    }

    #[test]
    fn barrier_edges_carry_whole_streams() {
        let mut wf = Workflow::new("sync");
        let src = wf.add_source("src");
        wf.set_item_bytes(src, 100);
        let a = add(&mut wf, "a", &[("in", None)], ServiceProfile::new(1.0));
        let all = add(&mut wf, "all", &[("in", None)], ServiceProfile::new(1.0));
        wf.set_synchronization(all, true);
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", all, "in").unwrap();
        let report = analyze(&wf, &opts(8));
        // a fires 8 times; the barrier's one invocation fetches all 8.
        assert_eq!(report.edges[1].items, CardInterval::exact(8));
    }

    #[test]
    fn cross_products_refetch_per_tuple() {
        let mut wf = Workflow::new("cross");
        let a = wf.add_source("a");
        let b = wf.add_source("b");
        let x = add(
            &mut wf,
            "x",
            &[("l", None), ("r", None)],
            ServiceProfile::new(1.0),
        );
        wf.set_iteration(x, IterationStrategy::Cross);
        wf.connect(a, "out", x, "l").unwrap();
        wf.connect(b, "out", x, "r").unwrap();
        let report = analyze(&wf, &opts(5));
        // 25 invocations stage an item on each port each time.
        assert_eq!(report.edges[0].items, CardInterval::exact(25));
        assert_eq!(report.edges[1].items, CardInterval::exact(25));
    }

    #[test]
    fn partition_groups_the_heaviest_edge_and_cuts_less() {
        let wf = pipeline();
        let report = analyze(&wf, &opts(10));
        // Both services fit one fragment: the a→b flow becomes
        // site-internal, only src→a (and the sink delivery) remain.
        assert_eq!(report.partition.fragments.len(), 1);
        assert_eq!(report.partition.fragments[0].processors, ["a", "b"]);
        assert!(report.partition.cut_bytes.lo < report.partition.total_bytes.lo);
        let (c, p) = (
            report.makespan_centralized.unwrap(),
            report.makespan_partitioned.unwrap(),
        );
        assert!(p < c, "partitioned {p} should beat centralized {c}");
    }

    #[test]
    fn fragment_cap_limits_group_size() {
        let wf = pipeline();
        let mut o = opts(10);
        o.max_fragment = 1;
        let report = analyze(&wf, &o);
        assert_eq!(report.partition.fragments.len(), 2);
        // Nothing groups, so every grid edge stays enactor-routed.
        assert_eq!(report.partition.cut_bytes, report.partition.total_bytes);
    }

    #[test]
    fn cyclic_workflows_plan_without_makespans() {
        let mut wf = Workflow::new("cyclic");
        let src = wf.add_source("src");
        let a = add(
            &mut wf,
            "a",
            &[("in", None), ("feedback", None)],
            ServiceProfile::new(1.0),
        );
        wf.connect(src, "out", a, "in").unwrap();
        wf.connect(a, "out", a, "feedback").unwrap();
        let report = analyze(&wf, &opts(4));
        assert!(report.makespan_centralized.is_none());
        assert_eq!(report.edges[1].items.hi, None, "cycle edge is unbounded");
        let json = plan_to_json(&report);
        assert!(json.contains("\"makespan_centralized\":null"));
        assert!(json.contains("\"items_hi\":null"));
    }

    #[test]
    fn json_is_wellformed_and_tagged() {
        let report = analyze(&pipeline(), &opts(10));
        let json = plan_to_json(&report);
        let v = crate::lint::render::JsonValue::parse(&json).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("moteur/plan/v1"));
        assert_eq!(v.get("edges").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("n_data").unwrap().as_usize(), Some(10));
        let human = render_plan(&report);
        assert!(human.contains("site fragments"));
        assert!(human.contains("a:out → b:in"));
    }
}
