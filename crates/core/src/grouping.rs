//! The job-grouping graph transform (paper §3.6).
//!
//! Finds sequential chains of descriptor-bound services — P whose every
//! output link targets a single successor Q — and merges them into a
//! *virtual grouped service* submitted as one grid job. On the paper's
//! application (Fig. 9) this merges `crestLines`+`crestMatch` and
//! `PFMatchICP`+`PFRegister`, cutting 6 job submissions per image pair
//! down to 4.
//!
//! A pair (P, Q) is groupable when:
//!
//! - both are plain services bound to descriptors (or already-grouped
//!   services, so chains of any length collapse),
//! - neither is a synchronization processor or involved in a cycle or
//!   a coordination constraint,
//! - every data link out of P ends at Q (so no third party needs P's
//!   outputs), and each of Q's input ports is fed either only by P or
//!   only by non-P processors,
//! - both use the dot-product iteration strategy (grouping must not
//!   change invocation cardinality).

use crate::error::MoteurError;
use crate::graph::{IterationStrategy, ProcId, Processor, ProcessorKind, Workflow};
use crate::service::{GroupSource, GroupedBinding, GroupedStage, ServiceBinding};

/// Apply grouping repeatedly until no pair can be merged.
pub fn group_workflow(workflow: &Workflow) -> Result<Workflow, MoteurError> {
    let mut wf = workflow.clone();
    while let Some((p, q)) = find_groupable_pair(&wf) {
        wf = merge_pair(&wf, p, q)?;
    }
    Ok(wf)
}

/// Number of service processors that would be fused away by grouping.
pub fn groupable_pairs(workflow: &Workflow) -> usize {
    let mut wf = workflow.clone();
    let mut count = 0;
    while let Some((p, q)) = find_groupable_pair(&wf) {
        wf = merge_pair(&wf, p, q).expect("find_groupable_pair returned a mergeable pair");
        count += 1;
    }
    count
}

fn is_groupable_service(wf: &Workflow, id: ProcId, in_cycle: &[bool]) -> bool {
    let p = wf.processor(id);
    p.kind == ProcessorKind::Service
        && !p.synchronization
        && !in_cycle[id.0]
        && p.iteration == IterationStrategy::Dot
        && matches!(
            p.binding,
            Some(ServiceBinding::Descriptor { .. }) | Some(ServiceBinding::Grouped(_))
        )
        && !wf.control.iter().any(|(a, b)| *a == id || *b == id)
}

fn find_groupable_pair(wf: &Workflow) -> Option<(ProcId, ProcId)> {
    let scc_ids = wf.scc_ids();
    let mut sizes = std::collections::HashMap::new();
    for &id in &scc_ids {
        *sizes.entry(id).or_insert(0usize) += 1;
    }
    let in_cycle: Vec<bool> = (0..wf.processors.len())
        .map(|v| {
            sizes[&scc_ids[v]] > 1
                || wf
                    .links
                    .iter()
                    .any(|l| l.from.proc.0 == v && l.to.proc.0 == v)
        })
        .collect();
    for p in (0..wf.processors.len()).map(ProcId) {
        if !is_groupable_service(wf, p, &in_cycle) {
            continue;
        }
        let succs = wf.data_succs(p);
        if succs.len() != 1 || succs[0] == p {
            continue;
        }
        let q = succs[0];
        if !is_groupable_service(wf, q, &in_cycle) {
            continue;
        }
        // Each Q input port must be homogeneous: fed only by P or only
        // by non-P sources.
        let q_ports = wf.processor(q).inputs.len();
        let mut ok = true;
        for port in 0..q_ports {
            let feeders: Vec<ProcId> = wf
                .links
                .iter()
                .filter(|l| l.to.proc == q && l.to.port == port)
                .map(|l| l.from.proc)
                .collect();
            let from_p = feeders.iter().filter(|f| **f == p).count();
            if from_p > 0 && from_p != feeders.len() {
                ok = false;
                break;
            }
            // A P-fed port must be fed by exactly one P output.
            if from_p > 1 {
                ok = false;
                break;
            }
        }
        if ok {
            return Some((p, q));
        }
    }
    None
}

/// View any groupable binding as a [`GroupedBinding`].
fn as_group(p: &Processor) -> Result<GroupedBinding, MoteurError> {
    match &p.binding {
        Some(ServiceBinding::Grouped(g)) => Ok(g.clone()),
        Some(ServiceBinding::Descriptor {
            descriptor,
            profile,
        }) => {
            let fixed: std::collections::HashSet<&str> = profile
                .fixed_params
                .iter()
                .map(|(s, _)| s.as_str())
                .collect();
            let inputs = p
                .inputs
                .iter()
                .enumerate()
                .filter(|(_, port)| !fixed.contains(port.as_str()))
                .map(|(i, port)| (port.clone(), GroupSource::ExternalPort(i)))
                .collect();
            Ok(GroupedBinding {
                stages: vec![GroupedStage {
                    name: p.name.clone(),
                    descriptor: descriptor.clone(),
                    profile: profile.clone(),
                    inputs,
                }],
                exposed_outputs: p.outputs.iter().map(|o| (0, o.clone())).collect(),
            })
        }
        _ => Err(MoteurError::new(format!("`{}` is not groupable", p.name))),
    }
}

fn merge_pair(wf: &Workflow, p_id: ProcId, q_id: ProcId) -> Result<Workflow, MoteurError> {
    let p = wf.processor(p_id);
    let q = wf.processor(q_id);
    let pg = as_group(p)?;
    let qg = as_group(q)?;
    let p_stage_count = pg.stages.len();

    // Classify Q's input ports: fed by P (→ which P output port) or
    // external (→ new merged port index).
    #[derive(Clone, Copy)]
    enum QPort {
        FromP { p_out_port: usize },
        External { merged_port: usize },
    }
    let mut q_port_kind = Vec::with_capacity(q.inputs.len());
    let mut merged_inputs: Vec<String> = p
        .inputs
        .iter()
        .map(|port| prefixed(&p.name, port, p.binding.as_ref()))
        .collect();
    for (port, port_name) in q.inputs.iter().enumerate() {
        let feeder = wf
            .links
            .iter()
            .find(|l| l.to.proc == q_id && l.to.port == port && l.from.proc == p_id);
        match feeder {
            Some(l) => q_port_kind.push(QPort::FromP {
                p_out_port: l.from.port,
            }),
            None => {
                q_port_kind.push(QPort::External {
                    merged_port: merged_inputs.len(),
                });
                merged_inputs.push(format!("{}.{}", q.name, port_name));
            }
        }
    }

    // Remap Q's stage input sources into the merged group.
    let remap = |src: &GroupSource| -> GroupSource {
        match src {
            GroupSource::StageOutput { stage, slot } => GroupSource::StageOutput {
                stage: stage + p_stage_count,
                slot: slot.clone(),
            },
            GroupSource::ExternalPort(qi) => match q_port_kind[*qi] {
                QPort::FromP { p_out_port } => {
                    let (stage, slot) = pg.exposed_outputs[p_out_port].clone();
                    GroupSource::StageOutput { stage, slot }
                }
                QPort::External { merged_port } => GroupSource::ExternalPort(merged_port),
            },
        }
    };
    let mut stages = pg.stages.clone();
    for stage in &qg.stages {
        stages.push(GroupedStage {
            name: stage.name.clone(),
            descriptor: stage.descriptor.clone(),
            profile: stage.profile.clone(),
            inputs: stage
                .inputs
                .iter()
                .map(|(s, src)| (s.clone(), remap(src)))
                .collect(),
        });
    }
    let exposed_outputs = qg
        .exposed_outputs
        .iter()
        .map(|(stage, slot)| (stage + p_stage_count, slot.clone()))
        .collect();

    let merged = Processor {
        name: format!("{}+{}", p.name, q.name),
        kind: ProcessorKind::Service,
        inputs: merged_inputs,
        outputs: q.outputs.clone(),
        iteration: IterationStrategy::Dot,
        synchronization: false,
        binding: Some(ServiceBinding::Grouped(GroupedBinding {
            stages,
            exposed_outputs,
        })),
        item_bytes: None,
    };

    // Rebuild the workflow with P and Q replaced by the merged node.
    let mut out = Workflow::new(wf.name.clone());
    let mut id_map: Vec<Option<ProcId>> = vec![None; wf.processors.len()];
    for (i, proc) in wf.processors.iter().enumerate() {
        if ProcId(i) == p_id || ProcId(i) == q_id {
            continue;
        }
        id_map[i] = Some(out.push(proc.clone()));
    }
    let merged_id = out.push(merged);
    id_map[p_id.0] = Some(merged_id);
    id_map[q_id.0] = Some(merged_id);

    for l in &wf.links {
        // Internal P→Q links disappear.
        if l.from.proc == p_id && l.to.proc == q_id {
            continue;
        }
        let (from_proc, from_port) = if l.from.proc == q_id {
            (merged_id, l.from.port) // Q's outputs keep their positions
        } else {
            (id_map[l.from.proc.0].expect("mapped"), l.from.port)
        };
        let (to_proc, to_port) = if l.to.proc == p_id {
            (merged_id, l.to.port) // P's inputs keep their positions
        } else if l.to.proc == q_id {
            let QPort::External { merged_port } = q_port_kind[l.to.port] else {
                unreachable!("non-P links to a P-fed port were excluded by the pair check")
            };
            (merged_id, merged_port)
        } else {
            (id_map[l.to.proc.0].expect("mapped"), l.to.port)
        };
        out.links.push(crate::graph::Link {
            from: crate::graph::PortRef {
                proc: from_proc,
                port: from_port,
            },
            to: crate::graph::PortRef {
                proc: to_proc,
                port: to_port,
            },
        });
    }
    for (a, b) in &wf.control {
        out.control.push((
            id_map[a.0].expect("control procs are never grouped"),
            id_map[b.0].expect("control procs are never grouped"),
        ));
    }
    Ok(out)
}

/// Merged input-port name. Single-stage descriptor processors keep the
/// raw slot names prefixed by their own name so the ports stay unique
/// across repeated merges.
fn prefixed(proc_name: &str, port: &str, binding: Option<&ServiceBinding>) -> String {
    match binding {
        Some(ServiceBinding::Grouped(_)) => port.to_string(), // already prefixed
        _ => format!("{proc_name}.{port}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceProfile;
    use moteur_wrapper::{AccessMethod, ExecutableDescriptor, FileItem, InputSlot, OutputSlot};

    fn desc(name: &str, inputs: &[&str], outputs: &[&str]) -> ExecutableDescriptor {
        ExecutableDescriptor {
            executable: FileItem {
                name: name.into(),
                access: AccessMethod::Local,
                value: name.into(),
            },
            inputs: inputs
                .iter()
                .map(|i| InputSlot {
                    name: i.to_string(),
                    option: format!("-{i}"),
                    access: Some(AccessMethod::Gfn),
                    bytes: None,
                })
                .collect(),
            outputs: outputs
                .iter()
                .map(|o| OutputSlot {
                    name: o.to_string(),
                    option: format!("-{o}"),
                    access: AccessMethod::Gfn,
                })
                .collect(),
            sandboxes: vec![],
            nondeterministic: false,
        }
    }

    fn svc(name: &str, inputs: &[&str], outputs: &[&str]) -> ServiceBinding {
        ServiceBinding::descriptor(desc(name, inputs, outputs), ServiceProfile::new(10.0))
    }

    /// source → A → B → sink (a plain sequential chain).
    fn chain2() -> Workflow {
        let mut w = Workflow::new("chain");
        let s = w.add_source("src");
        let a = w.add_service("A", &["in"], &["mid"], svc("A", &["in"], &["mid"]));
        let b = w.add_service("B", &["mid"], &["out"], svc("B", &["mid"], &["out"]));
        let k = w.add_sink("sink");
        w.connect(s, "out", a, "in").unwrap();
        w.connect(a, "mid", b, "mid").unwrap();
        w.connect(b, "out", k, "in").unwrap();
        w
    }

    #[test]
    fn chain_of_two_collapses_to_one_grouped_service() {
        let g = group_workflow(&chain2()).unwrap();
        g.validate().unwrap();
        let services: Vec<&Processor> = g
            .processors
            .iter()
            .filter(|p| p.kind == ProcessorKind::Service)
            .collect();
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].name, "A+B");
        match services[0].binding.as_ref().unwrap() {
            ServiceBinding::Grouped(gb) => {
                assert_eq!(gb.stages.len(), 2);
                assert_eq!(gb.stages[0].name, "A");
                assert_eq!(gb.stages[1].name, "B");
                // B's input comes from A's `mid` output.
                assert_eq!(
                    gb.stages[1].inputs[0].1,
                    GroupSource::StageOutput {
                        stage: 0,
                        slot: "mid".into()
                    }
                );
                assert_eq!(gb.exposed_outputs, vec![(1, "out".to_string())]);
            }
            other => panic!("expected grouped binding, got {other:?}"),
        }
    }

    #[test]
    fn chain_of_three_collapses_fully() {
        let mut w = Workflow::new("chain3");
        let s = w.add_source("src");
        let a = w.add_service("A", &["in"], &["x"], svc("A", &["in"], &["x"]));
        let b = w.add_service("B", &["x"], &["y"], svc("B", &["x"], &["y"]));
        let c = w.add_service("C", &["y"], &["z"], svc("C", &["y"], &["z"]));
        let k = w.add_sink("sink");
        w.connect(s, "out", a, "in").unwrap();
        w.connect(a, "x", b, "x").unwrap();
        w.connect(b, "y", c, "y").unwrap();
        w.connect(c, "z", k, "in").unwrap();
        let g = group_workflow(&w).unwrap();
        g.validate().unwrap();
        let services: Vec<&Processor> = g
            .processors
            .iter()
            .filter(|p| p.kind == ProcessorKind::Service)
            .collect();
        assert_eq!(services.len(), 1);
        match services[0].binding.as_ref().unwrap() {
            ServiceBinding::Grouped(gb) => assert_eq!(gb.stages.len(), 3),
            _ => panic!("expected grouped"),
        }
        assert_eq!(groupable_pairs(&w), 2);
    }

    #[test]
    fn branching_producer_is_not_grouped() {
        // A feeds both B and C → A must stay separate.
        let mut w = Workflow::new("branch");
        let s = w.add_source("src");
        let a = w.add_service("A", &["in"], &["o"], svc("A", &["in"], &["o"]));
        let b = w.add_service("B", &["i"], &["o"], svc("B", &["i"], &["o"]));
        let c = w.add_service("C", &["i"], &["o"], svc("C", &["i"], &["o"]));
        let k = w.add_sink("sink");
        w.connect(s, "out", a, "in").unwrap();
        w.connect(a, "o", b, "i").unwrap();
        w.connect(a, "o", c, "i").unwrap();
        w.connect(b, "o", k, "in").unwrap();
        w.connect(c, "o", k, "in").unwrap();
        let g = group_workflow(&w).unwrap();
        assert_eq!(
            g.processors
                .iter()
                .filter(|p| p.kind == ProcessorKind::Service)
                .count(),
            3,
            "no grouping should occur"
        );
    }

    #[test]
    fn consumer_with_external_inputs_still_groups() {
        // Like crestLines+crestMatch: B also reads the source directly.
        let mut w = Workflow::new("ext");
        let s = w.add_source("src");
        let a = w.add_service("A", &["img"], &["crest"], svc("A", &["img"], &["crest"]));
        let b = w.add_service(
            "B",
            &["crest", "img"],
            &["trf"],
            svc("B", &["crest", "img"], &["trf"]),
        );
        let k = w.add_sink("sink");
        w.connect(s, "out", a, "img").unwrap();
        w.connect(a, "crest", b, "crest").unwrap();
        w.connect(s, "out", b, "img").unwrap();
        w.connect(b, "trf", k, "in").unwrap();
        let g = group_workflow(&w).unwrap();
        g.validate().unwrap();
        let merged = g.find("A+B").expect("A and B merged");
        let mp = g.processor(merged);
        assert_eq!(mp.inputs, vec!["A.img".to_string(), "B.img".to_string()]);
        // The source now feeds both merged ports.
        let feeds: Vec<usize> = g
            .links
            .iter()
            .filter(|l| l.to.proc == merged)
            .map(|l| l.to.port)
            .collect();
        assert_eq!(feeds.len(), 2);
    }

    #[test]
    fn synchronization_processors_are_never_grouped() {
        let mut w = chain2();
        let b = w.find("B").unwrap();
        w.set_synchronization(b, true);
        let g = group_workflow(&w).unwrap();
        assert!(g.find("A+B").is_none());
    }

    #[test]
    fn local_bound_services_are_never_grouped() {
        let mut w = Workflow::new("local");
        let s = w.add_source("src");
        let svc_fn =
            |_: &[crate::token::Token]| -> Result<Vec<(String, crate::value::DataValue)>, String> {
                Ok(vec![])
            };
        let a = w.add_service("A", &["in"], &["o"], ServiceBinding::local(svc_fn));
        let b = w.add_service("B", &["i"], &[], ServiceBinding::local(svc_fn));
        w.connect(s, "out", a, "in").unwrap();
        w.connect(a, "o", b, "i").unwrap();
        let g = group_workflow(&w).unwrap();
        assert!(g.find("A+B").is_none());
    }

    #[test]
    fn cross_product_consumers_are_not_grouped() {
        let mut w = chain2();
        let b = w.find("B").unwrap();
        w.set_iteration(b, IterationStrategy::Cross);
        let g = group_workflow(&w).unwrap();
        assert!(g.find("A+B").is_none());
    }

    #[test]
    fn control_constrained_services_are_not_grouped() {
        let mut w = chain2();
        let a = w.find("A").unwrap();
        let b = w.find("B").unwrap();
        w.add_control(a, b);
        let g = group_workflow(&w).unwrap();
        assert!(g.find("A+B").is_none());
    }

    #[test]
    fn grouped_workflow_passes_validation_and_preserves_sinks() {
        let g = group_workflow(&chain2()).unwrap();
        g.validate().unwrap();
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.sources().len(), 1);
    }
}
