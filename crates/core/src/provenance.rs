//! Provenance export: serialise a run's history trees to XML.
//!
//! The paper leans on data provenance twice — to solve the causality
//! problem of out-of-order completions (§3.3/§4.1) and pointing at the
//! semantic-provenance literature for e-Science (its ref. \[32\]). This
//! module makes the recorded provenance a first-class artifact: every
//! sink token's full history tree, exportable as an XML document and
//! reloadable for post-hoc analysis.

use crate::error::MoteurError;
use crate::token::History;
use crate::trace::WorkflowResult;
use moteur_xml::Element;
use std::sync::Arc;

/// Serialise one history tree.
pub fn history_to_xml(history: &History) -> Element {
    match history {
        History::Source { source, position } => Element::new("source")
            .with_attr("name", source.clone())
            .with_attr("position", position.to_string()),
        History::Derived { processor, inputs } => {
            let mut el = Element::new("derived").with_attr("processor", processor.clone());
            for input in inputs {
                el = el.with_child(history_to_xml(input));
            }
            el
        }
    }
}

/// Parse a history tree back from its XML form.
pub fn history_from_xml(el: &Element) -> Result<Arc<History>, MoteurError> {
    match el.name.as_str() {
        "source" => {
            let name = el
                .attr("name")
                .ok_or_else(|| MoteurError::new("<source> requires a name"))?;
            let position: u32 = el
                .attr("position")
                .ok_or_else(|| MoteurError::new("<source> requires a position"))?
                .parse()
                .map_err(|_| MoteurError::new("bad <source> position"))?;
            Ok(History::source(name, position))
        }
        "derived" => {
            let processor = el
                .attr("processor")
                .ok_or_else(|| MoteurError::new("<derived> requires a processor"))?;
            let inputs = el
                .elements()
                .map(history_from_xml)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(History::derived(processor, inputs))
        }
        other => Err(MoteurError::new(format!(
            "unknown provenance element <{other}>"
        ))),
    }
}

/// Export every sink token's provenance as one `<provenance>` document.
pub fn export_provenance(result: &WorkflowResult) -> String {
    let mut root = Element::new("provenance");
    let mut sinks: Vec<&String> = result.sink_outputs.keys().collect();
    sinks.sort();
    for sink in sinks {
        let mut sink_el = Element::new("sink").with_attr("name", sink.clone());
        for token in result.sink(sink) {
            sink_el = sink_el.with_child(
                Element::new("data")
                    .with_attr("index", token.index.to_string())
                    .with_child(history_to_xml(&token.history)),
            );
        }
        root = root.with_child(sink_el);
    }
    root.to_pretty_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{DataIndex, Token};
    use crate::value::DataValue;
    use moteur_gridsim::SimDuration;
    use std::collections::HashMap;

    fn sample_history() -> Arc<History> {
        History::derived(
            "crestMatch",
            vec![
                History::derived("crestLines", vec![History::source("floatingImage", 3)]),
                History::source("referenceImage", 3),
            ],
        )
    }

    #[test]
    fn history_round_trips_through_xml() {
        let h = sample_history();
        let el = history_to_xml(&h);
        let text = el.to_pretty_string();
        let parsed = moteur_xml::parse(&text).unwrap();
        let back = history_from_xml(&parsed).unwrap();
        assert_eq!(*back, *h);
    }

    #[test]
    fn export_contains_every_sink_token() {
        let mut sink_outputs = HashMap::new();
        sink_outputs.insert(
            "results".to_string(),
            vec![
                Token {
                    value: DataValue::from(1.0),
                    index: DataIndex::single(0),
                    history: sample_history(),
                },
                Token {
                    value: DataValue::from(2.0),
                    index: DataIndex::single(1),
                    history: History::source("s", 1),
                },
            ],
        );
        let result = WorkflowResult {
            sink_counts: sink_outputs
                .iter()
                .map(|(k, v)| (k.clone(), v.len()))
                .collect(),
            sink_outputs,
            makespan: SimDuration::from_secs(1),
            invocations: vec![],
            jobs_submitted: 2,
            bytes_transferred: 0,
            quarantined: vec![],
        };
        let xml = export_provenance(&result);
        let doc = moteur_xml::parse(&xml).unwrap();
        assert_eq!(doc.name, "provenance");
        let sink = doc.child("sink").unwrap();
        assert_eq!(sink.attr("name"), Some("results"));
        assert_eq!(sink.children_named("data").count(), 2);
        // The nested tree survives.
        let first = sink.children_named("data").next().unwrap();
        let derived = first.child("derived").unwrap();
        assert_eq!(derived.attr("processor"), Some("crestMatch"));
        assert_eq!(
            derived.element_count(),
            4,
            "crestMatch + crestLines + 2 sources"
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let bad = moteur_xml::parse("<wat/>").unwrap();
        assert!(history_from_xml(&bad).is_err());
        let bad = moteur_xml::parse("<source/>").unwrap();
        assert!(history_from_xml(&bad).is_err());
        let bad = moteur_xml::parse(r#"<source name="s" position="x"/>"#).unwrap();
        assert!(history_from_xml(&bad).is_err());
        let bad = moteur_xml::parse("<derived/>").unwrap();
        assert!(history_from_xml(&bad).is_err());
    }

    #[test]
    fn empty_result_exports_an_empty_document() {
        let result = WorkflowResult {
            sink_outputs: HashMap::new(),
            sink_counts: HashMap::new(),
            makespan: SimDuration::ZERO,
            invocations: vec![],
            jobs_submitted: 0,
            bytes_transferred: 0,
            quarantined: vec![],
        };
        let xml = export_provenance(&result);
        let doc = moteur_xml::parse(&xml).unwrap();
        assert_eq!(doc.element_count(), 1);
    }
}
