//! The service-based workflow graph (paper §2.1).
//!
//! A workflow is a directed graph of *processors* with named input and
//! output *ports*; *data links* connect output ports to input ports and
//! *coordination constraints* (control links) order processors without
//! moving data. Sources have no inputs, sinks no outputs. Unlike
//! task-based DAG managers, the graph may contain cycles (paper Fig. 2):
//! the number of loop iterations is decided at run time by conditional
//! output routing.

use crate::error::MoteurError;
use crate::service::ServiceBinding;
use moteur_xml::Span;
use std::collections::HashSet;

/// Index of a processor inside its workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

/// What role a processor plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorKind {
    /// Produces the workflow's input data (one implicit output port).
    Source,
    /// Collects results (one implicit input port).
    Sink,
    /// An application service.
    Service,
}

/// Iteration strategy composing a multi-input service's port streams
/// (paper §2.2, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IterationStrategy {
    /// Pair items with equal index vectors — `min(n, m)` invocations.
    #[default]
    Dot,
    /// All combinations — `n × m` invocations, concatenated indices.
    Cross,
}

/// A workflow node.
#[derive(Debug, Clone)]
pub struct Processor {
    pub name: String,
    pub kind: ProcessorKind,
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
    pub iteration: IterationStrategy,
    /// Synchronization processor (paper §2.3): consumes its entire
    /// input streams at once, after all its ancestors completed.
    pub synchronization: bool,
    pub binding: Option<ServiceBinding>,
    /// Declared per-item size in bytes of the data this node emits.
    /// Meaningful for sources (`<source bytes="…"/>`), where no
    /// descriptor exists to carry an `<outputsize>`; the static planner
    /// falls back to the consumer's declared slot size, then to its
    /// default, when absent.
    pub item_bytes: Option<u64>,
}

/// One end of a data link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    pub proc: ProcId,
    pub port: usize,
}

/// A data link from an output port to an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    pub from: PortRef,
    pub to: PortRef,
}

/// Byte spans locating each workflow construct in the document it was
/// parsed from — the side table the [`crate::lint`] diagnostics engine
/// uses to point at SCUFL source. Builder-constructed workflows leave
/// it empty; graph transforms (grouping) do not maintain it.
#[derive(Debug, Clone, Default)]
pub struct SourceSpans {
    /// The root `<scufl>` element.
    pub workflow: Span,
    /// One span per processor, parallel to `Workflow::processors`.
    pub processors: Vec<Span>,
    /// One span per data link, parallel to `Workflow::links`.
    pub links: Vec<Span>,
    /// One span per coordination constraint, parallel to
    /// `Workflow::control`.
    pub control: Vec<Span>,
    /// `(processor, slot)` spans of `<param>` elements.
    pub params: Vec<(ProcId, String, Span)>,
    /// `(processor, slot)` spans of `<outputsize>` elements.
    pub outputsizes: Vec<(ProcId, String, Span)>,
}

impl SourceSpans {
    /// Span of processor `id`, or [`Span::EMPTY`] when untracked.
    pub fn processor(&self, id: ProcId) -> Span {
        self.processors.get(id.0).copied().unwrap_or(Span::EMPTY)
    }

    /// Span of the `i`-th data link, or [`Span::EMPTY`] when untracked.
    pub fn link(&self, i: usize) -> Span {
        self.links.get(i).copied().unwrap_or(Span::EMPTY)
    }

    /// Span of the `i`-th coordination constraint.
    pub fn control_edge(&self, i: usize) -> Span {
        self.control.get(i).copied().unwrap_or(Span::EMPTY)
    }

    /// Span of the `<param slot=…>` element on `id`, if tracked.
    pub fn param(&self, id: ProcId, slot: &str) -> Span {
        self.params
            .iter()
            .find(|(p, s, _)| *p == id && s == slot)
            .map_or(Span::EMPTY, |(_, _, sp)| *sp)
    }

    /// Span of the `<outputsize slot=…>` element on `id`, if tracked.
    pub fn outputsize(&self, id: ProcId, slot: &str) -> Span {
        self.outputsizes
            .iter()
            .find(|(p, s, _)| *p == id && s == slot)
            .map_or(Span::EMPTY, |(_, _, sp)| *sp)
    }
}

/// The workflow graph.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    pub name: String,
    pub processors: Vec<Processor>,
    pub links: Vec<Link>,
    /// Coordination constraints: `(before, after)` — `after` may not
    /// fire until `before` is exhausted.
    pub control: Vec<(ProcId, ProcId)>,
    /// Source-location side table populated by the Scufl parser;
    /// empty for programmatically built workflows.
    pub spans: SourceSpans,
}

impl Workflow {
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a data source with the given name (one output port `out`).
    pub fn add_source(&mut self, name: impl Into<String>) -> ProcId {
        self.push(Processor {
            name: name.into(),
            kind: ProcessorKind::Source,
            inputs: vec![],
            outputs: vec!["out".into()],
            iteration: IterationStrategy::Dot,
            synchronization: false,
            binding: None,
            item_bytes: None,
        })
    }

    /// Add a data sink (one input port `in`).
    pub fn add_sink(&mut self, name: impl Into<String>) -> ProcId {
        self.push(Processor {
            name: name.into(),
            kind: ProcessorKind::Sink,
            inputs: vec!["in".into()],
            outputs: vec![],
            iteration: IterationStrategy::Dot,
            synchronization: false,
            binding: None,
            item_bytes: None,
        })
    }

    /// Add a service processor.
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        inputs: &[&str],
        outputs: &[&str],
        binding: ServiceBinding,
    ) -> ProcId {
        self.push(Processor {
            name: name.into(),
            kind: ProcessorKind::Service,
            inputs: inputs
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            outputs: outputs
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            iteration: IterationStrategy::Dot,
            synchronization: false,
            binding: Some(binding),
            item_bytes: None,
        })
    }

    pub fn push(&mut self, processor: Processor) -> ProcId {
        self.processors.push(processor);
        ProcId(self.processors.len() - 1)
    }

    pub fn processor(&self, id: ProcId) -> &Processor {
        &self.processors[id.0]
    }

    pub fn processor_mut(&mut self, id: ProcId) -> &mut Processor {
        &mut self.processors[id.0]
    }

    /// Set a processor's iteration strategy.
    pub fn set_iteration(&mut self, id: ProcId, strategy: IterationStrategy) {
        self.processors[id.0].iteration = strategy;
    }

    /// Mark a processor as a synchronization barrier.
    pub fn set_synchronization(&mut self, id: ProcId, sync: bool) {
        self.processors[id.0].synchronization = sync;
    }

    /// Declare the per-item size (bytes) of the data a node emits —
    /// used by `moteur::plan` to bound transfer volumes on edges whose
    /// producer has no descriptor (sources).
    pub fn set_item_bytes(&mut self, id: ProcId, bytes: u64) {
        self.processors[id.0].item_bytes = Some(bytes);
    }

    /// Find a processor by name.
    pub fn find(&self, name: &str) -> Option<ProcId> {
        self.processors
            .iter()
            .position(|p| p.name == name)
            .map(ProcId)
    }

    fn port_index(ports: &[String], name: &str) -> Option<usize> {
        ports.iter().position(|p| p == name)
    }

    /// Connect `from_proc.out_port` to `to_proc.in_port` (by port name).
    pub fn connect(
        &mut self,
        from_proc: ProcId,
        out_port: &str,
        to_proc: ProcId,
        in_port: &str,
    ) -> Result<(), MoteurError> {
        let fp = self
            .processors
            .get(from_proc.0)
            .ok_or_else(|| MoteurError::new("bad source processor id"))?;
        let tp = self
            .processors
            .get(to_proc.0)
            .ok_or_else(|| MoteurError::new("bad target processor id"))?;
        let from_port = Self::port_index(&fp.outputs, out_port).ok_or_else(|| {
            MoteurError::new(format!("`{}` has no output port `{out_port}`", fp.name))
        })?;
        let to_port = Self::port_index(&tp.inputs, in_port).ok_or_else(|| {
            MoteurError::new(format!("`{}` has no input port `{in_port}`", tp.name))
        })?;
        self.links.push(Link {
            from: PortRef {
                proc: from_proc,
                port: from_port,
            },
            to: PortRef {
                proc: to_proc,
                port: to_port,
            },
        });
        Ok(())
    }

    /// Add a coordination constraint: `after` waits for `before`.
    pub fn add_control(&mut self, before: ProcId, after: ProcId) {
        self.control.push((before, after));
    }

    /// Links arriving at `proc`.
    pub fn in_links(&self, proc: ProcId) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(move |l| l.to.proc == proc)
    }

    /// Links leaving `proc`.
    pub fn out_links(&self, proc: ProcId) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(move |l| l.from.proc == proc)
    }

    /// Direct data predecessors (deduplicated).
    pub fn data_preds(&self, proc: ProcId) -> Vec<ProcId> {
        let mut seen = HashSet::new();
        self.in_links(proc)
            .map(|l| l.from.proc)
            .filter(|p| seen.insert(*p))
            .collect()
    }

    /// Direct data successors (deduplicated).
    pub fn data_succs(&self, proc: ProcId) -> Vec<ProcId> {
        let mut seen = HashSet::new();
        self.out_links(proc)
            .map(|l| l.to.proc)
            .filter(|p| seen.insert(*p))
            .collect()
    }

    /// Sources of the workflow.
    pub fn sources(&self) -> Vec<ProcId> {
        (0..self.processors.len())
            .map(ProcId)
            .filter(|&p| self.processors[p.0].kind == ProcessorKind::Source)
            .collect()
    }

    /// Sinks of the workflow.
    pub fn sinks(&self) -> Vec<ProcId> {
        (0..self.processors.len())
            .map(ProcId)
            .filter(|&p| self.processors[p.0].kind == ProcessorKind::Sink)
            .collect()
    }

    /// Strongly connected components (Tarjan), in reverse topological
    /// order of the condensation. Singletons without self-loops are the
    /// acyclic part; larger components are the service-approach loops.
    pub fn sccs(&self) -> Vec<Vec<ProcId>> {
        struct TarjanState {
            index: Vec<Option<usize>>,
            lowlink: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next_index: usize,
            components: Vec<Vec<ProcId>>,
        }
        fn strongconnect(v: usize, adj: &[Vec<usize>], st: &mut TarjanState) {
            st.index[v] = Some(st.next_index);
            st.lowlink[v] = st.next_index;
            st.next_index += 1;
            st.stack.push(v);
            st.on_stack[v] = true;
            for &w in &adj[v] {
                if st.index[w].is_none() {
                    strongconnect(w, adj, st);
                    st.lowlink[v] = st.lowlink[v].min(st.lowlink[w]);
                } else if st.on_stack[w] {
                    st.lowlink[v] = st.lowlink[v].min(st.index[w].unwrap());
                }
            }
            if st.lowlink[v] == st.index[v].unwrap() {
                let mut comp = Vec::new();
                loop {
                    let w = st.stack.pop().unwrap();
                    st.on_stack[w] = false;
                    comp.push(ProcId(w));
                    if w == v {
                        break;
                    }
                }
                st.components.push(comp);
            }
        }

        let n = self.processors.len();
        let mut adj = vec![Vec::new(); n];
        for l in &self.links {
            adj[l.from.proc.0].push(l.to.proc.0);
        }
        let mut st = TarjanState {
            index: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        };
        for v in 0..n {
            if st.index[v].is_none() {
                strongconnect(v, &adj, &mut st);
            }
        }
        st.components
    }

    /// For each processor, the id of its SCC (same id ⇔ same cycle).
    pub fn scc_ids(&self) -> Vec<usize> {
        let comps = self.sccs();
        let mut ids = vec![0usize; self.processors.len()];
        for (cid, comp) in comps.iter().enumerate() {
            for p in comp {
                ids[p.0] = cid;
            }
        }
        ids
    }

    /// Does the graph contain a data-link cycle?
    pub fn has_cycle(&self) -> bool {
        let n = self.processors.len();
        if self.sccs().iter().any(|c| c.len() > 1) {
            return true;
        }
        // Self loops.
        (0..n).any(|v| {
            self.links
                .iter()
                .any(|l| l.from.proc.0 == v && l.to.proc.0 == v)
        })
    }

    /// Number of *services* on the longest source→sink path (`n_W` of
    /// the theoretical model, §3.5.1). Only valid for acyclic graphs.
    pub fn critical_path_services(&self) -> Result<usize, MoteurError> {
        Ok(self.critical_path()?.len())
    }

    /// The service processors along the longest source→sink path, in
    /// execution order — the critical path of the theoretical model.
    /// Only valid for acyclic graphs.
    pub fn critical_path(&self) -> Result<Vec<ProcId>, MoteurError> {
        if self.has_cycle() {
            return Err(MoteurError::new(
                "critical path undefined on cyclic workflows",
            ));
        }
        // Memoised longest path (service count) with successor tracking.
        fn longest(
            w: &Workflow,
            v: usize,
            memo: &mut [Option<(usize, Option<usize>)>],
        ) -> (usize, Option<usize>) {
            if let Some(m) = memo[v] {
                return m;
            }
            let own = usize::from(w.processors[v].kind == ProcessorKind::Service);
            let best = w
                .data_succs(ProcId(v))
                .into_iter()
                .map(|s| (longest(w, s.0, memo).0, s.0))
                .max_by_key(|(len, _)| *len);
            let r = match best {
                Some((len, succ)) => (own + len, Some(succ)),
                None => (own, None),
            };
            memo[v] = Some(r);
            r
        }
        let mut memo = vec![None; self.processors.len()];
        let start = (0..self.processors.len()).max_by_key(|&v| longest(self, v, &mut memo).0);
        let mut path = Vec::new();
        let mut cur = start;
        while let Some(v) = cur {
            if self.processors[v].kind == ProcessorKind::Service {
                path.push(ProcId(v));
            }
            cur = memo[v].and_then(|(_, succ)| succ);
        }
        Ok(path)
    }

    /// Structural validation: every link references existing ports,
    /// every service input port is fed by at least one link, services
    /// have bindings, sources/sinks have none.
    pub fn validate(&self) -> Result<(), MoteurError> {
        let mut names = HashSet::new();
        for p in &self.processors {
            if !names.insert(&p.name) {
                return Err(MoteurError::new(format!(
                    "duplicate processor name `{}`",
                    p.name
                )));
            }
            match p.kind {
                ProcessorKind::Service => {
                    if p.binding.is_none() {
                        return Err(MoteurError::new(format!(
                            "service `{}` has no binding",
                            p.name
                        )));
                    }
                }
                ProcessorKind::Source | ProcessorKind::Sink => {
                    if p.binding.is_some() {
                        return Err(MoteurError::new(format!(
                            "source/sink `{}` must not have a binding",
                            p.name
                        )));
                    }
                }
            }
        }
        for l in &self.links {
            let fp = self
                .processors
                .get(l.from.proc.0)
                .ok_or_else(|| MoteurError::new("link from unknown processor"))?;
            let tp = self
                .processors
                .get(l.to.proc.0)
                .ok_or_else(|| MoteurError::new("link to unknown processor"))?;
            if l.from.port >= fp.outputs.len() {
                return Err(MoteurError::new(format!(
                    "link from bad port of `{}`",
                    fp.name
                )));
            }
            if l.to.port >= tp.inputs.len() {
                return Err(MoteurError::new(format!(
                    "link to bad port of `{}`",
                    tp.name
                )));
            }
        }
        for (idx, p) in self.processors.iter().enumerate() {
            if p.kind == ProcessorKind::Source {
                continue;
            }
            for (port, pname) in p.inputs.iter().enumerate() {
                let fed = self
                    .links
                    .iter()
                    .any(|l| l.to.proc.0 == idx && l.to.port == port);
                if !fed {
                    return Err(MoteurError::new(format!(
                        "input port `{pname}` of `{}` is not connected",
                        p.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceProfile;
    use moteur_wrapper::crest_lines_example;

    fn dummy_binding() -> ServiceBinding {
        ServiceBinding::descriptor(crest_lines_example(), ServiceProfile::new(1.0))
    }

    /// The paper's Fig. 1: P1 → P2, P1 → P3 (plus source/sink plumbing).
    fn fig1() -> (Workflow, [ProcId; 5]) {
        let mut w = Workflow::new("fig1");
        let src = w.add_source("source");
        let p1 = w.add_service("P1", &["in"], &["out"], dummy_binding());
        let p2 = w.add_service("P2", &["in"], &["out"], dummy_binding());
        let p3 = w.add_service("P3", &["in"], &["out"], dummy_binding());
        let sink = w.add_sink("sink");
        w.connect(src, "out", p1, "in").unwrap();
        w.connect(p1, "out", p2, "in").unwrap();
        w.connect(p1, "out", p3, "in").unwrap();
        w.connect(p2, "out", sink, "in").unwrap();
        w.connect(p3, "out", sink, "in").unwrap();
        (w, [src, p1, p2, p3, sink])
    }

    #[test]
    fn builder_and_lookup() {
        let (w, [src, p1, ..]) = fig1();
        assert_eq!(w.find("P1"), Some(p1));
        assert_eq!(w.find("missing"), None);
        assert_eq!(w.processor(src).kind, ProcessorKind::Source);
        assert_eq!(w.sources(), vec![src]);
        assert_eq!(w.sinks().len(), 1);
    }

    #[test]
    fn preds_and_succs() {
        let (w, [src, p1, p2, p3, sink]) = fig1();
        assert_eq!(w.data_preds(p1), vec![src]);
        let mut succs = w.data_succs(p1);
        succs.sort();
        assert_eq!(succs, vec![p2, p3]);
        assert_eq!(w.data_preds(sink).len(), 2);
    }

    #[test]
    fn connect_rejects_unknown_ports() {
        let (mut w, [_, p1, p2, ..]) = fig1();
        assert!(w.connect(p1, "nope", p2, "in").is_err());
        assert!(w.connect(p1, "out", p2, "nope").is_err());
    }

    #[test]
    fn validate_accepts_fig1() {
        fig1().0.validate().unwrap();
    }

    #[test]
    fn validate_rejects_unconnected_input() {
        let mut w = Workflow::new("w");
        let _ = w.add_service("lonely", &["in"], &["out"], dummy_binding());
        let err = w.validate().unwrap_err();
        assert!(err.to_string().contains("not connected"));
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let mut w = Workflow::new("w");
        w.add_source("x");
        w.add_source("x");
        assert!(w.validate().unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn validate_rejects_service_without_binding() {
        let mut w = Workflow::new("w");
        let s = w.add_source("s");
        let p = w.push(Processor {
            name: "p".into(),
            kind: ProcessorKind::Service,
            inputs: vec!["in".into()],
            outputs: vec![],
            iteration: IterationStrategy::Dot,
            synchronization: false,
            binding: None,
            item_bytes: None,
        });
        w.connect(s, "out", p, "in").unwrap();
        assert!(w.validate().unwrap_err().to_string().contains("no binding"));
    }

    #[test]
    fn fig1_is_acyclic_with_critical_path_2() {
        let (w, _) = fig1();
        assert!(!w.has_cycle());
        // Longest service chain: P1 → P2 (or P1 → P3) = 2 services.
        assert_eq!(w.critical_path_services().unwrap(), 2);
    }

    /// The paper's Fig. 2 loop: P1 → P2 → P3 → (sink | back to P2).
    fn fig2() -> (Workflow, [ProcId; 5]) {
        let mut w = Workflow::new("fig2");
        let src = w.add_source("source");
        let p1 = w.add_service("P1", &["in"], &["out"], dummy_binding());
        let p2 = w.add_service("P2", &["in"], &["out"], dummy_binding());
        let p3 = w.add_service("P3", &["in"], &["again", "done"], dummy_binding());
        let sink = w.add_sink("sink");
        w.connect(src, "out", p1, "in").unwrap();
        w.connect(p1, "out", p2, "in").unwrap();
        w.connect(p2, "out", p3, "in").unwrap();
        w.connect(p3, "again", p2, "in").unwrap();
        w.connect(p3, "done", sink, "in").unwrap();
        (w, [src, p1, p2, p3, sink])
    }

    #[test]
    fn fig2_loop_is_detected_as_cycle() {
        let (w, [_, _, p2, p3, _]) = fig2();
        assert!(w.has_cycle());
        let ids = w.scc_ids();
        assert_eq!(ids[p2.0], ids[p3.0], "P2 and P3 share a cycle");
        let comps = w.sccs();
        let big: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].len(), 2);
        assert!(w.critical_path_services().is_err());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut w = Workflow::new("w");
        let s = w.add_source("s");
        let p = w.add_service("p", &["in"], &["out"], dummy_binding());
        w.connect(s, "out", p, "in").unwrap();
        w.connect(p, "out", p, "in").unwrap();
        assert!(w.has_cycle());
    }

    #[test]
    fn control_links_are_recorded() {
        let (mut w, [_, p1, p2, ..]) = fig1();
        w.add_control(p1, p2);
        assert_eq!(w.control, vec![(p1, p2)]);
    }

    #[test]
    fn sccs_cover_every_processor_exactly_once() {
        let (w, _) = fig2();
        let comps = w.sccs();
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, w.processors.len());
    }
}
