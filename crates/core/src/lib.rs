//! # moteur
//!
//! A Rust reimplementation of **MOTEUR**, the optimized service-based
//! workflow enactor of Glatard, Montagnat & Pennec, *"Efficient
//! services composition for grid-enabled data-intensive applications"*
//! (HPDC 2006).
//!
//! The crate provides:
//!
//! - a service-based **workflow model** ([`graph`]) with ports, data
//!   links, coordination constraints, synchronization barriers and
//!   cycles (run-time-bounded optimization loops, paper Fig. 2);
//! - **iteration strategies** ([`iterate`]) — streaming dot and cross
//!   products over input streams (Fig. 3) — with provenance
//!   **history trees** ([`token`]) resolving the out-of-order causality
//!   problem of §3.3;
//! - the **enactor** ([`enactor`]) combining workflow, data and service
//!   parallelism plus **job grouping** ([`grouping`]) through the
//!   generic code wrapper (`moteur-wrapper`);
//! - pluggable **backends** ([`backend`]): ideal virtual time, the
//!   EGEE-like grid simulator, and real worker threads;
//! - the paper's **theoretical makespan model** ([`model`], eqs. 1–4)
//!   and ASCII **execution diagrams** ([`diagram`], Figs. 4–6);
//! - **static diagnostics** ([`lint`]): rustc-style `M0xx` findings
//!   with source spans, plus eq. 1–4 makespan/job-count prediction.
//!
//! ## Quickstart
//!
//! Enact the paper's Fig. 1 workflow (`P1 → {P2, P3}`) on an ideal
//! virtual-time backend with data and service parallelism:
//!
//! ```
//! use moteur::prelude::*;
//!
//! // A trivial in-process service that forwards its input.
//! let forward = |inputs: &[Token]| -> Result<Vec<(String, DataValue)>, String> {
//!     Ok(vec![("out".into(), inputs[0].value.clone())])
//! };
//!
//! let mut wf = Workflow::new("fig1");
//! let src = wf.add_source("source");
//! let p1 = wf.add_service("P1", &["in"], &["out"], ServiceBinding::local(forward));
//! let p2 = wf.add_service("P2", &["in"], &["out"], ServiceBinding::local(forward));
//! let p3 = wf.add_service("P3", &["in"], &["out"], ServiceBinding::local(forward));
//! let sink = wf.add_sink("results");
//! wf.connect(src, "out", p1, "in").unwrap();
//! wf.connect(p1, "out", p2, "in").unwrap();
//! wf.connect(p1, "out", p3, "in").unwrap();
//! wf.connect(p2, "out", sink, "in").unwrap();
//! wf.connect(p3, "out", sink, "in").unwrap();
//!
//! let inputs = InputData::new().set("source", vec!["D0".into(), "D1".into(), "D2".into()]);
//! let mut backend = VirtualBackend::new();
//! let result = run(&wf, &inputs, EnactorConfig::sp_dp(), &mut backend).unwrap();
//! assert_eq!(result.sink("results").len(), 6, "3 data × 2 branches");
//! ```

pub mod backend;
pub mod config;
pub mod daemon;
pub mod diagram;
pub mod dot;
pub mod enactor;
pub mod error;
pub mod ft;
pub mod granularity;
pub mod graph;
pub mod grouping;
pub mod iterate;
pub mod lint;
pub mod model;
pub mod obs;
pub mod plan;
pub mod provenance;
pub mod report;
pub mod service;
pub mod store;
pub mod token;
pub mod trace;
pub mod value;

pub use backend::{
    Backend, BackendCompletion, BackendJob, InvocationId, JobPayload, LocalBackend, ScopedBackend,
    SimBackend, VirtualBackend,
};
pub use config::{EnactorConfig, SloConfig};
pub use daemon::protocol::{apply as daemon_apply, check_protocol, serve, Request, DAEMON_SCHEMA};
pub use daemon::{
    Daemon, DaemonConfig, DaemonMetrics, InstanceState, InstanceStatus, ScuflParser, TenantConfig,
    TenantMetrics,
};
pub use dot::to_dot;
pub use enactor::{
    run, run_cached, run_fault_tolerant, run_fault_tolerant_cached, run_observed, EnactCtx,
    InputData, WorkflowInstance,
};
pub use error::MoteurError;
pub use ft::{
    FtConfig, FtPolicy, QuarantineEntry, RetryPolicy, TimeoutAction, TimeoutPolicy, WorkflowReport,
};
pub use granularity::{inverse_normal_cdf, GranularityModel};
pub use graph::{IterationStrategy, Link, PortRef, ProcId, Processor, ProcessorKind, Workflow};
pub use grouping::{group_workflow, groupable_pairs};
pub use iterate::{MatchEngine, MatchedSet};
pub use lint::{
    lint_errors, lint_workflow, predict, render_human, render_prediction, report_from_json,
    report_to_json, Diagnostic, LintReport, Prediction, Severity,
};
pub use model::TimeMatrix;
pub use obs::chrome::{chrome_trace, chrome_trace_with_metrics};
pub use obs::critical::{analyze as critical_path, render as render_critical_path, CriticalPath};
pub use obs::detect::{analyze as detect_bottlenecks, Bottleneck, DetectReport, Straggler};
pub use obs::drift::{check_drift, DriftEntry, DriftReport, Observation};
pub use obs::fit::{fit_sweep, MakespanFit, SweepPoint};
pub use obs::metrics::{MetricsRegistry, MetricsSink};
pub use obs::openmetrics::render as render_openmetrics;
pub use obs::openmetrics::render_daemon as render_daemon_openmetrics;
pub use obs::openmetrics::render_with_prof as render_openmetrics_with_prof;
pub use obs::prof::{
    from_json as prof_from_json, to_json as prof_to_json, Prof, ProfReport, ProfScope, Subsystem,
    PROF_SCHEMA,
};
pub use obs::sinks::{EventBuffer, JsonlSink, NullSink, RingBufferSink};
pub use obs::span::{GridPhase, Span, SpanBuffer, SpanId, SpanKind, SpanSink, SpanTree};
pub use obs::timeline::{ResourceStats, Timeline, TimelineSink, TIMELINE_SCHEMA};
pub use obs::{EventSink, Obs, TraceEvent};
pub use plan::interval::{output_intervals, CardInterval, SourceSizes};
pub use plan::{analyze as plan_workflow, plan_to_json, render_plan, PlanOptions, PlanReport};
pub use provenance::{export_provenance, history_from_xml, history_to_xml};
pub use report::{render_report, service_stats, total_busy, ServiceStats};
pub use service::{
    CostModel, GroupSource, GroupedBinding, GroupedStage, LocalService, ServiceBinding,
    ServiceProfile,
};
pub use store::{
    descriptor_digest, group_digest, invocation_key, provenance_key, DataStore, HistoryXmlCache,
    InvocationKey, ProvenanceKey, StoreConfig, StoreStats, STORE_SCHEMA,
};
pub use token::{DataIndex, History, Token};
pub use trace::{InvocationRecord, WorkflowResult};
pub use value::DataValue;

/// Common imports for building and running workflows.
pub mod prelude {
    pub use crate::backend::{Backend, LocalBackend, SimBackend, VirtualBackend};
    pub use crate::config::EnactorConfig;
    pub use crate::enactor::{
        run, run_cached, run_fault_tolerant, run_fault_tolerant_cached, run_observed, InputData,
    };
    pub use crate::error::MoteurError;
    pub use crate::ft::{
        FtConfig, FtPolicy, RetryPolicy, TimeoutAction, TimeoutPolicy, WorkflowReport,
    };
    pub use crate::graph::{IterationStrategy, ProcId, Workflow};
    pub use crate::model::TimeMatrix;
    pub use crate::obs::{Obs, TraceEvent};
    pub use crate::service::{CostModel, LocalService, ServiceBinding, ServiceProfile};
    pub use crate::store::{DataStore, StoreConfig};
    pub use crate::token::{DataIndex, History, Token};
    pub use crate::trace::WorkflowResult;
    pub use crate::value::DataValue;
}
