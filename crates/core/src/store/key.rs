//! Content-addressed keys for the data manager.
//!
//! Identity of a data item is its *provenance*, not its storage
//! location (§3.3/§4.1 of the paper): the history tree names exactly
//! which source items and which processors produced a value, so hashing
//! the canonical value bytes together with the serialised history tree
//! yields a key that is stable across runs, processes and machines —
//! the [`ProvenanceKey`]. An invocation is then identified by the
//! service it fires, a digest of *what the service is* (its executable
//! descriptor, fixed parameters and output sizing) and the provenance
//! keys of its inputs in port order — the [`InvocationKey`].
//!
//! Hashing is a hand-rolled 64-bit FNV-1a: the workspace is hermetic
//! (no external crates), and collision resistance against adversarial
//! inputs is a non-goal for a memoization cache — a collision costs a
//! wrong reuse in a simulation, not a security boundary.

use crate::provenance::history_to_xml;
use crate::service::{GroupedBinding, ServiceProfile};
use crate::token::History;
use crate::value::DataValue;
use moteur_wrapper::ExecutableDescriptor;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher over length-prefixed fields.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed, so `("ab","c")` and `("a","bc")` differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Content address of one data item: hash of its canonical value bytes
/// and its serialised history tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProvenanceKey(pub u64);

impl ProvenanceKey {
    /// Fixed-width lowercase hex, the on-disk spelling.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(ProvenanceKey)
    }
}

impl std::fmt::Display for ProvenanceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pk:{:016x}", self.0)
    }
}

/// Identity of one service invocation: service name, service digest and
/// input provenance keys in port order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InvocationKey(pub u64);

impl InvocationKey {
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(InvocationKey)
    }
}

impl std::fmt::Display for InvocationKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ik:{:016x}", self.0)
    }
}

/// Hash a value's canonical byte form. Returns `false` for values with
/// no canonical form (opaque in-process handles) — those are
/// uncacheable and the whole key computation aborts.
fn hash_value(h: &mut Fnv1a, value: &DataValue) -> bool {
    match value {
        DataValue::Str(s) => {
            h.write(&[1]);
            h.write_str(s);
            true
        }
        DataValue::Num(n) => {
            h.write(&[2]);
            // Bit pattern, so -0.0/0.0 and NaN payloads stay distinct
            // and no formatting round-trip is involved.
            h.write_u64(n.to_bits());
            true
        }
        DataValue::File { gfn, bytes } => {
            h.write(&[3]);
            h.write_str(gfn);
            h.write_u64(*bytes);
            true
        }
        DataValue::List(items) => {
            h.write(&[4]);
            h.write_u64(items.len() as u64);
            items.iter().all(|v| hash_value(h, v))
        }
        DataValue::Opaque(_) => false,
    }
}

/// Content address of `value` produced with `history`. `None` when the
/// value has no canonical byte form (opaque payloads, or lists
/// containing them).
pub fn provenance_key(value: &DataValue, history: &History) -> Option<ProvenanceKey> {
    provenance_key_with_xml(value, &history_to_xml(history).to_pretty_string())
}

/// [`provenance_key`] with the history tree already serialised — the
/// shared tail that keeps the cached ([`HistoryXmlCache`]) and uncached
/// paths byte-identical by construction.
fn provenance_key_with_xml(value: &DataValue, history_xml: &str) -> Option<ProvenanceKey> {
    let mut h = Fnv1a::new();
    if !hash_value(&mut h, value) {
        return None;
    }
    h.write_str(history_xml);
    Some(ProvenanceKey(h.finish()))
}

/// Memoized history-tree serialisation, keyed by `Arc` identity.
///
/// The profiler showed `provenance_key` dominated by serialising the
/// same history trees over and over: every cache probe re-renders the
/// full XML of every matched token's history, and histories are shared
/// `Arc`s that the enactor probes many times (once per downstream
/// match, again on insert). Pointer identity is a sound cache key
/// because histories are immutable once built; the map holds a strong
/// reference to each keyed tree, so an address can never be reused for
/// a different tree while its entry is alive.
///
/// Byte identity with the uncached path is by construction: both paths
/// feed the same `history_to_xml(...).to_pretty_string()` output into
/// `provenance_key_with_xml`.
#[derive(Debug, Default)]
pub struct HistoryXmlCache {
    map: std::collections::HashMap<usize, (std::sync::Arc<History>, std::sync::Arc<str>)>,
}

impl HistoryXmlCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct history trees serialised so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The serialised pretty-printed XML of `history`, rendered at most
    /// once per distinct tree.
    pub fn xml(&mut self, history: &std::sync::Arc<History>) -> std::sync::Arc<str> {
        let key = std::sync::Arc::as_ptr(history) as usize;
        self.map
            .entry(key)
            .or_insert_with(|| {
                let xml: std::sync::Arc<str> = history_to_xml(history).to_pretty_string().into();
                (std::sync::Arc::clone(history), xml)
            })
            .1
            .clone()
    }

    /// [`provenance_key`] through the cache: identical bytes, one
    /// serialisation per distinct history tree instead of one per call.
    pub fn provenance_key(
        &mut self,
        value: &DataValue,
        history: &std::sync::Arc<History>,
    ) -> Option<ProvenanceKey> {
        let xml = self.xml(history);
        provenance_key_with_xml(value, &xml)
    }
}

/// Digest of *what a descriptor-bound service is*: the full descriptor
/// XML plus the profile's fixed parameters and output sizing (they
/// change the produced values, so they are part of the identity; the
/// cost model is timing, not content, and is excluded).
pub fn descriptor_digest(descriptor: &ExecutableDescriptor, profile: &ServiceProfile) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(&descriptor.to_xml().to_pretty_string());
    h.write_u64(profile.fixed_params.len() as u64);
    for (k, v) in &profile.fixed_params {
        h.write_str(k);
        h.write_str(v);
    }
    h.write_u64(profile.output_bytes.len() as u64);
    for (name, bytes) in &profile.output_bytes {
        h.write_str(name);
        h.write_u64(*bytes);
    }
    h.finish()
}

/// Digest of a grouped (JG) binding: the composed descriptor chain.
/// Folds every stage's name, descriptor digest and input wiring plus
/// the exposed-output mapping, so regrouping or rewiring the chain
/// changes the key even when the individual descriptors do not.
pub fn group_digest(group: &GroupedBinding) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(group.stages.len() as u64);
    for stage in &group.stages {
        h.write_str(&stage.name);
        h.write_u64(descriptor_digest(&stage.descriptor, &stage.profile));
        h.write_u64(stage.inputs.len() as u64);
        for (slot, source) in &stage.inputs {
            h.write_str(slot);
            match source {
                crate::service::GroupSource::ExternalPort(i) => {
                    h.write(&[1]);
                    h.write_u64(*i as u64);
                }
                crate::service::GroupSource::StageOutput { stage, slot } => {
                    h.write(&[2]);
                    h.write_u64(*stage as u64);
                    h.write_str(slot);
                }
            }
        }
    }
    h.write_u64(group.exposed_outputs.len() as u64);
    for (stage, slot) in &group.exposed_outputs {
        h.write_u64(*stage as u64);
        h.write_str(slot);
    }
    h.finish()
}

/// Key of one invocation: `(service name, service digest, input
/// provenance keys in port order)`.
pub fn invocation_key(service: &str, digest: u64, inputs: &[ProvenanceKey]) -> InvocationKey {
    let mut h = Fnv1a::new();
    h.write_str(service);
    h.write_u64(digest);
    h.write_u64(inputs.len() as u64);
    for k in inputs {
        h.write_u64(k.0);
    }
    InvocationKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::History;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn provenance_key_depends_on_value_and_history() {
        let h1 = History::source("s", 0);
        let h2 = History::source("s", 1);
        let v = DataValue::from("img");
        let a = provenance_key(&v, &h1).unwrap();
        assert_eq!(a, provenance_key(&v, &h1).unwrap(), "deterministic");
        assert_ne!(a, provenance_key(&v, &h2).unwrap(), "history matters");
        assert_ne!(
            a,
            provenance_key(&DataValue::from("other"), &h1).unwrap(),
            "value matters"
        );
    }

    #[test]
    fn opaque_values_are_uncacheable() {
        let h = History::source("s", 0);
        assert!(provenance_key(&DataValue::opaque(42u32), &h).is_none());
        let list = DataValue::List(vec![DataValue::from("x"), DataValue::opaque(1u8)]);
        assert!(provenance_key(&list, &h).is_none());
    }

    #[test]
    fn numeric_keys_use_bit_patterns() {
        let h = History::source("s", 0);
        let a = provenance_key(&DataValue::Num(0.0), &h).unwrap();
        let b = provenance_key(&DataValue::Num(-0.0), &h).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn invocation_key_orders_inputs() {
        let k1 = ProvenanceKey(1);
        let k2 = ProvenanceKey(2);
        assert_ne!(
            invocation_key("svc", 9, &[k1, k2]),
            invocation_key("svc", 9, &[k2, k1]),
            "port order is part of the identity"
        );
        assert_ne!(
            invocation_key("svc", 9, &[k1]),
            invocation_key("svc", 8, &[k1]),
            "descriptor digest is part of the identity"
        );
    }

    #[test]
    fn cached_keys_match_uncached_keys() {
        let src = History::source("acquisition", 3);
        let derived = History::derived("crestLines", vec![src.clone(), History::source("ref", 0)]);
        let mut cache = HistoryXmlCache::new();
        for history in [&src, &derived] {
            for value in [
                DataValue::from("img"),
                DataValue::Num(1.5),
                DataValue::File {
                    gfn: "lfn://x".into(),
                    bytes: 7_864_320,
                },
            ] {
                assert_eq!(
                    cache.provenance_key(&value, history),
                    provenance_key(&value, history),
                    "cache must be byte-transparent"
                );
            }
        }
        assert_eq!(cache.len(), 2, "one serialisation per distinct tree");
        // Opaque values stay uncacheable through the cached path too.
        assert_eq!(cache.provenance_key(&DataValue::opaque(1u8), &src), None);
    }

    #[test]
    fn cache_pins_trees_against_address_reuse() {
        let mut cache = HistoryXmlCache::new();
        let mut keys = std::collections::HashSet::new();
        // Churn many short-lived trees: if the cache keyed by a dangling
        // address, a recycled allocation would collide and return the
        // previous tree's XML (wrong key). The strong ref prevents that.
        for i in 0..256 {
            let h = History::source("s", i);
            let k = cache.provenance_key(&DataValue::from("v"), &h).unwrap();
            assert_eq!(k, provenance_key(&DataValue::from("v"), &h).unwrap());
            keys.insert(k);
        }
        assert_eq!(keys.len(), 256, "every position hashed distinctly");
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn hex_round_trips() {
        let k = ProvenanceKey(0x00ab_cdef_0123_4567);
        assert_eq!(ProvenanceKey::from_hex(&k.to_hex()), Some(k));
        assert!(ProvenanceKey::from_hex("xyz").is_none());
        let i = InvocationKey(7);
        assert_eq!(InvocationKey::from_hex(&i.to_hex()), Some(i));
    }
}
