//! The provenance-keyed data manager: a content-addressed store with
//! invocation memoization and warm-restart persistence.
//!
//! Every optimization in the paper (DP, SP, JG) amortises the grid
//! overhead of *recomputing* data; this module eliminates the
//! recomputation itself when identical work is re-enacted. Data items
//! are addressed by [`ProvenanceKey`] — a hash of the canonical value
//! bytes and the serialised history tree, so two runs that derive the
//! same value through the same lineage agree on the address without
//! coordination. Completed invocations are indexed by
//! [`InvocationKey`] (service name, descriptor digest, input keys in
//! port order); the enactor consults that index before submitting a
//! grid job and, on a hit, replaces the job with a simulated *fetch*
//! of the cached results (see [`DataStore::fetch_cost`]).
//!
//! The store is bounded: every entry is charged its logical payload
//! footprint and an LRU sweep evicts the coldest entries once
//! [`StoreConfig::max_bytes`] is exceeded. An invocation whose outputs
//! were evicted simply misses — [`DataStore::gc`] prunes such dangling
//! index entries.
//!
//! With a directory attached ([`DataStore::open`]/[`DataStore::save`])
//! the store persists as a versioned `index.json` plus a `store.jsonl`
//! data file, giving `moteur run --cache-dir` warm restarts across
//! processes.

mod disk;
pub mod key;

pub use key::{
    descriptor_digest, group_digest, invocation_key, provenance_key, Fnv1a, HistoryXmlCache,
    InvocationKey, ProvenanceKey,
};

use crate::error::MoteurError;
use crate::token::History;
use crate::value::DataValue;
use moteur_gridsim::Distribution;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// On-disk schema tag; bump on any incompatible layout change.
pub const STORE_SCHEMA: &str = "moteur-store/v1";

/// Tuning knobs of a [`DataStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Eviction threshold over the summed entry footprints.
    pub max_bytes: u64,
    /// Simulated cost (seconds) of fetching one cached invocation's
    /// results back from storage — keeps the makespan model honest
    /// about data movement. `None` makes cache hits free.
    pub fetch_cost: Option<Distribution>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_bytes: 256 * 1024 * 1024,
            fetch_cost: Some(Distribution::Constant(1.0)),
        }
    }
}

impl StoreConfig {
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    pub fn with_fetch_cost(mut self, cost: Option<Distribution>) -> Self {
        self.fetch_cost = cost;
        self
    }
}

/// A stored data item.
#[derive(Debug, Clone)]
struct DataEntry {
    value: DataValue,
    /// Logical payload size charged against [`StoreConfig::max_bytes`].
    footprint: u64,
    /// LRU clock value of the last insert or hit.
    last_used: u64,
}

/// A memoized invocation: which service ran and which stored items its
/// output ports map to.
#[derive(Debug, Clone)]
struct InvocationEntry {
    service: String,
    outputs: Vec<(String, ProvenanceKey)>,
}

/// Point-in-time counters of a [`DataStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    pub entries: usize,
    pub bytes: u64,
    pub invocations: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl StoreStats {
    /// Hits over lookups; 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries ({} bytes), {} invocations; {} hits / {} misses ({:.0}% hit ratio), {} evictions",
            self.entries,
            self.bytes,
            self.invocations,
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.evictions
        )
    }
}

/// Logical payload size of a value: what the entry is charged for
/// eviction purposes. Files count their registered size (the dominant
/// term for data-intensive runs), scalars their encoded width.
fn value_footprint(value: &DataValue) -> u64 {
    match value {
        DataValue::Str(s) => s.len() as u64,
        DataValue::Num(_) => 8,
        DataValue::File { bytes, .. } => *bytes,
        DataValue::List(items) => 8 + items.iter().map(value_footprint).sum::<u64>(),
        DataValue::Opaque(_) => 0,
    }
}

/// The content-addressed data store. See the module docs.
#[derive(Debug, Default)]
pub struct DataStore {
    config: StoreConfig,
    dir: Option<PathBuf>,
    data: HashMap<ProvenanceKey, DataEntry>,
    invocations: HashMap<InvocationKey, InvocationEntry>,
    bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DataStore {
    /// A process-local store with no persistence directory.
    pub fn in_memory(config: StoreConfig) -> Self {
        DataStore {
            config,
            dir: None,
            data: HashMap::new(),
            invocations: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Open (or initialise) a persistent store rooted at `dir`. An
    /// existing store is loaded and its schema version checked; a fresh
    /// directory starts empty — nothing is written until [`save`].
    ///
    /// [`save`]: DataStore::save
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Self, MoteurError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut store = Self::in_memory(config);
        store.dir = Some(dir.to_path_buf());
        if dir.join(disk::INDEX_FILE).exists() {
            disk::load(&mut store, dir)?;
        }
        Ok(store)
    }

    /// Persist the store into its directory (no-op for in-memory
    /// stores). Writes are whole-file and sorted by key, so saving the
    /// same contents twice produces byte-identical files.
    pub fn save(&self) -> Result<(), MoteurError> {
        match &self.dir {
            Some(dir) => disk::save(self, dir),
            None => Ok(()),
        }
    }

    /// The directory backing this store, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The configured fetch-cost distribution for cache hits.
    pub fn fetch_cost(&self) -> Option<&Distribution> {
        self.config.fetch_cost.as_ref()
    }

    /// Insert (or refresh) one data item, returning its key. `None`
    /// when the value is uncacheable (opaque payloads) or larger than
    /// the whole store budget.
    pub fn insert(&mut self, value: &DataValue, history: &History) -> Option<ProvenanceKey> {
        let key = provenance_key(value, history)?;
        self.insert_with_key(key, value)
    }

    /// [`DataStore::insert`] with the provenance key already computed —
    /// the enactor's path, which derives keys through a shared
    /// [`key::HistoryXmlCache`] so the history tree is serialised once
    /// per distinct tree instead of once per insert.
    pub fn insert_with_key(
        &mut self,
        key: ProvenanceKey,
        value: &DataValue,
    ) -> Option<ProvenanceKey> {
        self.tick += 1;
        if let Some(entry) = self.data.get_mut(&key) {
            entry.last_used = self.tick;
            return Some(key);
        }
        let footprint = value_footprint(value);
        if footprint > self.config.max_bytes {
            return None;
        }
        self.evict_to_fit(footprint);
        self.bytes += footprint;
        self.data.insert(
            key,
            DataEntry {
                value: value.clone(),
                footprint,
                last_used: self.tick,
            },
        );
        Some(key)
    }

    /// Record a completed invocation: its outputs (port name → stored
    /// key, in output-port order) become retrievable via `key`.
    pub fn record_invocation(
        &mut self,
        key: InvocationKey,
        service: impl Into<String>,
        outputs: Vec<(String, ProvenanceKey)>,
    ) {
        self.invocations.insert(
            key,
            InvocationEntry {
                service: service.into(),
                outputs,
            },
        );
    }

    /// Look up a memoized invocation. A hit requires the index entry
    /// *and* every referenced data item (eviction may have removed
    /// some); partial entries count as misses. Hits refresh the LRU
    /// clock of every returned item.
    pub fn lookup(&mut self, key: InvocationKey) -> Option<Vec<(String, DataValue)>> {
        let complete = self
            .invocations
            .get(&key)
            .is_some_and(|inv| inv.outputs.iter().all(|(_, pk)| self.data.contains_key(pk)));
        if !complete {
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        self.tick += 1;
        let inv = self.invocations.get(&key).expect("checked above");
        let mut out = Vec::with_capacity(inv.outputs.len());
        for (port, pk) in inv.outputs.clone() {
            let entry = self.data.get_mut(&pk).expect("checked above");
            entry.last_used = self.tick;
            out.push((port, entry.value.clone()));
        }
        Some(out)
    }

    /// Whether an invocation would hit, without touching the counters
    /// or the LRU clock.
    pub fn contains(&self, key: InvocationKey) -> bool {
        self.invocations
            .get(&key)
            .is_some_and(|inv| inv.outputs.iter().all(|(_, pk)| self.data.contains_key(pk)))
    }

    /// Drop invocation-index entries whose data items were evicted.
    /// Returns how many entries were pruned.
    pub fn gc(&mut self) -> usize {
        let data = &self.data;
        let before = self.invocations.len();
        self.invocations
            .retain(|_, inv| inv.outputs.iter().all(|(_, pk)| data.contains_key(pk)));
        before - self.invocations.len()
    }

    /// Drop everything (data, index and counters). The directory, if
    /// any, is rewritten empty on the next [`DataStore::save`].
    pub fn clear(&mut self) {
        self.data.clear();
        self.invocations.clear();
        self.bytes = 0;
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.data.len(),
            bytes: self.bytes,
            invocations: self.invocations.len(),
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Evict least-recently-used entries until `incoming` more bytes
    /// fit under the budget.
    fn evict_to_fit(&mut self, incoming: u64) {
        while self.bytes + incoming > self.config.max_bytes && !self.data.is_empty() {
            let coldest = self
                .data
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.0))
                .map(|(k, _)| *k)
                .expect("non-empty checked");
            let entry = self.data.remove(&coldest).expect("key just found");
            self.bytes -= entry.footprint;
            self.evictions += 1;
        }
    }

    // -- crate-internal accessors for the disk codec -----------------

    pub(crate) fn iter_data(&self) -> impl Iterator<Item = (ProvenanceKey, &DataValue, u64, u64)> {
        self.data
            .iter()
            .map(|(k, e)| (*k, &e.value, e.footprint, e.last_used))
    }

    pub(crate) fn iter_invocations(
        &self,
    ) -> impl Iterator<Item = (InvocationKey, &str, &[(String, ProvenanceKey)])> {
        self.invocations
            .iter()
            .map(|(k, e)| (*k, e.service.as_str(), e.outputs.as_slice()))
    }

    /// Load-path insert: trusts the persisted key and footprint.
    pub(crate) fn load_data(&mut self, key: ProvenanceKey, value: DataValue, footprint: u64) {
        self.tick += 1;
        self.bytes += footprint;
        self.data.insert(
            key,
            DataEntry {
                value,
                footprint,
                last_used: self.tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(gfn: &str, bytes: u64) -> DataValue {
        DataValue::File {
            gfn: gfn.into(),
            bytes,
        }
    }

    fn keyed(store: &mut DataStore, gfn: &str, bytes: u64, pos: u32) -> ProvenanceKey {
        store
            .insert(&file(gfn, bytes), &History::source("s", pos))
            .expect("files are cacheable")
    }

    #[test]
    fn lookup_round_trips_recorded_invocations() {
        let mut store = DataStore::in_memory(StoreConfig::default());
        let pk = keyed(&mut store, "gfn://a", 100, 0);
        let ik = invocation_key("svc", 7, &[ProvenanceKey(1)]);
        assert!(store.lookup(ik).is_none(), "unknown invocation misses");
        store.record_invocation(ik, "svc", vec![("out".into(), pk)]);
        let outs = store.lookup(ik).expect("recorded invocation hits");
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "out");
        assert_eq!(outs[0].1.as_file(), Some(("gfn://a", 100)));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let mut store = DataStore::in_memory(
            StoreConfig::default()
                .with_max_bytes(250)
                .with_fetch_cost(None),
        );
        let a = keyed(&mut store, "gfn://a", 100, 0);
        let b = keyed(&mut store, "gfn://b", 100, 1);
        // Touch `a` so `b` is the LRU victim.
        let ika = invocation_key("svc", 0, &[]);
        store.record_invocation(ika, "svc", vec![("out".into(), a)]);
        store.lookup(ika).unwrap();
        let _c = keyed(&mut store, "gfn://c", 100, 2);
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 250);
        assert!(store.contains(ika), "recently used entry survived");
        let ikb = invocation_key("svc", 1, &[]);
        store.record_invocation(ikb, "svc", vec![("out".into(), b)]);
        assert!(
            store.lookup(ikb).is_none(),
            "invocation with an evicted output misses"
        );
        assert_eq!(store.gc(), 1, "gc prunes the dangling index entry");
        assert_eq!(store.gc(), 0);
    }

    #[test]
    fn oversized_values_are_refused() {
        let mut store = DataStore::in_memory(StoreConfig::default().with_max_bytes(10));
        assert!(store
            .insert(&file("gfn://big", 11), &History::source("s", 0))
            .is_none());
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut store = DataStore::in_memory(StoreConfig::default());
        let pk = keyed(&mut store, "gfn://a", 10, 0);
        store.record_invocation(invocation_key("s", 0, &[]), "s", vec![("o".into(), pk)]);
        store.clear();
        let stats = store.stats();
        assert_eq!(stats, StoreStats::default());
    }
}
