//! On-disk codec of a [`DataStore`]: a versioned `index.json` (schema
//! tag + invocation index) plus a `store.jsonl` data file (one entry
//! per line).
//!
//! Both files are rewritten whole on [`DataStore::save`], sorted by
//! key, so identical contents serialise byte-identically. Loading
//! verifies the schema tag first and rejects anything else with a
//! typed error — a future v2 layout will not be silently misread.
//!
//! Numbers are stored as the hex spelling of their IEEE-754 bit
//! pattern: JSON has no NaN/∞ and decimal round-trips are easy to get
//! subtly wrong, while the bit pattern is exactly what the
//! [`ProvenanceKey`] hashed.

use super::{DataStore, InvocationKey, ProvenanceKey, STORE_SCHEMA};
use crate::error::MoteurError;
use crate::lint::render::JsonValue;
use crate::obs::json::{array, JsonObject};
use crate::value::DataValue;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

pub(super) const INDEX_FILE: &str = "index.json";
pub(super) const DATA_FILE: &str = "store.jsonl";
pub(super) const LOCK_FILE: &str = ".moteur-store.lock";

/// How long a save or load waits for a concurrent writer to finish
/// before failing with a stale-lock diagnostic.
const LOCK_TIMEOUT: Duration = Duration::from_secs(5);

/// Advisory cross-process lock on a cache directory, held for the
/// duration of a save or load so concurrent writers serialise instead
/// of interleaving the `index.json` / `store.jsonl` pair. Std-only:
/// the lock is a `create_new` file (atomic on every platform) removed
/// on drop; a crashed holder leaves a stale file the error message
/// names.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    fn acquire(dir: &Path, timeout: Duration) -> Result<LockGuard, MoteurError> {
        let path = dir.join(LOCK_FILE);
        let deadline = Instant::now() + timeout;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if Instant::now() >= deadline {
                        return Err(MoteurError::new(format!(
                            "data store at {} is locked by another writer \
                             (if no other process is running, remove the stale lock {})",
                            dir.display(),
                            path.display()
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Write `contents` to `path` atomically: a same-directory temp file
/// renamed into place, so a reader (or a crash) never observes a
/// half-written file.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn encode_value(value: &DataValue) -> Option<String> {
    Some(match value {
        DataValue::Str(s) => JsonObject::new().str("t", "str").str("v", s).finish(),
        DataValue::Num(n) => JsonObject::new()
            .str("t", "num")
            .str("bits", &format!("{:016x}", n.to_bits()))
            .finish(),
        DataValue::File { gfn, bytes } => JsonObject::new()
            .str("t", "file")
            .str("gfn", gfn)
            .uint("bytes", *bytes)
            .finish(),
        DataValue::List(items) => {
            let encoded: Option<Vec<String>> = items.iter().map(encode_value).collect();
            JsonObject::new()
                .str("t", "list")
                .raw("items", &array(encoded?))
                .finish()
        }
        DataValue::Opaque(_) => return None,
    })
}

fn bad(what: &str) -> MoteurError {
    MoteurError::new(format!("corrupt data store: {what}"))
}

fn decode_value(v: &JsonValue) -> Result<DataValue, MoteurError> {
    let tag = v
        .get("t")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("value without a `t` tag"))?;
    match tag {
        "str" => Ok(DataValue::Str(
            v.get("v")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("str value without `v`"))?
                .to_string(),
        )),
        "num" => {
            let bits = v
                .get("bits")
                .and_then(JsonValue::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad("num value without hex `bits`"))?;
            Ok(DataValue::Num(f64::from_bits(bits)))
        }
        "file" => Ok(DataValue::File {
            gfn: v
                .get("gfn")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("file value without `gfn`"))?
                .to_string(),
            bytes: v
                .get("bytes")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad("file value without `bytes`"))? as u64,
        }),
        "list" => {
            let Some(JsonValue::Array(items)) = v.get("items") else {
                return Err(bad("list value without `items`"));
            };
            Ok(DataValue::List(
                items.iter().map(decode_value).collect::<Result<_, _>>()?,
            ))
        }
        other => Err(bad(&format!("unknown value tag `{other}`"))),
    }
}

/// Serialise `store` into `dir` (both files rewritten whole, under the
/// directory's advisory lock, each renamed into place atomically).
pub(super) fn save(store: &DataStore, dir: &Path) -> Result<(), MoteurError> {
    let _lock = LockGuard::acquire(dir, LOCK_TIMEOUT)?;
    let mut invocations: Vec<_> = store.iter_invocations().collect();
    invocations.sort_by_key(|(k, _, _)| *k);
    let rows = invocations.into_iter().map(|(key, service, outputs)| {
        let outs = outputs.iter().map(|(port, pk)| {
            JsonObject::new()
                .str("port", port)
                .str("pk", &pk.to_hex())
                .finish()
        });
        JsonObject::new()
            .str("key", &key.to_hex())
            .str("service", service)
            .raw("outputs", &array(outs))
            .finish()
    });
    let index = JsonObject::new()
        .str("schema", STORE_SCHEMA)
        .raw("invocations", &array(rows))
        .finish();
    write_atomic(&dir.join(INDEX_FILE), &(index + "\n"))?;

    let mut entries: Vec<_> = store.iter_data().collect();
    entries.sort_by_key(|(k, _, _, _)| *k);
    let mut jsonl = String::new();
    for (key, value, footprint, _) in entries {
        let encoded = encode_value(value)
            .ok_or_else(|| MoteurError::new("opaque value in the data store"))?;
        jsonl.push_str(
            &JsonObject::new()
                .str("pk", &key.to_hex())
                .uint("footprint", footprint)
                .raw("value", &encoded)
                .finish(),
        );
        jsonl.push('\n');
    }
    write_atomic(&dir.join(DATA_FILE), &jsonl)?;
    Ok(())
}

/// Load `dir` into an empty `store`, verifying the schema tag. Takes
/// the same advisory lock as [`save`] so the `index.json` /
/// `store.jsonl` pair is read as one coherent snapshot.
pub(super) fn load(store: &mut DataStore, dir: &Path) -> Result<(), MoteurError> {
    let _lock = LockGuard::acquire(dir, LOCK_TIMEOUT)?;
    let index_text = std::fs::read_to_string(dir.join(INDEX_FILE))?;
    let index = JsonValue::parse(&index_text).map_err(|e| bad(&format!("index.json: {e}")))?;
    match index.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == STORE_SCHEMA => {}
        Some(other) => {
            return Err(MoteurError::new(format!(
                "data store at {} has schema `{other}`, this build reads `{STORE_SCHEMA}` \
                 (clear the cache directory to rebuild it)",
                dir.display()
            )))
        }
        None => return Err(bad("index.json without a schema tag")),
    }

    let data_path = dir.join(DATA_FILE);
    if data_path.exists() {
        let text = std::fs::read_to_string(&data_path)?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let row = JsonValue::parse(line).map_err(|e| bad(&format!("store.jsonl: {e}")))?;
            let key = row
                .get("pk")
                .and_then(JsonValue::as_str)
                .and_then(ProvenanceKey::from_hex)
                .ok_or_else(|| bad("entry without a valid `pk`"))?;
            let footprint =
                row.get("footprint")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| bad("entry without a `footprint`"))? as u64;
            let value = decode_value(
                row.get("value")
                    .ok_or_else(|| bad("entry without a `value`"))?,
            )?;
            store.load_data(key, value, footprint);
        }
    }

    let rows = match index.get("invocations") {
        Some(JsonValue::Array(rows)) => rows.as_slice(),
        _ => return Err(bad("index.json without an `invocations` array")),
    };
    for row in rows {
        let key = row
            .get("key")
            .and_then(JsonValue::as_str)
            .and_then(InvocationKey::from_hex)
            .ok_or_else(|| bad("invocation without a valid `key`"))?;
        let service = row
            .get("service")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("invocation without a `service`"))?
            .to_string();
        let Some(JsonValue::Array(outs)) = row.get("outputs") else {
            return Err(bad("invocation without an `outputs` array"));
        };
        let mut outputs = Vec::with_capacity(outs.len());
        for o in outs {
            let port = o
                .get("port")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("output without a `port`"))?
                .to_string();
            let pk = o
                .get("pk")
                .and_then(JsonValue::as_str)
                .and_then(ProvenanceKey::from_hex)
                .ok_or_else(|| bad("output without a valid `pk`"))?;
            outputs.push((port, pk));
        }
        store.record_invocation(key, service, outputs);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{invocation_key, StoreConfig};
    use crate::token::History;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moteur-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistence_round_trips_values_and_invocations() {
        let dir = temp_dir("roundtrip");
        let mut store = DataStore::open(&dir, StoreConfig::default()).unwrap();
        let h = History::derived("proc", vec![History::source("s", 0)]);
        let list = DataValue::List(vec![
            DataValue::from("x"),
            DataValue::Num(f64::NAN),
            DataValue::File {
                gfn: "gfn://f".into(),
                bytes: 42,
            },
        ]);
        let pk = store.insert(&list, &h).unwrap();
        let ik = invocation_key("svc", 1, &[ProvenanceKey(9)]);
        store.record_invocation(ik, "svc", vec![("out".into(), pk)]);
        store.save().unwrap();

        let mut reloaded = DataStore::open(&dir, StoreConfig::default()).unwrap();
        let outs = reloaded.lookup(ik).expect("warm restart hits");
        let items = outs[0].1.as_list().unwrap();
        assert_eq!(items[0].as_str(), Some("x"));
        assert!(items[1].as_num().unwrap().is_nan(), "NaN bit pattern kept");
        assert_eq!(items[2].as_file(), Some(("gfn://f", 42)));
        assert_eq!(reloaded.stats().bytes, store.stats().bytes);

        // Saving identical contents twice is byte-stable.
        reloaded.save().unwrap();
        let a = std::fs::read(dir.join(DATA_FILE)).unwrap();
        store.save().unwrap();
        let b = std::fs::read(dir.join(DATA_FILE)).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_one_cache_dir_do_not_corrupt_it() {
        let dir = temp_dir("concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let mut handles = Vec::new();
        for writer in 0..2u32 {
            let dir = dir.clone();
            handles.push(std::thread::spawn(move || {
                // Each handle holds its own view of the shared cache
                // dir and saves it repeatedly, racing the other.
                let mut store = DataStore::open(&dir, StoreConfig::default()).unwrap();
                for round in 0..20u32 {
                    let h =
                        History::derived(format!("w{writer}"), vec![History::source("s", round)]);
                    let pk = store
                        .insert(&DataValue::from(format!("v{writer}-{round}")), &h)
                        .unwrap();
                    let ik = invocation_key("svc", u64::from(writer * 1000 + round), &[pk]);
                    store.record_invocation(ik, "svc", vec![("out".into(), pk)]);
                    store.save().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Whichever writer saved last, the on-disk pair must parse
        // cleanly and hold that writer's full 20 invocations (plus any
        // it loaded from the other writer when it opened the dir).
        let reloaded = DataStore::open(&dir, StoreConfig::default()).unwrap();
        let n = reloaded.stats().invocations;
        assert!((20..=40).contains(&n), "torn write detected: {n} rows");
        assert!(
            !dir.join(LOCK_FILE).exists(),
            "lock released after the last save"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_held_lock_times_out_with_a_stale_lock_diagnostic() {
        let dir = temp_dir("locked");
        std::fs::create_dir_all(&dir).unwrap();
        let _held = LockGuard::acquire(&dir, Duration::ZERO).unwrap();
        let err = LockGuard::acquire(&dir, Duration::ZERO).unwrap_err();
        assert!(
            err.to_string().contains("locked by another writer"),
            "{err}"
        );
        assert!(err.to_string().contains(LOCK_FILE), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let dir = temp_dir("schema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(INDEX_FILE),
            "{\"schema\":\"moteur-store/v999\",\"invocations\":[]}\n",
        )
        .unwrap();
        let err = DataStore::open(&dir, StoreConfig::default()).unwrap_err();
        assert!(err.to_string().contains("moteur-store/v999"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_surface_as_typed_errors() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(INDEX_FILE),
            format!("{{\"schema\":\"{STORE_SCHEMA}\",\"invocations\":[]}}\n"),
        )
        .unwrap();
        std::fs::write(dir.join(DATA_FILE), "not json\n").unwrap();
        assert!(DataStore::open(&dir, StoreConfig::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
