//! On-disk codec of a [`DataStore`]: a versioned `index.json` (schema
//! tag + invocation index) plus a `store.jsonl` data file (one entry
//! per line).
//!
//! Both files are rewritten whole on [`DataStore::save`], sorted by
//! key, so identical contents serialise byte-identically. Loading
//! verifies the schema tag first and rejects anything else with a
//! typed error — a future v2 layout will not be silently misread.
//!
//! Numbers are stored as the hex spelling of their IEEE-754 bit
//! pattern: JSON has no NaN/∞ and decimal round-trips are easy to get
//! subtly wrong, while the bit pattern is exactly what the
//! [`ProvenanceKey`] hashed.

use super::{DataStore, InvocationKey, ProvenanceKey, STORE_SCHEMA};
use crate::error::MoteurError;
use crate::lint::render::JsonValue;
use crate::obs::json::{array, JsonObject};
use crate::value::DataValue;
use std::path::Path;

pub(super) const INDEX_FILE: &str = "index.json";
pub(super) const DATA_FILE: &str = "store.jsonl";

fn encode_value(value: &DataValue) -> Option<String> {
    Some(match value {
        DataValue::Str(s) => JsonObject::new().str("t", "str").str("v", s).finish(),
        DataValue::Num(n) => JsonObject::new()
            .str("t", "num")
            .str("bits", &format!("{:016x}", n.to_bits()))
            .finish(),
        DataValue::File { gfn, bytes } => JsonObject::new()
            .str("t", "file")
            .str("gfn", gfn)
            .uint("bytes", *bytes)
            .finish(),
        DataValue::List(items) => {
            let encoded: Option<Vec<String>> = items.iter().map(encode_value).collect();
            JsonObject::new()
                .str("t", "list")
                .raw("items", &array(encoded?))
                .finish()
        }
        DataValue::Opaque(_) => return None,
    })
}

fn bad(what: &str) -> MoteurError {
    MoteurError::new(format!("corrupt data store: {what}"))
}

fn decode_value(v: &JsonValue) -> Result<DataValue, MoteurError> {
    let tag = v
        .get("t")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("value without a `t` tag"))?;
    match tag {
        "str" => Ok(DataValue::Str(
            v.get("v")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("str value without `v`"))?
                .to_string(),
        )),
        "num" => {
            let bits = v
                .get("bits")
                .and_then(JsonValue::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad("num value without hex `bits`"))?;
            Ok(DataValue::Num(f64::from_bits(bits)))
        }
        "file" => Ok(DataValue::File {
            gfn: v
                .get("gfn")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("file value without `gfn`"))?
                .to_string(),
            bytes: v
                .get("bytes")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad("file value without `bytes`"))? as u64,
        }),
        "list" => {
            let Some(JsonValue::Array(items)) = v.get("items") else {
                return Err(bad("list value without `items`"));
            };
            Ok(DataValue::List(
                items.iter().map(decode_value).collect::<Result<_, _>>()?,
            ))
        }
        other => Err(bad(&format!("unknown value tag `{other}`"))),
    }
}

/// Serialise `store` into `dir` (both files rewritten whole).
pub(super) fn save(store: &DataStore, dir: &Path) -> Result<(), MoteurError> {
    let mut invocations: Vec<_> = store.iter_invocations().collect();
    invocations.sort_by_key(|(k, _, _)| *k);
    let rows = invocations.into_iter().map(|(key, service, outputs)| {
        let outs = outputs.iter().map(|(port, pk)| {
            JsonObject::new()
                .str("port", port)
                .str("pk", &pk.to_hex())
                .finish()
        });
        JsonObject::new()
            .str("key", &key.to_hex())
            .str("service", service)
            .raw("outputs", &array(outs))
            .finish()
    });
    let index = JsonObject::new()
        .str("schema", STORE_SCHEMA)
        .raw("invocations", &array(rows))
        .finish();
    std::fs::write(dir.join(INDEX_FILE), index + "\n")?;

    let mut entries: Vec<_> = store.iter_data().collect();
    entries.sort_by_key(|(k, _, _, _)| *k);
    let mut jsonl = String::new();
    for (key, value, footprint, _) in entries {
        let encoded = encode_value(value)
            .ok_or_else(|| MoteurError::new("opaque value in the data store"))?;
        jsonl.push_str(
            &JsonObject::new()
                .str("pk", &key.to_hex())
                .uint("footprint", footprint)
                .raw("value", &encoded)
                .finish(),
        );
        jsonl.push('\n');
    }
    std::fs::write(dir.join(DATA_FILE), jsonl)?;
    Ok(())
}

/// Load `dir` into an empty `store`, verifying the schema tag.
pub(super) fn load(store: &mut DataStore, dir: &Path) -> Result<(), MoteurError> {
    let index_text = std::fs::read_to_string(dir.join(INDEX_FILE))?;
    let index = JsonValue::parse(&index_text).map_err(|e| bad(&format!("index.json: {e}")))?;
    match index.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == STORE_SCHEMA => {}
        Some(other) => {
            return Err(MoteurError::new(format!(
                "data store at {} has schema `{other}`, this build reads `{STORE_SCHEMA}` \
                 (clear the cache directory to rebuild it)",
                dir.display()
            )))
        }
        None => return Err(bad("index.json without a schema tag")),
    }

    let data_path = dir.join(DATA_FILE);
    if data_path.exists() {
        let text = std::fs::read_to_string(&data_path)?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let row = JsonValue::parse(line).map_err(|e| bad(&format!("store.jsonl: {e}")))?;
            let key = row
                .get("pk")
                .and_then(JsonValue::as_str)
                .and_then(ProvenanceKey::from_hex)
                .ok_or_else(|| bad("entry without a valid `pk`"))?;
            let footprint =
                row.get("footprint")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| bad("entry without a `footprint`"))? as u64;
            let value = decode_value(
                row.get("value")
                    .ok_or_else(|| bad("entry without a `value`"))?,
            )?;
            store.load_data(key, value, footprint);
        }
    }

    let rows = match index.get("invocations") {
        Some(JsonValue::Array(rows)) => rows.as_slice(),
        _ => return Err(bad("index.json without an `invocations` array")),
    };
    for row in rows {
        let key = row
            .get("key")
            .and_then(JsonValue::as_str)
            .and_then(InvocationKey::from_hex)
            .ok_or_else(|| bad("invocation without a valid `key`"))?;
        let service = row
            .get("service")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("invocation without a `service`"))?
            .to_string();
        let Some(JsonValue::Array(outs)) = row.get("outputs") else {
            return Err(bad("invocation without an `outputs` array"));
        };
        let mut outputs = Vec::with_capacity(outs.len());
        for o in outs {
            let port = o
                .get("port")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("output without a `port`"))?
                .to_string();
            let pk = o
                .get("pk")
                .and_then(JsonValue::as_str)
                .and_then(ProvenanceKey::from_hex)
                .ok_or_else(|| bad("output without a valid `pk`"))?;
            outputs.push((port, pk));
        }
        store.record_invocation(key, service, outputs);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{invocation_key, StoreConfig};
    use crate::token::History;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moteur-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistence_round_trips_values_and_invocations() {
        let dir = temp_dir("roundtrip");
        let mut store = DataStore::open(&dir, StoreConfig::default()).unwrap();
        let h = History::derived("proc", vec![History::source("s", 0)]);
        let list = DataValue::List(vec![
            DataValue::from("x"),
            DataValue::Num(f64::NAN),
            DataValue::File {
                gfn: "gfn://f".into(),
                bytes: 42,
            },
        ]);
        let pk = store.insert(&list, &h).unwrap();
        let ik = invocation_key("svc", 1, &[ProvenanceKey(9)]);
        store.record_invocation(ik, "svc", vec![("out".into(), pk)]);
        store.save().unwrap();

        let mut reloaded = DataStore::open(&dir, StoreConfig::default()).unwrap();
        let outs = reloaded.lookup(ik).expect("warm restart hits");
        let items = outs[0].1.as_list().unwrap();
        assert_eq!(items[0].as_str(), Some("x"));
        assert!(items[1].as_num().unwrap().is_nan(), "NaN bit pattern kept");
        assert_eq!(items[2].as_file(), Some(("gfn://f", 42)));
        assert_eq!(reloaded.stats().bytes, store.stats().bytes);

        // Saving identical contents twice is byte-stable.
        reloaded.save().unwrap();
        let a = std::fs::read(dir.join(DATA_FILE)).unwrap();
        store.save().unwrap();
        let b = std::fs::read(dir.join(DATA_FILE)).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let dir = temp_dir("schema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(INDEX_FILE),
            "{\"schema\":\"moteur-store/v999\",\"invocations\":[]}\n",
        )
        .unwrap();
        let err = DataStore::open(&dir, StoreConfig::default()).unwrap_err();
        assert!(err.to_string().contains("moteur-store/v999"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_surface_as_typed_errors() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(INDEX_FILE),
            format!("{{\"schema\":\"{STORE_SCHEMA}\",\"invocations\":[]}}\n"),
        )
        .unwrap();
        std::fs::write(dir.join(DATA_FILE), "not json\n").unwrap();
        assert!(DataStore::open(&dir, StoreConfig::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
