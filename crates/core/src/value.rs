//! Data values flowing through a workflow.
//!
//! The service-based model treats data as dynamic invocation parameters
//! (paper §2.1). A value is either a literal, a grid file reference
//! (GFN + size, the currency of descriptor-bound services), an
//! in-memory payload (used by local in-process services such as the
//! registration algorithms), or a list (the whole-stream input of a
//! synchronization processor).

use std::any::Any;
use std::sync::Arc;

/// A single datum on a workflow link.
#[derive(Debug, Clone)]
pub enum DataValue {
    /// A literal string parameter (e.g. the `-s` scale of crestLines).
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// A file on the grid: its GFN and size in bytes.
    File { gfn: String, bytes: u64 },
    /// An arbitrary in-process payload for local services (e.g. a 3-D
    /// image or a rigid transform). Compared by pointer identity.
    Opaque(Arc<dyn Any + Send + Sync>),
    /// The collected stream a synchronization processor consumes.
    List(Vec<DataValue>),
}

impl DataValue {
    pub fn opaque<T: Any + Send + Sync>(value: T) -> Self {
        DataValue::Opaque(Arc::new(value))
    }

    /// Downcast an `Opaque` payload.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        match self {
            DataValue::Opaque(a) => a.downcast_ref::<T>(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            DataValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            DataValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_file(&self) -> Option<(&str, u64)> {
        match self {
            DataValue::File { gfn, bytes } => Some((gfn, *bytes)),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[DataValue]> {
        match self {
            DataValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Render as a command-line literal (for parameter slots).
    pub fn to_param_string(&self) -> String {
        match self {
            DataValue::Str(s) => s.clone(),
            DataValue::Num(n) => format!("{n}"),
            DataValue::File { gfn, .. } => gfn.clone(),
            DataValue::Opaque(_) => "<opaque>".to_string(),
            DataValue::List(v) => {
                let parts: Vec<String> = v.iter().map(DataValue::to_param_string).collect();
                parts.join(",")
            }
        }
    }
}

impl PartialEq for DataValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DataValue::Str(a), DataValue::Str(b)) => a == b,
            (DataValue::Num(a), DataValue::Num(b)) => a == b,
            (DataValue::File { gfn: g1, bytes: b1 }, DataValue::File { gfn: g2, bytes: b2 }) => {
                g1 == g2 && b1 == b2
            }
            (DataValue::Opaque(a), DataValue::Opaque(b)) => Arc::ptr_eq(a, b),
            (DataValue::List(a), DataValue::List(b)) => a == b,
            _ => false,
        }
    }
}

impl From<&str> for DataValue {
    fn from(s: &str) -> Self {
        DataValue::Str(s.to_string())
    }
}

impl From<String> for DataValue {
    fn from(s: String) -> Self {
        DataValue::Str(s)
    }
}

impl From<f64> for DataValue {
    fn from(n: f64) -> Self {
        DataValue::Num(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(DataValue::from("x").as_str(), Some("x"));
        assert_eq!(DataValue::from(2.0).as_num(), Some(2.0));
        let f = DataValue::File {
            gfn: "gfn://a".into(),
            bytes: 9,
        };
        assert_eq!(f.as_file(), Some(("gfn://a", 9)));
        assert!(f.as_str().is_none());
        let l = DataValue::List(vec![DataValue::from(1.0)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
    }

    #[test]
    fn opaque_roundtrip_and_pointer_equality() {
        let v = DataValue::opaque(vec![1u8, 2, 3]);
        assert_eq!(v.downcast::<Vec<u8>>().unwrap(), &vec![1u8, 2, 3]);
        assert!(v.downcast::<String>().is_none());
        let w = v.clone();
        assert_eq!(v, w, "clones share the Arc");
        assert_ne!(
            v,
            DataValue::opaque(vec![1u8, 2, 3]),
            "distinct allocations differ"
        );
    }

    #[test]
    fn param_string_rendering() {
        assert_eq!(DataValue::from("a").to_param_string(), "a");
        assert_eq!(DataValue::Num(2.5).to_param_string(), "2.5");
        assert_eq!(
            DataValue::File {
                gfn: "gfn://f".into(),
                bytes: 0
            }
            .to_param_string(),
            "gfn://f"
        );
        let l = DataValue::List(vec![DataValue::from("a"), DataValue::from("b")]);
        assert_eq!(l.to_param_string(), "a,b");
    }

    #[test]
    fn equality_across_variants_is_false() {
        assert_ne!(DataValue::from("1"), DataValue::from(1.0));
    }
}
