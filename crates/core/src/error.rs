//! Workflow-level error type.

use std::fmt;

/// Error raised while building, validating, linting or enacting a
/// workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoteurError {
    /// A free-form build/enactment failure.
    Message(String),
    /// The static analyzer refused the workflow: `errors` diagnostics of
    /// error severity were reported (see [`crate::lint`]). The rendered
    /// report travels in `summary` so callers without the full
    /// [`crate::lint::LintReport`] can still show something actionable.
    Lint { errors: usize, summary: String },
}

impl MoteurError {
    pub fn new(message: impl Into<String>) -> Self {
        MoteurError::Message(message.into())
    }

    /// A lint rejection carrying the error count and a one-line summary.
    pub fn lint(errors: usize, summary: impl Into<String>) -> Self {
        MoteurError::Lint {
            errors,
            summary: summary.into(),
        }
    }

    /// The human-readable payload, whichever variant.
    pub fn message(&self) -> &str {
        match self {
            MoteurError::Message(m) => m,
            MoteurError::Lint { summary, .. } => summary,
        }
    }

    /// True when this is a static-analysis rejection rather than a
    /// build/run failure.
    pub fn is_lint(&self) -> bool {
        matches!(self, MoteurError::Lint { .. })
    }
}

impl fmt::Display for MoteurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoteurError::Message(m) => write!(f, "moteur error: {m}"),
            MoteurError::Lint { errors, summary } => {
                write!(f, "moteur lint: {errors} error(s): {summary}")
            }
        }
    }
}

impl std::error::Error for MoteurError {}

impl From<moteur_wrapper::WrapperError> for MoteurError {
    fn from(e: moteur_wrapper::WrapperError) -> Self {
        MoteurError::new(e.to_string())
    }
}

// `MoteurError` stays `Clone + Eq`, so the I/O error is captured as its
// rendered message rather than stored as a payload.
impl From<std::io::Error> for MoteurError {
    fn from(e: std::io::Error) -> Self {
        MoteurError::new(format!("i/o error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert_eq!(MoteurError::new("x").to_string(), "moteur error: x");
        let w = moteur_wrapper::WrapperError::new("inner");
        let m: MoteurError = w.into();
        assert!(m.message().contains("inner"));
        assert!(!m.is_lint());
    }

    #[test]
    fn lint_variant_carries_count_and_summary() {
        let e = MoteurError::lint(3, "dangling links");
        assert!(e.is_lint());
        assert_eq!(e.message(), "dangling links");
        assert_eq!(e.to_string(), "moteur lint: 3 error(s): dangling links");
    }
}
