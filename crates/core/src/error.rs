//! Workflow-level error type.

use std::fmt;

/// Error raised while building, validating or enacting a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoteurError {
    pub message: String,
}

impl MoteurError {
    pub fn new(message: impl Into<String>) -> Self {
        MoteurError {
            message: message.into(),
        }
    }
}

impl fmt::Display for MoteurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "moteur error: {}", self.message)
    }
}

impl std::error::Error for MoteurError {}

impl From<moteur_wrapper::WrapperError> for MoteurError {
    fn from(e: moteur_wrapper::WrapperError) -> Self {
        MoteurError::new(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert_eq!(MoteurError::new("x").to_string(), "moteur error: x");
        let w = moteur_wrapper::WrapperError::new("inner");
        let m: MoteurError = w.into();
        assert!(m.message.contains("inner"));
    }
}
