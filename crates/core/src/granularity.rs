//! Probabilistic job-granularity optimization — the paper's §5.4
//! future work: *"we plan to address this problem by grouping jobs of a
//! single service, thus finding a trade-off between data parallelism
//! and the system's overhead"* and *"a probabilistic modeling
//! considering the variable nature of the grid infrastructure"* (their
//! follow-up reference \[12\]).
//!
//! Model: `n` independent data, batched `g` per grid job, run with full
//! data parallelism on an unloaded grid whose per-job overhead is
//! lognormal(median `m`, shape `σ`). The makespan is dominated by the
//! slowest of the `J = ⌈n/g⌉` jobs:
//!
//! ```text
//! E[makespan](g) ≈ m·exp(σ·Φ⁻¹(J/(J+1))) + g·T
//! ```
//!
//! Larger batches mean fewer draws from the heavy-tailed overhead
//! distribution (smaller expected maximum) but more sequential compute
//! per job — a convex trade-off whose argmin is the recommended batch
//! size. Overhead parameters can be fitted from observed job records,
//! so the granularity can adapt to the current grid weather.

use moteur_gridsim::JobRecord;

/// Lognormal overhead model plus workload shape.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityModel {
    /// Median per-job grid overhead (s).
    pub overhead_median: f64,
    /// Lognormal shape of the overhead.
    pub overhead_sigma: f64,
    /// Compute time per datum (s).
    pub compute_seconds: f64,
    /// Number of data to process.
    pub n_data: usize,
}

impl GranularityModel {
    /// Expected makespan when batching `batch` data per job under full
    /// data parallelism.
    pub fn expected_makespan(&self, batch: usize) -> f64 {
        let batch = batch.clamp(1, self.n_data.max(1));
        let jobs = self.n_data.div_ceil(batch).max(1);
        let q = jobs as f64 / (jobs as f64 + 1.0);
        let expected_max_overhead =
            self.overhead_median * (self.overhead_sigma * inverse_normal_cdf(q)).exp();
        expected_max_overhead + batch as f64 * self.compute_seconds
    }

    /// Batch size minimising the expected makespan.
    pub fn optimal_batch(&self) -> usize {
        (1..=self.n_data.max(1))
            .min_by(|&a, &b| {
                self.expected_makespan(a)
                    .partial_cmp(&self.expected_makespan(b))
                    .expect("finite makespans")
            })
            .unwrap_or(1)
    }

    /// Fit the overhead distribution from observed job records (log
    /// space mean/std of the measured overheads) — adapting the
    /// granularity to the observed grid load.
    pub fn fit_overheads(records: &[JobRecord], compute_seconds: f64, n_data: usize) -> Self {
        let logs: Vec<f64> = records
            .iter()
            .map(|r| r.overhead().as_secs_f64().max(1e-3).ln())
            .collect();
        let (median, sigma) = if logs.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = logs.iter().sum::<f64>() / logs.len() as f64;
            let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / logs.len() as f64;
            (mean.exp(), var.sqrt())
        };
        GranularityModel {
            overhead_median: median,
            overhead_sigma: sigma,
            compute_seconds,
            n_data,
        }
    }
}

/// Acklam's rational approximation of the standard normal quantile
/// function Φ⁻¹ (absolute error < 1.2e-9 over (0, 1)).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile only defined on (0, 1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239e0,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_cdf_reference_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.84134) - 0.99998).abs() < 1e-3);
        assert!(inverse_normal_cdf(0.999) > 3.0);
        assert!(inverse_normal_cdf(1e-6) < -4.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn inverse_cdf_rejects_out_of_range() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn constant_overhead_prefers_no_batching() {
        // σ = 0: the max equals the median whatever J is, so every
        // batch > 1 only adds compute time.
        let m = GranularityModel {
            overhead_median: 300.0,
            overhead_sigma: 0.0,
            compute_seconds: 60.0,
            n_data: 50,
        };
        assert_eq!(m.optimal_batch(), 1);
    }

    #[test]
    fn heavy_tails_prefer_larger_batches() {
        let mk = |sigma: f64| GranularityModel {
            overhead_median: 300.0,
            overhead_sigma: sigma,
            compute_seconds: 30.0,
            n_data: 100,
        };
        let g_low = mk(0.2).optimal_batch();
        let g_high = mk(1.5).optimal_batch();
        assert!(
            g_high > g_low,
            "more variable grids favour coarser jobs: σ=0.2 → {g_low}, σ=1.5 → {g_high}"
        );
        assert!(g_high > 1);
    }

    #[test]
    fn expensive_compute_prefers_smaller_batches() {
        let mk = |t: f64| GranularityModel {
            overhead_median: 600.0,
            overhead_sigma: 1.0,
            compute_seconds: t,
            n_data: 100,
        };
        assert!(mk(600.0).optimal_batch() <= mk(10.0).optimal_batch());
    }

    #[test]
    fn makespan_is_convexish_around_the_optimum() {
        let m = GranularityModel {
            overhead_median: 600.0,
            overhead_sigma: 1.0,
            compute_seconds: 60.0,
            n_data: 126,
        };
        let g = m.optimal_batch();
        let at = |x: usize| m.expected_makespan(x);
        assert!(at(g) <= at((g + 1).min(126)));
        assert!(at(g) <= at(g.saturating_sub(1).max(1)));
        // All-in-one-job is bad when compute is non-trivial.
        assert!(at(126) > at(g));
    }

    #[test]
    fn batch_clamps_to_data_count() {
        let m = GranularityModel {
            overhead_median: 100.0,
            overhead_sigma: 0.5,
            compute_seconds: 10.0,
            n_data: 5,
        };
        assert_eq!(m.expected_makespan(99), m.expected_makespan(5));
    }

    #[test]
    fn fit_recovers_lognormal_parameters() {
        use moteur_gridsim::{Distribution, GridConfig, GridJobSpec, GridSim};
        let mut cfg = GridConfig::ideal();
        cfg.submission_overhead = Distribution::LogNormal {
            median: 200.0,
            sigma: 0.6,
        };
        let mut sim = GridSim::new(cfg, 9);
        for i in 0..400 {
            sim.submit(GridJobSpec::new(format!("j{i}"), 50.0));
        }
        while sim.next_completion().is_some() {}
        let model = GranularityModel::fit_overheads(sim.records(), 50.0, 100);
        assert!(
            (model.overhead_median - 200.0).abs() < 25.0,
            "median {}",
            model.overhead_median
        );
        assert!(
            (model.overhead_sigma - 0.6).abs() < 0.08,
            "sigma {}",
            model.overhead_sigma
        );
    }

    #[test]
    fn fit_on_empty_records_is_degenerate_but_safe() {
        let m = GranularityModel::fit_overheads(&[], 10.0, 20);
        assert_eq!(m.overhead_median, 0.0);
        assert_eq!(m.optimal_batch(), 1);
    }
}
