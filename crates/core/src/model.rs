//! The theoretical execution-time model of paper §3.5.
//!
//! For a workflow whose critical path holds `n_W` services processing
//! `n_D` independent data sets, with `T[i][j]` the duration of data set
//! `j` on service `i`, the paper derives closed forms for the total
//! execution time Σ under each parallelism configuration (eqs. 1–4):
//!
//! - sequential:            `Σ     = Σ_i Σ_j T[i][j]`
//! - data parallelism:      `Σ_DP  = Σ_i max_j T[i][j]`
//! - service parallelism:   `Σ_SP  = T[n_W−1][n_D−1] + m[n_W−1][n_D−1]`
//!   with the pipeline recursion on `m`
//! - both:                  `Σ_DSP = max_j Σ_i T[i][j]`
//!
//! plus asymptotic speed-ups under the constant-time assumption
//! (§3.5.4). Tests in `tests/model_vs_enactor.rs` assert the *enactor*
//! reproduces these formulas exactly on an ideal backend.

use crate::error::MoteurError;
use crate::graph::Workflow;
use crate::service::{CostModel, ServiceBinding};
use crate::token::DataIndex;

/// The `T[i][j]` duration matrix: `t[i][j]` is the time of data set `j`
/// on the `i`-th service of the critical path (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeMatrix {
    t: Vec<Vec<f64>>,
}

impl TimeMatrix {
    /// Build from explicit rows (each row = one service, `n_D` columns).
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "need at least one service");
        let nd = rows[0].len();
        assert!(nd > 0, "need at least one data set");
        assert!(rows.iter().all(|r| r.len() == nd), "ragged matrix");
        TimeMatrix { t: rows }
    }

    /// Constant-time matrix `T[i][j] = value` (the §3.5.4 assumption).
    pub fn constant(n_w: usize, n_d: usize, value: f64) -> Self {
        Self::new(vec![vec![value; n_d]; n_w])
    }

    /// Generate from a function of (service, data) indices.
    pub fn from_fn(n_w: usize, n_d: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        Self::new(
            (0..n_w)
                .map(|i| (0..n_d).map(|j| f(i, j)).collect())
                .collect(),
        )
    }

    pub fn n_services(&self) -> usize {
        self.t.len()
    }

    pub fn n_data(&self) -> usize {
        self.t[0].len()
    }

    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.t[i][j]
    }

    /// Eq. (1): no data or service parallelism.
    pub fn sigma_sequential(&self) -> f64 {
        self.t.iter().flatten().sum()
    }

    /// Eq. (2): data parallelism only — services run as stages, each
    /// stage lasting as long as its slowest data set.
    pub fn sigma_dp(&self) -> f64 {
        self.t
            .iter()
            .map(|row| row.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .sum()
    }

    /// Eq. (3): service parallelism only — the classic pipeline
    /// recursion. `m[i][j]` is the time at which service `i` *starts*
    /// data set `j`.
    #[allow(clippy::needless_range_loop)] // the m[i][j] recursion mirrors the paper's notation
    pub fn sigma_sp(&self) -> f64 {
        let (nw, nd) = (self.n_services(), self.n_data());
        let mut m = vec![vec![0.0f64; nd]; nw];
        for j in 1..nd {
            m[0][j] = (0..j).map(|k| self.t[0][k]).sum();
        }
        for i in 1..nw {
            m[i][0] = (0..i).map(|k| self.t[k][0]).sum();
        }
        for i in 1..nw {
            for j in 1..nd {
                m[i][j] = f64::max(
                    self.t[i - 1][j] + m[i - 1][j],
                    self.t[i][j - 1] + m[i][j - 1],
                );
            }
        }
        self.t[nw - 1][nd - 1] + m[nw - 1][nd - 1]
    }

    /// Eq. (4): both parallelisms — each data set flows through the
    /// chain independently.
    pub fn sigma_dsp(&self) -> f64 {
        (0..self.n_data())
            .map(|j| (0..self.n_services()).map(|i| self.t[i][j]).sum())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl TimeMatrix {
    /// Build the critical-path `T[i][j]` matrix of a workflow: row `i`
    /// is the `i`-th service on the critical path, `T[i][j]` its cost
    /// for data set `j` plus `per_job_overhead` — letting the §3.5
    /// formulas *predict* a campaign's makespans before running it.
    ///
    /// Only descriptor-bound services have declared costs (stochastic
    /// models contribute their mean); local services are rejected.
    pub fn from_workflow(
        workflow: &Workflow,
        n_data: usize,
        per_job_overhead: f64,
    ) -> Result<TimeMatrix, MoteurError> {
        Self::from_workflow_with(workflow, n_data, per_job_overhead, |_| 0.0)
    }

    /// Like [`TimeMatrix::from_workflow`], with `extra` seconds added to
    /// every job of each critical-path service — the hook the static
    /// planner uses to charge per-job data-transfer time (eq. 1–4 plus
    /// a transfer term) without duplicating the cost-model evaluation.
    pub fn from_workflow_with(
        workflow: &Workflow,
        n_data: usize,
        per_job_overhead: f64,
        extra: impl Fn(crate::graph::ProcId) -> f64,
    ) -> Result<TimeMatrix, MoteurError> {
        assert!(n_data > 0, "need at least one data set");
        let path = workflow.critical_path()?;
        if path.is_empty() {
            return Err(MoteurError::new("workflow has no services"));
        }
        let mut rows = Vec::with_capacity(path.len());
        for id in path {
            let p = workflow.processor(id);
            let cost = match &p.binding {
                Some(ServiceBinding::Descriptor { profile, .. }) => &profile.compute,
                Some(ServiceBinding::Grouped(g)) => {
                    // Sum of stage costs; evaluated per data index below
                    // via a closure-free two-pass (stochastic stages use
                    // their means).
                    let row: Vec<f64> = (0..n_data)
                        .map(|j| {
                            per_job_overhead
                                + extra(id)
                                + g.stages
                                    .iter()
                                    .map(|s| eval_mean_cost(&s.profile.compute, j))
                                    .sum::<f64>()
                        })
                        .collect();
                    rows.push(row);
                    continue;
                }
                _ => {
                    return Err(MoteurError::new(format!(
                        "`{}` has no declared cost model",
                        p.name
                    )))
                }
            };
            rows.push(
                (0..n_data)
                    .map(|j| per_job_overhead + extra(id) + eval_mean_cost(cost, j))
                    .collect(),
            );
        }
        Ok(TimeMatrix::new(rows))
    }
}

/// Deterministic expectation of a cost model for data index `j`.
fn eval_mean_cost(cost: &CostModel, j: usize) -> f64 {
    match cost {
        CostModel::Fixed(v) => *v,
        CostModel::Stochastic(d) => d.mean(),
        CostModel::ByIndex(f) => f(&DataIndex::single(j as u32)),
    }
}

/// §3.5.4, constant T: speed-up of DP alone, `S_DP = n_D`.
pub fn speedup_dp_constant(n_d: usize) -> f64 {
    n_d as f64
}

/// §3.5.4, constant T: speed-up of SP alone,
/// `S_SP = n_D·n_W / (n_D + n_W − 1)`.
pub fn speedup_sp_constant(n_w: usize, n_d: usize) -> f64 {
    (n_d * n_w) as f64 / (n_d + n_w - 1) as f64
}

/// §3.5.4, constant T: speed-up DP adds when SP is already on,
/// `S_DSP = (n_D + n_W − 1) / n_W`.
pub fn speedup_dp_given_sp_constant(n_w: usize, n_d: usize) -> f64 {
    (n_d + n_w - 1) as f64 / n_w as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_matrix_closed_forms() {
        // §3.5.4: Σ = nD·nW·T, Σ_DP = Σ_DSP = nW·T, Σ_SP = (nD+nW−1)·T.
        let (nw, nd, t) = (5, 12, 7.0);
        let m = TimeMatrix::constant(nw, nd, t);
        assert_eq!(m.sigma_sequential(), nd as f64 * nw as f64 * t);
        assert_eq!(m.sigma_dp(), nw as f64 * t);
        assert_eq!(m.sigma_dsp(), nw as f64 * t);
        assert_eq!(m.sigma_sp(), (nd + nw - 1) as f64 * t);
    }

    #[test]
    fn constant_speedups_match_ratios() {
        let (nw, nd, t) = (5, 126, 3.0);
        let m = TimeMatrix::constant(nw, nd, t);
        assert!((m.sigma_sequential() / m.sigma_dp() - speedup_dp_constant(nd)).abs() < 1e-9);
        assert!((m.sigma_sequential() / m.sigma_sp() - speedup_sp_constant(nw, nd)).abs() < 1e-9);
        assert!((m.sigma_sp() / m.sigma_dsp() - speedup_dp_given_sp_constant(nw, nd)).abs() < 1e-9);
        // SP adds nothing when DP is already on (S_SDP = 1).
        assert!((m.sigma_dp() / m.sigma_dsp() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn massively_data_parallel_limit() {
        // nW = 1: Σ_DP = Σ_DSP = max_j, Σ = Σ_SP = sum_j (§3.5.4).
        let m = TimeMatrix::new(vec![vec![3.0, 9.0, 4.0]]);
        assert_eq!(m.sigma_dp(), 9.0);
        assert_eq!(m.sigma_dsp(), 9.0);
        assert_eq!(m.sigma_sequential(), 16.0);
        assert_eq!(m.sigma_sp(), 16.0);
    }

    #[test]
    fn non_data_intensive_limit() {
        // nD = 1: all four coincide at Σ_i T[i][0].
        let m = TimeMatrix::new(vec![vec![2.0], vec![5.0], vec![1.0]]);
        for v in [
            m.sigma_sequential(),
            m.sigma_dp(),
            m.sigma_sp(),
            m.sigma_dsp(),
        ] {
            assert_eq!(v, 8.0);
        }
    }

    #[test]
    fn fig6_example_sp_beats_dp_alone_under_variable_times() {
        // Fig. 6: 3 services, 3 data; D0 twice as long on P1, D1 three
        // times as long on P2. With variable times Σ_DSP < Σ_DP.
        let t = TimeMatrix::new(vec![
            vec![2.0, 1.0, 1.0], // P1: D0 twice as long
            vec![1.0, 3.0, 1.0], // P2: D1 three times as long
            vec![1.0, 1.0, 1.0], // P3
        ]);
        assert_eq!(t.sigma_dp(), 2.0 + 3.0 + 1.0);
        assert_eq!(t.sigma_dsp(), 5.0, "max_j column sums: (4, 5, 3)");
        assert!(t.sigma_dsp() < t.sigma_dp());
    }

    #[test]
    fn sp_recursion_hand_checked() {
        // 2 services × 2 data, uneven: verify m by hand.
        // t = [[1, 4], [2, 1]]
        // m[0][1] = 1; m[1][0] = 1;
        // m[1][1] = max(t[0][1]+m[0][1], t[1][0]+m[1][0]) = max(5, 3) = 5
        // Σ_SP = t[1][1] + m[1][1] = 6.
        let t = TimeMatrix::new(vec![vec![1.0, 4.0], vec![2.0, 1.0]]);
        assert_eq!(t.sigma_sp(), 6.0);
    }

    #[test]
    fn partial_order_of_sigmas() {
        // Always: Σ_DSP ≤ Σ_DP ≤ Σ and Σ_DSP ≤ Σ_SP ≤ Σ.
        let t = TimeMatrix::from_fn(4, 7, |i, j| 1.0 + ((i * 31 + j * 17) % 13) as f64);
        assert!(t.sigma_dsp() <= t.sigma_dp() + 1e-12);
        assert!(t.sigma_dsp() <= t.sigma_sp() + 1e-12);
        assert!(t.sigma_dp() <= t.sigma_sequential() + 1e-12);
        assert!(t.sigma_sp() <= t.sigma_sequential() + 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        TimeMatrix::new(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn from_workflow_builds_critical_path_rows() {
        use crate::graph::Workflow;
        use crate::service::{ServiceBinding, ServiceProfile};
        use moteur_wrapper::crest_lines_example;
        let mut wf = Workflow::new("w");
        let s = wf.add_source("src");
        let a = wf.add_service(
            "A",
            &["floating_image", "reference_image"],
            &["crest_reference", "crest_floating"],
            ServiceBinding::descriptor(crest_lines_example(), ServiceProfile::new(90.0)),
        );
        let k = wf.add_sink("sink");
        wf.connect(s, "out", a, "floating_image").unwrap();
        wf.connect(s, "out", a, "reference_image").unwrap();
        wf.connect(a, "crest_reference", k, "in").unwrap();
        let t = TimeMatrix::from_workflow(&wf, 3, 100.0).unwrap();
        assert_eq!(t.n_services(), 1);
        assert_eq!(t.n_data(), 3);
        assert_eq!(t.get(0, 0), 190.0, "overhead + compute");
    }

    #[test]
    fn from_workflow_rejects_local_bindings_and_empty_graphs() {
        use crate::graph::Workflow;
        use crate::service::ServiceBinding;
        use crate::token::Token;
        use crate::value::DataValue;
        let mut wf = Workflow::new("w");
        let s = wf.add_source("src");
        let svc = |_: &[Token]| -> Result<Vec<(String, DataValue)>, String> { Ok(vec![]) };
        let a = wf.add_service("A", &["in"], &["out"], ServiceBinding::local(svc));
        wf.connect(s, "out", a, "in").unwrap();
        assert!(TimeMatrix::from_workflow(&wf, 2, 0.0)
            .unwrap_err()
            .to_string()
            .contains("no declared cost model"));
        let empty = Workflow::new("e");
        assert!(TimeMatrix::from_workflow(&empty, 2, 0.0).is_err());
    }

    #[test]
    fn accessors() {
        let t = TimeMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(t.n_services(), 2);
        assert_eq!(t.n_data(), 3);
        assert_eq!(t.get(1, 2), 12.0);
    }
}
