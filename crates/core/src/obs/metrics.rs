//! Metrics derived from the event stream: monotonic counters, gauges
//! with full timelines, and fixed-bucket histograms, exported as one
//! JSON snapshot.
//!
//! [`MetricsSink`] is an [`EventSink`] that folds [`TraceEvent`]s into
//! a shared [`MetricsRegistry`]:
//!
//! - one counter per event kind (`job_submitted`, `grid_delivered`, …);
//! - `inflight.<service>` and `inflight_total` gauges tracking DP depth;
//! - `queue_depth.ce<N>` / `busy.ce<N>` gauges from CE capacity samples
//!   (user jobs only, so they return to zero when a workload drains);
//! - a `grid_overhead_secs` histogram of per-job grid overhead
//!   (submission + brokering + queue wait + notification), the paper's
//!   central nuisance variable.

use super::json::{array, JsonObject};
use super::{EventSink, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// An instantaneous value with its peak and full history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    pub current: i64,
    pub peak: i64,
    /// `(seconds, value)` after every change, in time order.
    pub timeline: Vec<(f64, i64)>,
}

impl Gauge {
    fn update(&mut self, at: f64, value: i64) {
        self.current = value;
        self.peak = self.peak.max(value);
        self.timeline.push((at, value));
    }
}

/// Histogram over fixed, caller-chosen bucket upper bounds (the last
/// bucket is the implicit `+inf` overflow).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    /// `bounds` must be strictly increasing; bucket `i` counts values
    /// `<= bounds[i]` (and greater than the previous bound).
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Buckets sized for grid overheads: seconds to about an hour.
    pub fn overhead_buckets() -> Self {
        Self::with_bounds(vec![
            15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1920.0, 3840.0,
        ])
    }

    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket upper bounds (the overflow bucket's `+inf` is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Histogram::bounds`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the containing bucket, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if target <= next as f64 {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let frac = (target - cumulative as f64) / c as f64;
                let v = lo + (hi - lo) * frac;
                return v.clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }
}

/// All metrics of one run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    /// Latest virtual time observed on any event, in seconds — the
    /// timestamp the OpenMetrics exposition stamps every sample with.
    latest: f64,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the registry's virtual clock to at least `at` seconds.
    pub fn touch(&mut self, at: f64) {
        if at > self.latest {
            self.latest = at;
        }
    }

    /// Latest virtual time observed, in seconds (0 before any event).
    pub fn latest(&self) -> f64 {
        self.latest
    }

    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&String, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    pub fn gauge_add(&mut self, name: &str, at: f64, delta: i64) {
        let g = self.gauges.entry(name.to_string()).or_default();
        let value = g.current + delta;
        g.update(at, value);
    }

    pub fn gauge_set(&mut self, name: &str, at: f64, value: i64) {
        self.gauges
            .entry(name.to_string())
            .or_default()
            .update(at, value);
    }

    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&String, &Gauge)> {
        self.gauges.iter()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&String, &Histogram)> {
        self.histograms.iter()
    }

    pub fn observe(&mut self, name: &str, make: impl FnOnce() -> Histogram, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(make)
            .observe(value);
    }

    /// Full snapshot as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`.
    pub fn to_json(&self) -> String {
        let counters = {
            let mut o = JsonObject::new();
            for (k, v) in &self.counters {
                o = o.uint(k, *v);
            }
            o.finish()
        };
        let gauges = {
            let mut o = JsonObject::new();
            for (k, g) in &self.gauges {
                let timeline = array(
                    g.timeline
                        .iter()
                        .map(|(t, v)| format!("[{},{}]", super::json::num(*t), v)),
                );
                o = o.raw(
                    k,
                    &JsonObject::new()
                        .int("current", g.current)
                        .int("peak", g.peak)
                        .raw("timeline", &timeline)
                        .finish(),
                );
            }
            o.finish()
        };
        let histograms = {
            let mut o = JsonObject::new();
            for (k, h) in &self.histograms {
                let bounds = array(h.bounds.iter().map(|b| super::json::num(*b)));
                let counts = array(h.counts.iter().map(std::string::ToString::to_string));
                o = o.raw(
                    k,
                    &JsonObject::new()
                        .uint("count", h.count)
                        .num("sum", h.sum)
                        .num("mean", h.mean())
                        .num("min", if h.count == 0 { 0.0 } else { h.min })
                        .num("max", if h.count == 0 { 0.0 } else { h.max })
                        .num("p50", h.quantile(0.50))
                        .num("p95", h.quantile(0.95))
                        .num("p99", h.quantile(0.99))
                        .raw("bounds", &bounds)
                        .raw("counts", &counts)
                        .finish(),
                );
            }
            o.finish()
        };
        JsonObject::new()
            .raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("histograms", &histograms)
            .finish()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct JobTimes {
    submitted: Option<f64>,
    started: Option<f64>,
    finished: Option<f64>,
}

/// Folds the event stream into a shared [`MetricsRegistry`].
#[derive(Debug)]
pub struct MetricsSink {
    registry: Arc<Mutex<MetricsRegistry>>,
    times: HashMap<u64, JobTimes>,
    /// Logical invocations currently holding an inflight-gauge unit,
    /// with the processor whose per-service gauge they incremented.
    /// One attempt tag = one gauge increment: fault-tolerance events
    /// (backoff deferrals, replicas, superseded-replica cancellations)
    /// reference tags that were never inserted here, so they cannot
    /// double-count — a decrement happens only when the tag that
    /// incremented is removed.
    live: HashMap<u64, String>,
}

impl MetricsSink {
    /// Returns the sink and the shared registry to snapshot afterwards.
    pub fn new() -> (Self, Arc<Mutex<MetricsRegistry>>) {
        let registry = Arc::new(Mutex::new(MetricsRegistry::new()));
        (
            MetricsSink {
                registry: registry.clone(),
                times: HashMap::new(),
                live: HashMap::new(),
            },
            registry,
        )
    }
}

impl EventSink for MetricsSink {
    fn record(&mut self, event: &TraceEvent) {
        let at = event.at().as_secs_f64();
        let mut reg = self.registry.lock().expect("metrics registry lock");
        reg.touch(at);
        reg.inc(event.kind(), 1);
        match event {
            TraceEvent::JobSubmitted {
                invocation,
                processor,
                ..
            } => {
                if self.live.insert(*invocation, processor.clone()).is_none() {
                    reg.gauge_add("inflight_total", at, 1);
                    reg.gauge_add(&format!("inflight.{processor}"), at, 1);
                }
                self.times.entry(*invocation).or_default().submitted = Some(at);
            }
            // A cache hit replaces JobSubmitted for its invocation: the
            // matching JobCompleted still fires, so the inflight gauges
            // must be incremented here to stay balanced.
            TraceEvent::CacheHit {
                invocation,
                processor,
                ..
            } => {
                if self.live.insert(*invocation, processor.clone()).is_none() {
                    reg.gauge_add("inflight_total", at, 1);
                    reg.gauge_add(&format!("inflight.{processor}"), at, 1);
                }
                self.times.entry(*invocation).or_default().submitted = Some(at);
            }
            // Terminal events release the inflight unit — but only the
            // tag that acquired one. A `JobCancelled` for a superseded
            // replica carries the replica's fresh tag (never inserted),
            // so the logical invocation's unit survives until its own
            // terminal event; an abort-drain cancellation carries the
            // logical tag and correctly releases it.
            TraceEvent::JobCompleted { invocation, .. }
            | TraceEvent::JobFailed { invocation, .. }
            | TraceEvent::JobCancelled { invocation, .. } => {
                if let Some(processor) = self.live.remove(invocation) {
                    reg.gauge_add("inflight_total", at, -1);
                    reg.gauge_add(&format!("inflight.{processor}"), at, -1);
                }
            }
            TraceEvent::GridSubmitted { invocation, .. } => {
                self.times.entry(*invocation).or_default().submitted = Some(at);
            }
            TraceEvent::GridStarted { invocation, .. } => {
                self.times.entry(*invocation).or_default().started = Some(at);
            }
            TraceEvent::GridFinished { invocation, .. } => {
                self.times.entry(*invocation).or_default().finished = Some(at);
            }
            TraceEvent::GridDelivered { invocation, .. } => {
                if let Some(t) = self.times.remove(invocation) {
                    if let (Some(sub), Some(start), Some(fin)) =
                        (t.submitted, t.started, t.finished)
                    {
                        // Grid overhead = everything but execution:
                        // wait before start + notification after finish.
                        let overhead = (start - sub) + (at - fin);
                        reg.observe("grid_overhead_secs", Histogram::overhead_buckets, overhead);
                    }
                }
            }
            TraceEvent::CeCapacity {
                ce,
                busy,
                queued_user,
                ..
            } => {
                reg.gauge_set(&format!("queue_depth.ce{ce}"), at, *queued_user as i64);
                reg.gauge_set(&format!("busy.ce{ce}"), at, *busy as i64);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moteur_gridsim::SimTime;

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::with_bounds(vec![10.0, 20.0, 40.0]);
        for v in [5.0, 6.0, 15.0, 25.0, 35.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert!((h.mean() - 136.0 / 6.0).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((10.0..=20.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(1.0), 50.0, "max clamps the overflow bucket");
        assert!(h.quantile(0.0) >= 5.0);
        assert_eq!(Histogram::with_bounds(vec![1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn gauge_tracks_peak_and_timeline() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_add("g", 0.0, 2);
        reg.gauge_add("g", 1.0, 3);
        reg.gauge_add("g", 2.0, -5);
        let g = reg.gauge("g").unwrap();
        assert_eq!(g.current, 0);
        assert_eq!(g.peak, 5);
        assert_eq!(g.timeline, vec![(0.0, 2), (1.0, 5), (2.0, 0)]);
    }

    #[test]
    fn sink_derives_overhead_from_lifecycle() {
        let (mut sink, registry) = MetricsSink::new();
        let t = SimTime::from_secs_f64;
        sink.record(&TraceEvent::GridSubmitted {
            at: t(0.0),
            invocation: 1,
            name: "j".into(),
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(100.0),
            invocation: 1,
            ce: 0,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(160.0),
            invocation: 1,
            ce: 0,
            success: true,
        });
        sink.record(&TraceEvent::GridDelivered {
            at: t(165.0),
            invocation: 1,
            success: true,
        });
        let reg = registry.lock().unwrap();
        assert_eq!(reg.counter("grid_delivered"), 1);
        let h = reg.histogram("grid_overhead_secs").unwrap();
        assert_eq!(h.count, 1);
        // Overhead: 100 wait + 5 notify = 105.
        assert!((h.sum - 105.0).abs() < 1e-9);
    }

    #[test]
    fn inflight_releases_once_per_attempt_tag() {
        let (mut sink, registry) = MetricsSink::new();
        let t = SimTime::from_secs_f64;
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 1,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        // Fault-tolerance churn: a timeout replica (fresh tag 50) is
        // launched and later cancelled as superseded. Neither event
        // may move the inflight gauges — tag 50 never incremented.
        sink.record(&TraceEvent::JobReplicated {
            at: t(10.0),
            invocation: 1,
            processor: "p".into(),
            replica: 1,
            attempt: 50,
        });
        sink.record(&TraceEvent::JobCancelled {
            at: t(20.0),
            invocation: 50,
            processor: "p".into(),
            reason: "superseded",
        });
        {
            let reg = registry.lock().unwrap();
            assert_eq!(reg.gauge("inflight_total").unwrap().current, 1);
        }
        // The logical invocation's terminal event releases exactly one
        // unit; the gauge returns to zero, not below.
        sink.record(&TraceEvent::JobCompleted {
            at: t(30.0),
            invocation: 1,
            processor: "p".into(),
        });
        let reg = registry.lock().unwrap();
        let g = reg.gauge("inflight_total").unwrap();
        assert_eq!(g.current, 0, "balanced");
        assert_eq!(g.peak, 1, "no double count");
        assert_eq!(reg.gauge("inflight.p").unwrap().current, 0);
        assert!((reg.latest() - 30.0).abs() < 1e-9, "virtual clock tracked");
    }

    #[test]
    fn abort_cancellation_releases_the_inflight_unit() {
        let (mut sink, registry) = MetricsSink::new();
        let t = SimTime::from_secs_f64;
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 3,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::JobCancelled {
            at: t(5.0),
            invocation: 3,
            processor: "p".into(),
            reason: "abort",
        });
        let reg = registry.lock().unwrap();
        assert_eq!(reg.gauge("inflight_total").unwrap().current, 0);
    }

    #[test]
    fn snapshot_is_valid_shaped_json() {
        let (mut sink, registry) = MetricsSink::new();
        sink.record(&TraceEvent::JobSubmitted {
            at: SimTime::ZERO,
            invocation: 0,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        let json = registry.lock().unwrap().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"job_submitted\":1"));
        assert!(json.contains("\"inflight.p\""));
        assert!(json.ends_with('}'));
        // Balanced braces/brackets — cheap structural sanity check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
