//! Observability: structured event tracing, metrics and trace export
//! for the enactor and the grid simulator.
//!
//! The paper's analyses (§4–§5) all reduce to questions about *when
//! things happened*: how long jobs waited in batch queues, how deep the
//! DP/SP pipelines ran, which service dominated the makespan. This
//! module captures that information as a stream of [`TraceEvent`]s
//! covering the full lifecycle —
//!
//! ```text
//! enactor:  TokenEmitted → MatchFired / BarrierReleased /
//!           GroupComposed → JobSubmitted → (JobResubmitted)* →
//!           JobCompleted | JobFailed
//!           (with a data manager: CacheMiss before JobSubmitted, or
//!           CacheHit → JobCompleted when the grid job is elided)
//! grid:     GridSubmitted → GridMatched → GridEnqueued → GridStarted →
//!           GridFinished → (GridResubmitted → …)* → GridDelivered,
//!           plus CeCapacity samples
//! ```
//!
//! — delivered to pluggable [`EventSink`]s through a cheap [`Obs`]
//! handle. The two layers correlate through the invocation id: the
//! enactor tags every grid job with it ([`crate::backend::SimBackend`]
//! puts it in [`moteur_gridsim::GridJobSpec::with_tag`]), and the
//! simulator echoes it back in every [`moteur_gridsim::SimEvent`].
//!
//! Tracing is strictly pay-for-use: [`Obs::off`] keeps every emission
//! site a single branch, and events are built lazily (closures passed to
//! [`Obs::emit`]) so the hot path allocates nothing when tracing is off.
//!
//! Consumers:
//!
//! - [`sinks`] — no-op, in-memory ring buffer, JSONL writer;
//! - [`metrics`] — counters, gauges with timelines, fixed-bucket
//!   histograms, exported as one JSON snapshot;
//! - [`chrome`] — Chrome trace-event (Perfetto-loadable) export of the
//!   DP/SP pipeline structure;
//! - [`critical`] — critical-path analysis of a finished run.

pub mod chrome;
pub mod critical;
pub mod detect;
pub mod drift;
pub mod fit;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod prof;
pub mod sinks;
pub mod span;
pub mod timeline;

use json::JsonObject;
use moteur_gridsim::{SimEvent, SimTime};
use std::sync::{Arc, Mutex};

/// One observable transition, at enactor or grid level. `at` is always
/// the backend clock (virtual time for simulated backends, wall time
/// for [`crate::backend::LocalBackend`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A processor (or source) delivered a token downstream.
    TokenEmitted {
        at: SimTime,
        processor: String,
        port: String,
        index: String,
    },
    /// An iteration-strategy match completed: a service has a full
    /// input set and may fire.
    MatchFired {
        at: SimTime,
        processor: String,
        index: String,
        inputs: usize,
    },
    /// A grouped (JG) job was composed from several workflow stages.
    GroupComposed {
        at: SimTime,
        processor: String,
        stages: usize,
        commands: usize,
    },
    /// A synchronization barrier released: all upstream streams
    /// exhausted, the collected inputs fired as one invocation.
    BarrierReleased {
        at: SimTime,
        processor: String,
        inputs: usize,
    },
    /// The enactor handed an invocation to the backend. `batched` is
    /// the number of workflow invocations the job carries (>1 under
    /// data batching).
    JobSubmitted {
        at: SimTime,
        invocation: u64,
        processor: String,
        grid: bool,
        batched: usize,
    },
    /// Enactor-level resubmission of a terminally failed grid job.
    /// `attempt` is the backend tag of the new attempt: equal to
    /// `invocation` for failure resubmits (the logical tag is free
    /// again), a fresh tag for timeout resubmits whose cancelled
    /// predecessor may still surface.
    JobResubmitted {
        at: SimTime,
        invocation: u64,
        processor: String,
        retry: u32,
        attempt: u64,
    },
    /// The invocation completed; its outputs were routed. Terminal.
    JobCompleted {
        at: SimTime,
        invocation: u64,
        processor: String,
    },
    /// The invocation failed beyond the retry budget. Terminal.
    JobFailed {
        at: SimTime,
        invocation: u64,
        processor: String,
        error: String,
    },
    /// The invocation outlived its timeout policy; the enactor reacted
    /// (`action` is `"resubmit"` or `"replicate"`).
    JobTimedOut {
        at: SimTime,
        invocation: u64,
        processor: String,
        timeout_secs: f64,
        action: &'static str,
    },
    /// A speculative replica was launched for a still-running
    /// invocation (`replica` counts from 1). First completion wins.
    /// `attempt` is the replica's fresh backend tag: grid-level events
    /// for the replica carry it, not the logical invocation id.
    JobReplicated {
        at: SimTime,
        invocation: u64,
        processor: String,
        replica: u32,
        attempt: u64,
    },
    /// The invocation was cancelled — a losing replica after the
    /// winner completed, or a pending job drained on workflow abort.
    /// Terminal.
    JobCancelled {
        at: SimTime,
        invocation: u64,
        processor: String,
        reason: &'static str,
    },
    /// A computing element was blacklisted after repeated failures;
    /// the backend stops routing new jobs to it.
    CeBlacklisted {
        at: SimTime,
        ce: usize,
        failures: u32,
    },
    /// The data manager answered the invocation from its cache: the
    /// grid job is elided and replaced by a simulated fetch of the
    /// `outputs` stored results, costing `transfer_seconds`.
    CacheHit {
        at: SimTime,
        invocation: u64,
        processor: String,
        outputs: usize,
        transfer_seconds: f64,
    },
    /// The data manager had no usable entry for the invocation; the
    /// job proceeds to the backend as usual.
    CacheMiss {
        at: SimTime,
        invocation: u64,
        processor: String,
    },
    /// The enactor bound `bytes` of file data to input `port` of
    /// `processor` while composing a grid job: the observed counterpart
    /// of `moteur plan`'s static per-edge transfer bounds, keyed by
    /// consumer and port. One event per staged token; whole-stream
    /// barrier fetches emit one event per collected file.
    EdgeStaged {
        at: SimTime,
        invocation: u64,
        processor: String,
        port: String,
        bytes: u64,
    },

    /// The grid user interface accepted the job (follows the enactor's
    /// `JobSubmitted` after the submission overhead).
    GridSubmitted {
        at: SimTime,
        invocation: u64,
        name: String,
    },
    /// The resource broker matched the job to a computing element.
    GridMatched {
        at: SimTime,
        invocation: u64,
        ce: usize,
    },
    /// The job entered a CE batch queue (`attempt` counts from 1).
    GridEnqueued {
        at: SimTime,
        invocation: u64,
        ce: usize,
        attempt: u32,
    },
    /// A worker slot started executing the job.
    GridStarted {
        at: SimTime,
        invocation: u64,
        ce: usize,
    },
    /// The execution attempt finished on its worker.
    GridFinished {
        at: SimTime,
        invocation: u64,
        ce: usize,
        success: bool,
    },
    /// A failed attempt re-entered the grid submission chain.
    GridResubmitted {
        at: SimTime,
        invocation: u64,
        attempt: u32,
    },
    /// The completion reached the submitter — terminal at grid level.
    GridDelivered {
        at: SimTime,
        invocation: u64,
        success: bool,
    },
    /// The submitter cancelled the grid job — terminal at grid level.
    GridCancelled { at: SimTime, invocation: u64 },
    /// A computing element's occupancy or availability changed.
    CeCapacity {
        at: SimTime,
        ce: usize,
        busy: usize,
        queued: usize,
        queued_user: usize,
        slots: usize,
        up: bool,
    },
    /// A started grid attempt committed its stage-in/stage-out bytes to
    /// the CE's network link (congested durations included). Retried
    /// attempts transfer — and therefore emit — again.
    GridLinkTransfer {
        at: SimTime,
        invocation: u64,
        ce: usize,
        bytes_in: u64,
        bytes_out: u64,
        stage_in_secs: f64,
        stage_out_secs: f64,
    },

    /// Periodic enactor-side resource gauges: invocations in flight,
    /// backoff-deferred resubmissions, quarantined items, and the data
    /// manager's occupancy (zero when no store is attached).
    EnactorGauges {
        at: SimTime,
        inflight: usize,
        deferred: usize,
        quarantined: usize,
        cache_entries: usize,
        cache_bytes: u64,
    },
    /// Streaming enactment: a processor's downstream port filled to
    /// capacity and the processor stopped firing (back-pressure).
    /// Emitted once per transition into the suspended state.
    PortSuspended {
        at: SimTime,
        processor: String,
        /// Deepest outgoing-edge occupancy at suspension.
        depth: usize,
        capacity: usize,
    },
    /// Streaming enactment: a suspended processor's downstream port
    /// drained below capacity and it resumed firing. Emitted once per
    /// transition out of the suspended state.
    PortResumed {
        at: SimTime,
        processor: String,
        /// Deepest outgoing-edge occupancy at resumption.
        depth: usize,
        capacity: usize,
    },
    /// The run's projected completion (linear burn rate over completed
    /// invocations) exceeded the predicted makespan by the configured
    /// factor. Emitted once, at the first breach.
    SloBreached {
        at: SimTime,
        predicted_secs: f64,
        projected_secs: f64,
        factor: f64,
        completed: usize,
        expected: usize,
    },
}

impl TraceEvent {
    /// Stable snake_case tag, used as the JSON `type` field and as the
    /// metrics counter key.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TokenEmitted { .. } => "token_emitted",
            TraceEvent::MatchFired { .. } => "match_fired",
            TraceEvent::GroupComposed { .. } => "group_composed",
            TraceEvent::BarrierReleased { .. } => "barrier_released",
            TraceEvent::JobSubmitted { .. } => "job_submitted",
            TraceEvent::JobResubmitted { .. } => "job_resubmitted",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::JobFailed { .. } => "job_failed",
            TraceEvent::JobTimedOut { .. } => "job_timed_out",
            TraceEvent::JobReplicated { .. } => "job_replicated",
            TraceEvent::JobCancelled { .. } => "job_cancelled",
            TraceEvent::CeBlacklisted { .. } => "ce_blacklisted",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::EdgeStaged { .. } => "edge_staged",
            TraceEvent::GridSubmitted { .. } => "grid_submitted",
            TraceEvent::GridMatched { .. } => "grid_matched",
            TraceEvent::GridEnqueued { .. } => "grid_enqueued",
            TraceEvent::GridStarted { .. } => "grid_started",
            TraceEvent::GridFinished { .. } => "grid_finished",
            TraceEvent::GridResubmitted { .. } => "grid_resubmitted",
            TraceEvent::GridDelivered { .. } => "grid_delivered",
            TraceEvent::GridCancelled { .. } => "grid_cancelled",
            TraceEvent::CeCapacity { .. } => "ce_capacity",
            TraceEvent::GridLinkTransfer { .. } => "grid_link_transfer",
            TraceEvent::EnactorGauges { .. } => "enactor_gauges",
            TraceEvent::PortSuspended { .. } => "port_suspended",
            TraceEvent::PortResumed { .. } => "port_resumed",
            TraceEvent::SloBreached { .. } => "slo_breached",
        }
    }

    /// Backend-clock timestamp of the transition.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::TokenEmitted { at, .. }
            | TraceEvent::MatchFired { at, .. }
            | TraceEvent::GroupComposed { at, .. }
            | TraceEvent::BarrierReleased { at, .. }
            | TraceEvent::JobSubmitted { at, .. }
            | TraceEvent::JobResubmitted { at, .. }
            | TraceEvent::JobCompleted { at, .. }
            | TraceEvent::JobFailed { at, .. }
            | TraceEvent::JobTimedOut { at, .. }
            | TraceEvent::JobReplicated { at, .. }
            | TraceEvent::JobCancelled { at, .. }
            | TraceEvent::CeBlacklisted { at, .. }
            | TraceEvent::CacheHit { at, .. }
            | TraceEvent::CacheMiss { at, .. }
            | TraceEvent::EdgeStaged { at, .. }
            | TraceEvent::GridSubmitted { at, .. }
            | TraceEvent::GridMatched { at, .. }
            | TraceEvent::GridEnqueued { at, .. }
            | TraceEvent::GridStarted { at, .. }
            | TraceEvent::GridFinished { at, .. }
            | TraceEvent::GridResubmitted { at, .. }
            | TraceEvent::GridDelivered { at, .. }
            | TraceEvent::GridCancelled { at, .. }
            | TraceEvent::CeCapacity { at, .. }
            | TraceEvent::GridLinkTransfer { at, .. }
            | TraceEvent::EnactorGauges { at, .. }
            | TraceEvent::PortSuspended { at, .. }
            | TraceEvent::PortResumed { at, .. }
            | TraceEvent::SloBreached { at, .. } => *at,
        }
    }

    /// The invocation id, for job-lifecycle events.
    pub fn invocation(&self) -> Option<u64> {
        match self {
            TraceEvent::JobSubmitted { invocation, .. }
            | TraceEvent::JobResubmitted { invocation, .. }
            | TraceEvent::JobCompleted { invocation, .. }
            | TraceEvent::JobFailed { invocation, .. }
            | TraceEvent::JobTimedOut { invocation, .. }
            | TraceEvent::JobReplicated { invocation, .. }
            | TraceEvent::JobCancelled { invocation, .. }
            | TraceEvent::CacheHit { invocation, .. }
            | TraceEvent::CacheMiss { invocation, .. }
            | TraceEvent::EdgeStaged { invocation, .. }
            | TraceEvent::GridSubmitted { invocation, .. }
            | TraceEvent::GridMatched { invocation, .. }
            | TraceEvent::GridEnqueued { invocation, .. }
            | TraceEvent::GridStarted { invocation, .. }
            | TraceEvent::GridFinished { invocation, .. }
            | TraceEvent::GridResubmitted { invocation, .. }
            | TraceEvent::GridDelivered { invocation, .. }
            | TraceEvent::GridCancelled { invocation, .. }
            | TraceEvent::GridLinkTransfer { invocation, .. } => Some(*invocation),
            _ => None,
        }
    }

    /// True for the events that end an invocation's enactor-level
    /// lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TraceEvent::JobCompleted { .. }
                | TraceEvent::JobFailed { .. }
                | TraceEvent::JobCancelled { .. }
        )
    }

    /// Adapt a simulator event. The simulator's correlation tag *is*
    /// the enactor invocation id.
    pub fn from_sim(e: &SimEvent) -> TraceEvent {
        match e {
            SimEvent::JobSubmitted { at, tag, name, .. } => TraceEvent::GridSubmitted {
                at: *at,
                invocation: *tag,
                name: name.clone(),
            },
            SimEvent::JobMatched { at, tag, ce, .. } => TraceEvent::GridMatched {
                at: *at,
                invocation: *tag,
                ce: ce.0,
            },
            SimEvent::JobEnqueued {
                at,
                tag,
                ce,
                attempt,
                ..
            } => TraceEvent::GridEnqueued {
                at: *at,
                invocation: *tag,
                ce: ce.0,
                attempt: *attempt,
            },
            SimEvent::JobStarted { at, tag, ce, .. } => TraceEvent::GridStarted {
                at: *at,
                invocation: *tag,
                ce: ce.0,
            },
            SimEvent::JobFinished {
                at,
                tag,
                ce,
                outcome,
                ..
            } => TraceEvent::GridFinished {
                at: *at,
                invocation: *tag,
                ce: ce.0,
                success: *outcome == moteur_gridsim::JobOutcome::Success,
            },
            SimEvent::JobResubmitted {
                at, tag, attempt, ..
            } => TraceEvent::GridResubmitted {
                at: *at,
                invocation: *tag,
                attempt: *attempt,
            },
            SimEvent::JobDelivered {
                at, tag, outcome, ..
            } => TraceEvent::GridDelivered {
                at: *at,
                invocation: *tag,
                success: *outcome == moteur_gridsim::JobOutcome::Success,
            },
            SimEvent::JobCancelled { at, tag, .. } => TraceEvent::GridCancelled {
                at: *at,
                invocation: *tag,
            },
            SimEvent::CeCapacity {
                at,
                ce,
                busy,
                queued,
                queued_user,
                slots,
                up,
            } => TraceEvent::CeCapacity {
                at: *at,
                ce: ce.0,
                busy: *busy,
                queued: *queued,
                queued_user: *queued_user,
                slots: *slots,
                up: *up,
            },
            SimEvent::LinkTransfer {
                at,
                tag,
                ce,
                bytes_in,
                bytes_out,
                stage_in_secs,
                stage_out_secs,
                ..
            } => TraceEvent::GridLinkTransfer {
                at: *at,
                invocation: *tag,
                ce: ce.0,
                bytes_in: *bytes_in,
                bytes_out: *bytes_out,
                stage_in_secs: *stage_in_secs,
                stage_out_secs: *stage_out_secs,
            },
        }
    }

    /// One-line JSON rendering (the JSONL schema).
    pub fn to_json(&self) -> String {
        let base = JsonObject::new()
            .str("type", self.kind())
            .num("t", self.at().as_secs_f64());
        match self {
            TraceEvent::TokenEmitted {
                processor,
                port,
                index,
                ..
            } => base
                .str("processor", processor)
                .str("port", port)
                .str("index", index)
                .finish(),
            TraceEvent::MatchFired {
                processor,
                index,
                inputs,
                ..
            } => base
                .str("processor", processor)
                .str("index", index)
                .uint("inputs", *inputs as u64)
                .finish(),
            TraceEvent::GroupComposed {
                processor,
                stages,
                commands,
                ..
            } => base
                .str("processor", processor)
                .uint("stages", *stages as u64)
                .uint("commands", *commands as u64)
                .finish(),
            TraceEvent::BarrierReleased {
                processor, inputs, ..
            } => base
                .str("processor", processor)
                .uint("inputs", *inputs as u64)
                .finish(),
            TraceEvent::JobSubmitted {
                invocation,
                processor,
                grid,
                batched,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .bool("grid", *grid)
                .uint("batched", *batched as u64)
                .finish(),
            TraceEvent::JobResubmitted {
                invocation,
                processor,
                retry,
                attempt,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .uint("retry", u64::from(*retry))
                .uint("attempt", *attempt)
                .finish(),
            TraceEvent::JobCompleted {
                invocation,
                processor,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .finish(),
            TraceEvent::JobFailed {
                invocation,
                processor,
                error,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .str("error", error)
                .finish(),
            TraceEvent::JobTimedOut {
                invocation,
                processor,
                timeout_secs,
                action,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .num("timeout_secs", *timeout_secs)
                .str("action", action)
                .finish(),
            TraceEvent::JobReplicated {
                invocation,
                processor,
                replica,
                attempt,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .uint("replica", u64::from(*replica))
                .uint("attempt", *attempt)
                .finish(),
            TraceEvent::JobCancelled {
                invocation,
                processor,
                reason,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .str("reason", reason)
                .finish(),
            TraceEvent::CeBlacklisted { ce, failures, .. } => base
                .uint("ce", *ce as u64)
                .uint("failures", u64::from(*failures))
                .finish(),
            TraceEvent::CacheHit {
                invocation,
                processor,
                outputs,
                transfer_seconds,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .uint("outputs", *outputs as u64)
                .num("transfer_seconds", *transfer_seconds)
                .finish(),
            TraceEvent::CacheMiss {
                invocation,
                processor,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .finish(),
            TraceEvent::EdgeStaged {
                invocation,
                processor,
                port,
                bytes,
                ..
            } => base
                .uint("invocation", *invocation)
                .str("processor", processor)
                .str("port", port)
                .uint("bytes", *bytes)
                .finish(),
            TraceEvent::GridSubmitted {
                invocation, name, ..
            } => base
                .uint("invocation", *invocation)
                .str("name", name)
                .finish(),
            TraceEvent::GridMatched { invocation, ce, .. } => base
                .uint("invocation", *invocation)
                .uint("ce", *ce as u64)
                .finish(),
            TraceEvent::GridEnqueued {
                invocation,
                ce,
                attempt,
                ..
            } => base
                .uint("invocation", *invocation)
                .uint("ce", *ce as u64)
                .uint("attempt", u64::from(*attempt))
                .finish(),
            TraceEvent::GridStarted { invocation, ce, .. } => base
                .uint("invocation", *invocation)
                .uint("ce", *ce as u64)
                .finish(),
            TraceEvent::GridFinished {
                invocation,
                ce,
                success,
                ..
            } => base
                .uint("invocation", *invocation)
                .uint("ce", *ce as u64)
                .bool("success", *success)
                .finish(),
            TraceEvent::GridResubmitted {
                invocation,
                attempt,
                ..
            } => base
                .uint("invocation", *invocation)
                .uint("attempt", u64::from(*attempt))
                .finish(),
            TraceEvent::GridDelivered {
                invocation,
                success,
                ..
            } => base
                .uint("invocation", *invocation)
                .bool("success", *success)
                .finish(),
            TraceEvent::GridCancelled { invocation, .. } => {
                base.uint("invocation", *invocation).finish()
            }
            TraceEvent::CeCapacity {
                ce,
                busy,
                queued,
                queued_user,
                slots,
                up,
                ..
            } => base
                .uint("ce", *ce as u64)
                .uint("busy", *busy as u64)
                .uint("queued", *queued as u64)
                .uint("queued_user", *queued_user as u64)
                .uint("slots", *slots as u64)
                .bool("up", *up)
                .finish(),
            TraceEvent::GridLinkTransfer {
                invocation,
                ce,
                bytes_in,
                bytes_out,
                stage_in_secs,
                stage_out_secs,
                ..
            } => base
                .uint("invocation", *invocation)
                .uint("ce", *ce as u64)
                .uint("bytes_in", *bytes_in)
                .uint("bytes_out", *bytes_out)
                .num("stage_in_secs", *stage_in_secs)
                .num("stage_out_secs", *stage_out_secs)
                .finish(),
            TraceEvent::EnactorGauges {
                inflight,
                deferred,
                quarantined,
                cache_entries,
                cache_bytes,
                ..
            } => base
                .uint("inflight", *inflight as u64)
                .uint("deferred", *deferred as u64)
                .uint("quarantined", *quarantined as u64)
                .uint("cache_entries", *cache_entries as u64)
                .uint("cache_bytes", *cache_bytes)
                .finish(),
            TraceEvent::PortSuspended {
                processor,
                depth,
                capacity,
                ..
            }
            | TraceEvent::PortResumed {
                processor,
                depth,
                capacity,
                ..
            } => base
                .str("processor", processor)
                .uint("depth", *depth as u64)
                .uint("capacity", *capacity as u64)
                .finish(),
            TraceEvent::SloBreached {
                predicted_secs,
                projected_secs,
                factor,
                completed,
                expected,
                ..
            } => base
                .num("predicted_secs", *predicted_secs)
                .num("projected_secs", *projected_secs)
                .num("factor", *factor)
                .uint("completed", *completed as u64)
                .uint("expected", *expected as u64)
                .finish(),
        }
    }
}

/// A consumer of [`TraceEvent`]s. Sinks are driven from one thread at a
/// time (the [`Obs`] handle serialises access), but must be `Send` so
/// an `Obs` can cross thread boundaries.
pub trait EventSink: Send {
    fn record(&mut self, event: &TraceEvent);

    /// Flush buffered output (files); default no-op.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Shared fan-out list behind an enabled [`Obs`] handle.
type SharedSinks = Arc<Mutex<Vec<Box<dyn EventSink>>>>;

/// Cheap, cloneable handle through which instrumented code emits
/// events. [`Obs::off`] is the zero-cost disabled state: emission sites
/// reduce to one `Option` check and never construct the event.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<SharedSinks>,
    /// Self-profiler handle carried alongside the sinks so every layer
    /// that already threads an `Obs` gets profiling for free.
    prof: prof::Prof,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .field("profiling", &self.prof.is_enabled())
            .finish()
    }
}

impl Obs {
    /// Tracing disabled: every emission is a no-op.
    pub fn off() -> Self {
        Obs {
            inner: None,
            prof: prof::Prof::off(),
        }
    }

    /// Tracing enabled, fanning out to `sinks`. An empty sink list
    /// degenerates to [`Obs::off`].
    pub fn new(sinks: Vec<Box<dyn EventSink>>) -> Self {
        if sinks.is_empty() {
            Obs::off()
        } else {
            Obs {
                inner: Some(Arc::new(Mutex::new(sinks))),
                prof: prof::Prof::off(),
            }
        }
    }

    /// Attach a profiler handle. Works on both enabled and disabled
    /// handles — profiling and tracing are independent axes.
    #[must_use]
    pub fn with_prof(mut self, prof: prof::Prof) -> Self {
        self.prof = prof;
        self
    }

    /// The attached profiler ([`prof::Prof::off`] unless installed via
    /// [`Obs::with_prof`]). Cheap to clone; scopes taken from it are
    /// no-ops when profiling is disabled.
    pub fn prof(&self) -> &prof::Prof {
        &self.prof
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event, building it only when tracing is enabled.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let event = build();
            let _prof = self.prof.scope(prof::Subsystem::Sinks);
            let mut sinks = inner.lock().expect("obs sink lock poisoned");
            for sink in sinks.iter_mut() {
                sink.record(&event);
            }
        }
    }

    /// Record a pre-built event (used by forwarding adapters).
    pub fn record(&self, event: &TraceEvent) {
        if let Some(inner) = &self.inner {
            let _prof = self.prof.scope(prof::Subsystem::Sinks);
            let mut sinks = inner.lock().expect("obs sink lock poisoned");
            for sink in sinks.iter_mut() {
                sink.record(event);
            }
        }
    }

    /// Flush every sink.
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            let mut sinks = inner.lock().expect("obs sink lock poisoned");
            for sink in sinks.iter_mut() {
                sink.flush()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moteur_gridsim::{CeId, JobId, JobOutcome};

    #[test]
    fn off_handle_never_builds_events() {
        let obs = Obs::off();
        let mut built = false;
        obs.emit(|| {
            built = true;
            TraceEvent::TokenEmitted {
                at: SimTime::ZERO,
                processor: "p".into(),
                port: "out".into(),
                index: "[0]".into(),
            }
        });
        assert!(!built, "disabled obs must not invoke the builder");
        assert!(!obs.enabled());
    }

    #[test]
    fn empty_sink_list_is_off() {
        assert!(!Obs::new(Vec::new()).enabled());
    }

    #[test]
    fn json_schema_is_stable() {
        let e = TraceEvent::JobSubmitted {
            at: SimTime::from_secs_f64(1.5),
            invocation: 7,
            processor: "crestLines".into(),
            grid: true,
            batched: 1,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"job_submitted\",\"t\":1.5,\"invocation\":7,\
             \"processor\":\"crestLines\",\"grid\":true,\"batched\":1}"
        );
        assert_eq!(e.kind(), "job_submitted");
        assert_eq!(e.invocation(), Some(7));
        assert!(!e.is_terminal());
        assert!(TraceEvent::JobCompleted {
            at: SimTime::ZERO,
            invocation: 7,
            processor: "x".into()
        }
        .is_terminal());
    }

    #[test]
    fn sim_events_adapt_with_tag_as_invocation() {
        let s = SimEvent::JobDelivered {
            at: SimTime::from_secs_f64(9.0),
            job: JobId(3),
            tag: 42,
            outcome: JobOutcome::Success,
        };
        let t = TraceEvent::from_sim(&s);
        assert_eq!(t.invocation(), Some(42));
        assert_eq!(t.kind(), "grid_delivered");
        let c = SimEvent::CeCapacity {
            at: SimTime::ZERO,
            ce: CeId(2),
            busy: 1,
            queued: 4,
            queued_user: 2,
            slots: 8,
            up: true,
        };
        assert_eq!(TraceEvent::from_sim(&c).kind(), "ce_capacity");
        let l = SimEvent::LinkTransfer {
            at: SimTime::from_secs_f64(3.0),
            job: JobId(1),
            tag: 7,
            ce: CeId(2),
            bytes_in: 1_000,
            bytes_out: 500,
            stage_in_secs: 2.0,
            stage_out_secs: 1.0,
        };
        let t = TraceEvent::from_sim(&l);
        assert_eq!(t.kind(), "grid_link_transfer");
        assert_eq!(t.invocation(), Some(7));
        assert_eq!(
            t.to_json(),
            "{\"type\":\"grid_link_transfer\",\"t\":3,\"invocation\":7,\
             \"ce\":2,\"bytes_in\":1000,\"bytes_out\":500,\
             \"stage_in_secs\":2,\"stage_out_secs\":1}"
        );
    }
}
