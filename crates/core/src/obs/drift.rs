//! Model-vs-observed drift detection.
//!
//! `lint::predict` evaluates the paper's closed forms (eq. 1–4) without
//! enacting anything; an observed run measures what actually happened.
//! This module closes the loop: [`check_drift`] compares observed
//! makespans against the matching [`Prediction`] rows and produces a
//! typed [`DriftReport`] flagging every configuration whose relative
//! error exceeds a tolerance. On an ideal backend the two must agree
//! almost exactly — drift there means the enactor, the model, or the
//! instrumentation regressed, which is precisely what the bench gate
//! wants to catch.

use super::json::{array, JsonObject};
use crate::lint::predict::Prediction;

/// Drift of one configuration at one campaign size.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEntry {
    /// Configuration key, `lint::predict` spelling (`"sp+dp"`, …).
    pub config: String,
    pub n_data: usize,
    pub predicted_secs: f64,
    pub observed_secs: f64,
    /// `observed − predicted` (positive: slower than the model).
    pub abs_error_secs: f64,
    /// `|observed − predicted| / predicted`; `0` when both are zero,
    /// `∞` when only the prediction is zero.
    pub rel_error: f64,
    /// True when `rel_error` exceeds the report tolerance.
    pub flagged: bool,
}

/// Drift of a set of observations against one model.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Relative-error tolerance the entries were flagged against.
    pub tolerance: f64,
    pub entries: Vec<DriftEntry>,
}

impl DriftReport {
    /// Entries beyond tolerance.
    pub fn flagged(&self) -> impl Iterator<Item = &DriftEntry> {
        self.entries.iter().filter(|e| e.flagged)
    }

    /// True when every entry is within tolerance.
    pub fn ok(&self) -> bool {
        self.entries.iter().all(|e| !e.flagged)
    }

    /// Largest relative error across entries (`0` when empty).
    pub fn max_rel_error(&self) -> f64 {
        self.entries.iter().map(|e| e.rel_error).fold(0.0, f64::max)
    }

    /// Serialise for the bench summary and CLI output.
    pub fn to_json(&self) -> String {
        let entries = self.entries.iter().map(|e| {
            JsonObject::new()
                .str("config", &e.config)
                .uint("n_data", e.n_data as u64)
                .num("predicted_secs", e.predicted_secs)
                .num("observed_secs", e.observed_secs)
                .num("abs_error_secs", e.abs_error_secs)
                .num("rel_error", e.rel_error)
                .bool("flagged", e.flagged)
                .finish()
        });
        JsonObject::new()
            .num("tolerance", self.tolerance)
            .bool("ok", self.ok())
            .num("max_rel_error", self.max_rel_error())
            .raw("entries", &array(entries))
            .finish()
    }

    /// Human rendering, one line per entry.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "drift vs eq. 1-4 (tolerance {:.1}%):",
            self.tolerance * 100.0
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  {:<10} n={:<5} predicted {:>12.2}s observed {:>12.2}s \
                 error {:>+10.2}s ({:>6.2}%){}",
                e.config,
                e.n_data,
                e.predicted_secs,
                e.observed_secs,
                e.abs_error_secs,
                e.rel_error * 100.0,
                if e.flagged { "  DRIFT" } else { "" }
            );
        }
        out
    }
}

/// One observed makespan to check against the model.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Configuration key, matched case-insensitively against prediction
    /// rows (so both `EnactorConfig::label()`'s `"SP+DP"` and predict's
    /// `"sp+dp"` work).
    pub config: String,
    pub makespan_secs: f64,
}

/// Compare observations at one campaign size against its prediction.
///
/// Observations whose configuration has no prediction row are skipped —
/// the report only covers comparable pairs.
pub fn check_drift(
    prediction: &Prediction,
    observations: &[Observation],
    tolerance: f64,
) -> DriftReport {
    let mut entries = Vec::new();
    for obs in observations {
        let Some(row) = prediction
            .rows
            .iter()
            .find(|r| r.config.eq_ignore_ascii_case(&obs.config))
        else {
            continue;
        };
        let abs_error = obs.makespan_secs - row.makespan;
        let rel_error = if row.makespan == 0.0 {
            if obs.makespan_secs == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            abs_error.abs() / row.makespan
        };
        entries.push(DriftEntry {
            config: row.config.to_string(),
            n_data: prediction.n_data,
            predicted_secs: row.makespan,
            observed_secs: obs.makespan_secs,
            abs_error_secs: abs_error,
            rel_error,
            flagged: rel_error > tolerance,
        });
    }
    DriftReport { tolerance, entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::predict::{Prediction, PredictionRow};

    fn prediction() -> Prediction {
        Prediction {
            n_data: 10,
            overhead: 0.0,
            n_services: 2,
            rows: vec![
                PredictionRow {
                    config: "nop",
                    jobs: 20,
                    makespan: 1000.0,
                },
                PredictionRow {
                    config: "sp+dp",
                    jobs: 20,
                    makespan: 100.0,
                },
            ],
        }
    }

    #[test]
    fn within_tolerance_is_clean() {
        let report = check_drift(
            &prediction(),
            &[
                Observation {
                    config: "nop".into(),
                    makespan_secs: 1030.0,
                },
                Observation {
                    config: "SP+DP".into(), // enactor label spelling
                    makespan_secs: 99.0,
                },
            ],
            0.05,
        );
        assert_eq!(report.entries.len(), 2);
        assert!(report.ok());
        assert_eq!(report.flagged().count(), 0);
        assert!((report.max_rel_error() - 0.03).abs() < 1e-9);
        assert_eq!(report.entries[1].config, "sp+dp", "canonical key");
    }

    #[test]
    fn beyond_tolerance_is_flagged_with_signed_error() {
        let report = check_drift(
            &prediction(),
            &[Observation {
                config: "nop".into(),
                makespan_secs: 1200.0,
            }],
            0.05,
        );
        assert!(!report.ok());
        let e = &report.entries[0];
        assert!(e.flagged);
        assert!((e.abs_error_secs - 200.0).abs() < 1e-9);
        assert!((e.rel_error - 0.2).abs() < 1e-9);
        assert!(report.render().contains("DRIFT"));
        assert!(report.to_json().contains("\"flagged\":true"));
        assert!(report.to_json().contains("\"ok\":false"));
    }

    #[test]
    fn unknown_configs_are_skipped_and_zero_prediction_handled() {
        let mut pred = prediction();
        pred.rows[0].makespan = 0.0;
        let report = check_drift(
            &pred,
            &[
                Observation {
                    config: "mystery".into(),
                    makespan_secs: 1.0,
                },
                Observation {
                    config: "nop".into(),
                    makespan_secs: 0.0,
                },
            ],
            0.05,
        );
        assert_eq!(report.entries.len(), 1, "mystery skipped");
        assert_eq!(report.entries[0].rel_error, 0.0);
        assert!(report.ok());
        let report2 = check_drift(
            &pred,
            &[Observation {
                config: "nop".into(),
                makespan_secs: 5.0,
            }],
            0.05,
        );
        assert!(report2.entries[0].rel_error.is_infinite());
        assert!(!report2.ok());
    }
}
