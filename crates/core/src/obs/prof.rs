//! Self-profiler integration: the `moteur/prof/v1` JSON codec and the
//! `moteur_prof_*` OpenMetrics fragment over [`moteur_prof`]'s
//! measurement core.
//!
//! The canonical JSON document is **deterministic**: it carries only
//! quantities that are functions of the (seeded) program — per-subsystem
//! call and allocation counts, and per-call-path call counts. Wall-clock
//! durations are measured, machine-dependent quantities and are
//! deliberately excluded; they surface in the human hot-spot table
//! ([`ProfReport::render_table`]), the collapsed-stack export
//! ([`ProfReport::render_collapsed`]) and the OpenMetrics counters.
//! Allocation counts are deterministic *given a binary*: they are zero
//! unless that binary installs [`moteur_prof::alloc::CountingAlloc`],
//! and with it they depend only on the allocation sequence, which the
//! seeded single-threaded hot paths make reproducible.

pub use moteur_prof::{PathEntry, Prof, ProfReport, ProfScope, Subsystem, SubsystemStat};

use super::json::{array, JsonObject};
use crate::lint::JsonValue;

/// Schema tag of the canonical profile document.
pub const PROF_SCHEMA: &str = "moteur/prof/v1";

/// Render the canonical `moteur/prof/v1` document: a single line of
/// JSON, byte-identical across processes for deterministic runs.
pub fn to_json(report: &ProfReport) -> String {
    let subsystems = array(report.subsystems.iter().map(|s| {
        JsonObject::new()
            .str("subsystem", s.subsystem.name())
            .uint("calls", s.calls)
            .uint("allocs", s.allocs)
            .uint("alloc_bytes", s.alloc_bytes)
            .finish()
    }));
    let paths = array(
        report
            .paths
            .iter()
            .map(|p| {
                JsonObject::new()
                    .str("stack", &p.stack)
                    .uint("calls", p.calls)
                    .finish()
            })
            .collect::<Vec<_>>(),
    );
    JsonObject::new()
        .str("schema", PROF_SCHEMA)
        .raw("subsystems", &subsystems)
        .raw("paths", &paths)
        .finish()
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("prof: missing or invalid `{key}`"))
}

/// Parse a `moteur/prof/v1` document back into a [`ProfReport`].
/// Wall-time fields are not part of the schema and come back as 0;
/// `to_json(&from_json(doc)?)` reproduces `doc` byte-for-byte for any
/// document this module rendered.
pub fn from_json(text: &str) -> Result<ProfReport, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("prof: {e}"))?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(PROF_SCHEMA) => {}
        Some(other) => return Err(format!("prof: unsupported schema `{other}`")),
        None => return Err("prof: missing schema tag".to_string()),
    }
    let subsystems = doc
        .get("subsystems")
        .and_then(JsonValue::as_array)
        .ok_or("prof: missing `subsystems` array")?
        .iter()
        .map(|s| {
            let name = s
                .get("subsystem")
                .and_then(JsonValue::as_str)
                .ok_or("prof: subsystem entry missing name")?;
            let subsystem = Subsystem::from_name(name)
                .ok_or_else(|| format!("prof: unknown subsystem `{name}`"))?;
            Ok(SubsystemStat {
                subsystem,
                calls: field_u64(s, "calls")?,
                wall_nanos: 0,
                allocs: field_u64(s, "allocs")?,
                alloc_bytes: field_u64(s, "alloc_bytes")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let paths = doc
        .get("paths")
        .and_then(JsonValue::as_array)
        .ok_or("prof: missing `paths` array")?
        .iter()
        .map(|p| {
            let stack = p
                .get("stack")
                .and_then(JsonValue::as_str)
                .ok_or("prof: path entry missing stack")?;
            Ok(PathEntry {
                stack: stack.to_string(),
                calls: field_u64(p, "calls")?,
                wall_nanos: 0,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ProfReport { subsystems, paths })
}

/// Render the `moteur_prof_*` OpenMetrics fragment (no `# EOF`
/// terminator — the caller appends it; see
/// [`super::openmetrics::render_with_prof`]). Empty when nothing was
/// profiled, so metric exports of unprofiled runs are unchanged.
pub fn openmetrics_fragment(report: &ProfReport) -> String {
    use std::fmt::Write as _;
    let active: Vec<&SubsystemStat> = report.subsystems.iter().filter(|s| s.calls > 0).collect();
    if active.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("# TYPE moteur_prof_calls counter\n");
    out.push_str("# HELP moteur_prof_calls Profiled scope entries per subsystem.\n");
    for s in &active {
        let _ = writeln!(
            out,
            "moteur_prof_calls_total{{subsystem=\"{}\"}} {}",
            s.subsystem.name(),
            s.calls
        );
    }
    out.push_str("# TYPE moteur_prof_wall_seconds counter\n");
    out.push_str("# HELP moteur_prof_wall_seconds Inclusive wall time per subsystem (measured).\n");
    for s in &active {
        let _ = writeln!(
            out,
            "moteur_prof_wall_seconds_total{{subsystem=\"{}\"}} {}",
            s.subsystem.name(),
            super::json::num(s.wall_nanos as f64 / 1e9)
        );
    }
    out.push_str("# TYPE moteur_prof_alloc_bytes counter\n");
    out.push_str(
        "# HELP moteur_prof_alloc_bytes Bytes allocated inside profiled scopes (0 without the counting allocator).\n",
    );
    for s in &active {
        let _ = writeln!(
            out,
            "moteur_prof_alloc_bytes_total{{subsystem=\"{}\"}} {}",
            s.subsystem.name(),
            s.alloc_bytes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfReport {
        let prof = Prof::enabled();
        for _ in 0..4 {
            let _outer = prof.scope(Subsystem::EnactorLoop);
            let _inner = prof.scope(Subsystem::ProvenanceKey);
        }
        prof.report()
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let report = sample_report();
        let doc = to_json(&report);
        let parsed = from_json(&doc).expect("round trip");
        assert_eq!(to_json(&parsed), doc);
        // Wall time never leaks into the canonical document.
        assert!(!doc.contains("wall"));
        assert!(doc.contains("\"schema\":\"moteur/prof/v1\""));
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(from_json("{}").unwrap_err().contains("schema"));
        assert!(from_json("{\"schema\":\"moteur/prof/v0\"}")
            .unwrap_err()
            .contains("unsupported"));
        let missing_paths = "{\"schema\":\"moteur/prof/v1\",\"subsystems\":[]}";
        assert!(from_json(missing_paths).unwrap_err().contains("paths"));
        let bad_name = "{\"schema\":\"moteur/prof/v1\",\"subsystems\":[{\"subsystem\":\"bogus\",\"calls\":1,\"allocs\":0,\"alloc_bytes\":0}],\"paths\":[]}";
        assert!(from_json(bad_name).unwrap_err().contains("bogus"));
    }

    #[test]
    fn empty_report_round_trips() {
        let report = Prof::off().report();
        let doc = to_json(&report);
        let parsed = from_json(&doc).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn openmetrics_fragment_lists_active_subsystems() {
        let fragment = openmetrics_fragment(&sample_report());
        assert!(fragment.contains("moteur_prof_calls_total{subsystem=\"enactor_loop\"} 4"));
        assert!(fragment.contains("moteur_prof_calls_total{subsystem=\"provenance_key\"} 4"));
        assert!(fragment.contains("moteur_prof_wall_seconds_total{subsystem=\"enactor_loop\"}"));
        assert!(fragment.contains("moteur_prof_alloc_bytes_total{subsystem=\"enactor_loop\"} "));
        assert!(!fragment.contains("pick_ce"), "inactive subsystems omitted");
        assert!(!fragment.contains("# EOF"), "caller owns the terminator");
    }

    #[test]
    fn openmetrics_fragment_empty_without_activity() {
        assert_eq!(openmetrics_fragment(&Prof::off().report()), "");
    }

    #[test]
    fn obs_carries_a_prof_handle() {
        let obs = super::super::Obs::off().with_prof(Prof::enabled());
        assert!(obs.prof().is_enabled());
        {
            let _s = obs.prof().scope(Subsystem::StoreIo);
        }
        assert_eq!(obs.prof().report().subsystems[4].calls, 1);
        assert!(!super::super::Obs::off().prof().is_enabled());
    }
}
