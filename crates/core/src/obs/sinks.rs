//! Built-in [`EventSink`] implementations: no-op, bounded in-memory
//! ring buffer, and JSONL stream writer.

use super::{EventSink, TraceEvent};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Discards every event. Useful to measure dispatch overhead and as an
/// explicit "enabled but silent" configuration in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Shared view over a [`RingBufferSink`]'s contents.
#[derive(Debug, Clone)]
pub struct EventBuffer {
    events: Arc<Mutex<VecDeque<TraceEvent>>>,
    dropped: Arc<Mutex<u64>>,
}

impl EventBuffer {
    /// Copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("event buffer lock")
            .iter()
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.events.lock().expect("event buffer lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().expect("event buffer lock")
    }
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug)]
pub struct RingBufferSink {
    events: Arc<Mutex<VecDeque<TraceEvent>>>,
    dropped: Arc<Mutex<u64>>,
    capacity: usize,
}

impl RingBufferSink {
    /// Returns the sink and a shared [`EventBuffer`] handle to read the
    /// retained events after (or during) a run.
    pub fn new(capacity: usize) -> (Self, EventBuffer) {
        let events = Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(4096))));
        let dropped = Arc::new(Mutex::new(0));
        let buffer = EventBuffer {
            events: events.clone(),
            dropped: dropped.clone(),
        };
        (
            RingBufferSink {
                events,
                dropped,
                capacity: capacity.max(1),
            },
            buffer,
        )
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        let mut events = self.events.lock().expect("event buffer lock");
        if events.len() == self.capacity {
            events.pop_front();
            *self.dropped.lock().expect("event buffer lock") += 1;
        }
        events.push_back(event.clone());
    }
}

/// Writes one JSON object per line (JSONL / NDJSON).
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
    /// First write error, reported on [`EventSink::flush`]. Event
    /// recording itself stays infallible.
    error: Option<std::io::Error>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(writer),
            error: None,
        }
    }

    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json();
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

impl Drop for JsonlSink {
    /// Best-effort flush so a sink dropped without an explicit
    /// [`EventSink::flush`] (early return, panic unwind) still leaves a
    /// complete, parseable file. Errors cannot propagate from drop and
    /// are discarded.
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moteur_gridsim::SimTime;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::JobCompleted {
            at: SimTime::from_secs_f64(i as f64),
            invocation: i,
            processor: "p".into(),
        }
    }

    #[test]
    fn ring_buffer_keeps_most_recent_and_counts_drops() {
        let (mut sink, buffer) = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(&ev(i));
        }
        let kept: Vec<u64> = buffer
            .snapshot()
            .iter()
            .filter_map(super::super::TraceEvent::invocation)
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(buffer.dropped(), 2);
        assert_eq!(buffer.len(), 3);
        assert!(!buffer.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        struct SharedVec(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedVec {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonlSink::new(Box::new(SharedVec(shared.clone())));
        sink.record(&ev(1));
        sink.record(&ev(2));
        sink.flush().unwrap();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\"job_completed\""));
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.record(&ev(0));
        sink.flush().unwrap();
    }

    #[test]
    fn ring_buffer_wraps_exactly_at_capacity() {
        let (mut sink, buffer) = RingBufferSink::new(4);
        for i in 0..4 {
            sink.record(&ev(i));
        }
        assert_eq!(buffer.dropped(), 0, "at capacity, nothing dropped yet");
        sink.record(&ev(4));
        assert_eq!(buffer.dropped(), 1, "first overflow evicts exactly one");
        let kept: Vec<u64> = buffer
            .snapshot()
            .iter()
            .filter_map(super::super::TraceEvent::invocation)
            .collect();
        assert_eq!(kept, vec![1, 2, 3, 4], "oldest evicted, order preserved");
        // Keep wrapping: retained window slides, count accumulates.
        for i in 5..105 {
            sink.record(&ev(i));
        }
        assert_eq!(buffer.len(), 4);
        assert_eq!(buffer.dropped(), 101);
        let kept: Vec<u64> = buffer
            .snapshot()
            .iter()
            .filter_map(super::super::TraceEvent::invocation)
            .collect();
        assert_eq!(kept, vec![101, 102, 103, 104]);
    }

    #[test]
    fn ring_buffer_capacity_zero_is_clamped_to_one() {
        let (mut sink, buffer) = RingBufferSink::new(0);
        sink.record(&ev(0));
        sink.record(&ev(1));
        assert_eq!(buffer.len(), 1);
        assert_eq!(buffer.dropped(), 1);
        assert_eq!(buffer.snapshot()[0].invocation(), Some(1));
    }

    #[test]
    fn dropped_jsonl_sink_leaves_a_complete_parseable_file() {
        let dir = std::env::temp_dir().join(format!(
            "moteur-sink-drop-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for i in 0..50 {
                sink.record(&ev(i));
            }
            // No explicit flush: the sink goes out of scope here.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 50, "every event made it to disk");
        assert!(text.ends_with('\n'), "file ends on a record boundary");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            crate::lint::render::JsonValue::parse(line)
                .unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
