//! OpenMetrics text exposition of a run's metrics and span phases.
//!
//! Renders one scrapeable snapshot in the [OpenMetrics text format]
//! (the Prometheus exposition format plus the `# EOF` terminator), so
//! counters, gauges and histograms are consumable by standard tooling
//! without JSON post-processing:
//!
//! ```text
//! # TYPE moteur_build_info gauge
//! moteur_build_info{version="0.7.0"} 1 5823
//! # TYPE moteur_events_total counter
//! moteur_events_total{kind="job_submitted"} 61 5823
//! # TYPE moteur_grid_overhead_seconds histogram
//! moteur_grid_overhead_seconds_bucket{le="15"} 4 5823
//! …
//! moteur_grid_overhead_seconds_bucket{le="+Inf"} 61 5823
//! moteur_grid_overhead_seconds_sum 1234.5 5823
//! moteur_grid_overhead_seconds_count 61 5823
//! # EOF
//! ```
//!
//! Samples are exemplar-free but timestamp-bearing: the trailing field
//! is the registry's latest *virtual* time, so output stays
//! byte-deterministic for a fixed workflow and seed.
//!
//! Metric values reflect end-of-run state (gauges expose their final
//! value and their peak as two series). Span phases, when a
//! [`SpanTree`] is supplied, surface as per-phase duration sums and
//! counts — the decomposition §4 of the paper uses to attribute a
//! makespan to grid overhead versus execution.
//!
//! [OpenMetrics text format]:
//!     https://prometheus.io/docs/specs/om/open_metrics_spec/

use super::metrics::MetricsRegistry;
use super::span::SpanTree;
use std::fmt::Write as _;

/// Format a sample value: integers render bare, floats via the shortest
/// round-trip form, non-finite values per the exposition spec.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Escape a label value (`\`, `"`, newline).
fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Sanitise a free-form name into a metric-name-safe suffix.
fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

struct Renderer {
    out: String,
    /// Timestamp appended to every sample: the registry's latest
    /// virtual time. Exemplar-free, and — being virtual — byte-stable
    /// for a fixed workflow and seed, unlike a wall-clock stamp.
    ts: String,
}

impl Renderer {
    fn typed(&mut self, name: &str, kind: &str) {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {value} {}", self.ts);
        } else {
            let rendered = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(self.out, "{name}{{{rendered}}} {value} {}", self.ts);
        }
    }
}

/// Render the registry (and optionally a span tree) as an OpenMetrics
/// text snapshot, `# EOF`-terminated. Every sample carries the
/// registry's latest virtual time as its timestamp, and the snapshot
/// always includes a `moteur_build_info{version=…} 1` gauge.
pub fn render(registry: &MetricsRegistry, spans: Option<&SpanTree>) -> String {
    let mut r = Renderer {
        out: String::new(),
        ts: num(registry.latest()),
    };

    // Build identity first, so a scrape is attributable to a release
    // even when the run produced no events.
    r.typed("moteur_build_info", "gauge");
    r.sample(
        "moteur_build_info",
        &[("version", env!("CARGO_PKG_VERSION"))],
        "1",
    );

    // Event counters all share one family, labelled by event kind.
    if registry.counters().next().is_some() {
        r.typed("moteur_events_total", "counter");
        for (kind, value) in registry.counters() {
            r.sample("moteur_events_total", &[("kind", kind)], &value.to_string());
        }
    }

    // Data-manager families, derived from the cache lifecycle counters:
    // dedicated names so dashboards need no event-kind joins.
    let hits = registry.counter("cache_hit");
    let misses = registry.counter("cache_miss");
    if hits + misses > 0 {
        r.typed("moteur_cache_hits_total", "counter");
        r.sample("moteur_cache_hits_total", &[], &hits.to_string());
        r.typed("moteur_cache_misses_total", "counter");
        r.sample("moteur_cache_misses_total", &[], &misses.to_string());
        r.typed("moteur_cache_hit_ratio", "gauge");
        let ratio = hits as f64 / (hits + misses) as f64;
        r.sample("moteur_cache_hit_ratio", &[], &num(ratio));
    }

    // Gauges: group the known naming schemes into labelled families so
    // `inflight.crestLines` and `inflight.crestMatch` are one metric.
    // (label key, label value, current, peak) per family member.
    type FamilyMembers = Vec<(String, String, i64, i64)>;
    let mut families: Vec<(String, FamilyMembers)> = Vec::new();
    for (name, gauge) in registry.gauges() {
        let (family, label_key, label_value) = if name == "inflight_total" {
            ("moteur_inflight".to_string(), None, String::new())
        } else if let Some(svc) = name.strip_prefix("inflight.") {
            (
                "moteur_service_inflight".to_string(),
                Some("service"),
                svc.to_string(),
            )
        } else if let Some(ce) = name.strip_prefix("queue_depth.ce") {
            (
                "moteur_ce_queue_depth".to_string(),
                Some("ce"),
                ce.to_string(),
            )
        } else if let Some(ce) = name.strip_prefix("busy.ce") {
            ("moteur_ce_busy".to_string(), Some("ce"), ce.to_string())
        } else {
            (format!("moteur_{}", sanitise(name)), None, String::new())
        };
        let entry = match families.iter_mut().find(|(f, _)| *f == family) {
            Some(e) => e,
            None => {
                families.push((family, Vec::new()));
                families.last_mut().expect("just pushed")
            }
        };
        entry.1.push((
            label_key.unwrap_or("").to_string(),
            label_value,
            gauge.current,
            gauge.peak,
        ));
    }
    for (family, samples) in &families {
        r.typed(family, "gauge");
        for (key, value, current, _) in samples {
            let labels: Vec<(&str, &str)> = if key.is_empty() {
                vec![]
            } else {
                vec![(key.as_str(), value.as_str())]
            };
            r.sample(family, &labels, &current.to_string());
        }
        let peak_family = format!("{family}_peak");
        r.typed(&peak_family, "gauge");
        for (key, value, _, peak) in samples {
            let labels: Vec<(&str, &str)> = if key.is_empty() {
                vec![]
            } else {
                vec![(key.as_str(), value.as_str())]
            };
            r.sample(&peak_family, &labels, &peak.to_string());
        }
    }

    // Histograms: cumulative buckets with the mandatory +Inf bound.
    for (name, hist) in registry.histograms() {
        let family = if name == "grid_overhead_secs" {
            "moteur_grid_overhead_seconds".to_string()
        } else {
            format!("moteur_{}", sanitise(name))
        };
        r.typed(&family, "histogram");
        let bucket = format!("{family}_bucket");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds().iter().zip(hist.bucket_counts()) {
            cumulative += count;
            r.sample(&bucket, &[("le", &num(*bound))], &cumulative.to_string());
        }
        r.sample(&bucket, &[("le", "+Inf")], &hist.count.to_string());
        r.sample(&format!("{family}_sum"), &[], &num(hist.sum));
        r.sample(&format!("{family}_count"), &[], &hist.count.to_string());
    }

    // Span phases: per-phase duration totals and counts, plus the
    // derived overhead share.
    if let Some(tree) = spans {
        let durations = tree.phase_durations();
        if !durations.is_empty() {
            r.typed("moteur_phase_duration_seconds_sum", "gauge");
            for (phase, (_, sum)) in &durations {
                r.sample(
                    "moteur_phase_duration_seconds_sum",
                    &[("phase", phase)],
                    &num(*sum),
                );
            }
            r.typed("moteur_phase_count", "gauge");
            for (phase, (count, _)) in &durations {
                r.sample(
                    "moteur_phase_count",
                    &[("phase", phase)],
                    &count.to_string(),
                );
            }
            r.typed("moteur_grid_overhead_total_seconds", "gauge");
            r.sample(
                "moteur_grid_overhead_total_seconds",
                &[],
                &num(tree.overhead_secs()),
            );
        }
        if let Some(root) = tree.roots().next() {
            r.typed("moteur_makespan_seconds", "gauge");
            r.sample("moteur_makespan_seconds", &[], &num(root.duration_secs()));
        }
    }

    r.out.push_str("# EOF\n");
    r.out
}

/// Render a daemon metrics snapshot as OpenMetrics text: daemon-level
/// gauges (live / queued / finished instances, shared-store counters)
/// plus per-tenant label families, tenants in sorted order so the
/// snapshot is byte-stable. Timestamp-free — the daemon outlives any
/// single virtual-time run.
pub fn render_daemon(m: &crate::daemon::DaemonMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE moteur_daemon_instances gauge");
    for (state, n) in [
        ("running", m.running),
        ("queued", m.queued),
        ("succeeded", m.succeeded),
        ("failed", m.failed),
        ("cancelled", m.cancelled),
    ] {
        let _ = writeln!(out, "moteur_daemon_instances{{state=\"{state}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE moteur_daemon_store_entries gauge");
    let _ = writeln!(out, "moteur_daemon_store_entries {}", m.store.entries);
    let _ = writeln!(out, "# TYPE moteur_daemon_store_lookups counter");
    for (outcome, n) in [("hit", m.store.hits), ("miss", m.store.misses)] {
        let _ = writeln!(
            out,
            "moteur_daemon_store_lookups_total{{outcome=\"{outcome}\"}} {n}"
        );
    }
    let _ = writeln!(out, "# TYPE moteur_daemon_store_hit_ratio gauge");
    let _ = writeln!(
        out,
        "moteur_daemon_store_hit_ratio {}",
        num(m.store.hit_ratio())
    );
    for (family, kind) in [
        ("moteur_daemon_tenant_running", "gauge"),
        ("moteur_daemon_tenant_queued", "gauge"),
        ("moteur_daemon_tenant_inflight_jobs", "gauge"),
        ("moteur_daemon_tenant_store_hits", "counter"),
        ("moteur_daemon_tenant_store_misses", "counter"),
    ] {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for t in &m.tenants {
            let value = match family {
                "moteur_daemon_tenant_running" => t.running as u64,
                "moteur_daemon_tenant_queued" => t.queued as u64,
                "moteur_daemon_tenant_inflight_jobs" => t.inflight_jobs as u64,
                "moteur_daemon_tenant_store_hits" => t.store_hits,
                _ => t.store_misses,
            };
            let name = if kind == "counter" {
                format!("{family}_total")
            } else {
                family.to_string()
            };
            let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {value}", escape(&t.tenant));
        }
    }
    out.push_str("# EOF\n");
    out
}

/// [`render`] plus the `moteur_prof_*` self-profiler families. The prof
/// fragment is inserted before the `# EOF` terminator; a `None` or
/// inactive report leaves the snapshot byte-identical to [`render`].
pub fn render_with_prof(
    registry: &MetricsRegistry,
    spans: Option<&SpanTree>,
    prof: Option<&moteur_prof::ProfReport>,
) -> String {
    let mut out = render(registry, spans);
    let fragment = prof
        .map(super::prof::openmetrics_fragment)
        .unwrap_or_default();
    if !fragment.is_empty() {
        let eof = out.len() - "# EOF\n".len();
        out.insert_str(eof, &fragment);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::metrics::Histogram;
    use crate::obs::span::SpanSink;
    use crate::obs::{EventSink, TraceEvent};
    use moteur_gridsim::SimTime;

    #[test]
    fn empty_registry_renders_build_info_and_the_terminator() {
        let reg = MetricsRegistry::new();
        let expected = format!(
            "# TYPE moteur_build_info gauge\n\
             moteur_build_info{{version=\"{}\"}} 1 0\n\
             # EOF\n",
            env!("CARGO_PKG_VERSION"),
        );
        assert_eq!(render(&reg, None), expected);
    }

    #[test]
    fn counters_gauges_histograms_render_in_spec_shape() {
        let mut reg = MetricsRegistry::new();
        reg.inc("job_submitted", 3);
        reg.gauge_add("inflight_total", 0.0, 2);
        reg.gauge_add("inflight.crest\"Lines", 0.0, 1);
        reg.gauge_set("queue_depth.ce0", 1.0, 4);
        reg.observe(
            "grid_overhead_secs",
            || Histogram::with_bounds(vec![10.0, 20.0]),
            5.0,
        );
        reg.observe(
            "grid_overhead_secs",
            || Histogram::with_bounds(vec![10.0, 20.0]),
            50.0,
        );
        reg.touch(120.0);
        let text = render(&reg, None);
        assert!(text.contains("# TYPE moteur_events_total counter\n"));
        // Every sample carries the registry's latest virtual time.
        assert!(text.contains("moteur_events_total{kind=\"job_submitted\"} 3 120\n"));
        assert!(text.contains("moteur_inflight 2 120\n"));
        // Label values are escaped.
        assert!(text.contains("moteur_service_inflight{service=\"crest\\\"Lines\"} 1 120\n"));
        assert!(text.contains("moteur_ce_queue_depth{ce=\"0\"} 4 120\n"));
        assert!(text.contains("moteur_inflight_peak 2 120\n"));
        // Buckets are cumulative and +Inf covers everything.
        assert!(text.contains("moteur_grid_overhead_seconds_bucket{le=\"10\"} 1 120\n"));
        assert!(text.contains("moteur_grid_overhead_seconds_bucket{le=\"20\"} 1 120\n"));
        assert!(text.contains("moteur_grid_overhead_seconds_bucket{le=\"+Inf\"} 2 120\n"));
        assert!(text.contains("moteur_grid_overhead_seconds_sum 55 120\n"));
        assert!(text.contains("moteur_grid_overhead_seconds_count 2 120\n"));
        // Build identity is always present.
        assert!(text.contains("# TYPE moteur_build_info gauge\n"));
        assert!(text.contains(&format!(
            "moteur_build_info{{version=\"{}\"}} 1 120\n",
            env!("CARGO_PKG_VERSION"),
        )));
        assert!(text.ends_with("# EOF\n"));
        // Exactly one terminator.
        assert_eq!(text.matches("# EOF").count(), 1);
    }

    #[test]
    fn span_phases_surface_as_duration_families() {
        let (mut sink, buf) = SpanSink::new();
        let t = SimTime::from_secs_f64;
        sink.record(&TraceEvent::JobSubmitted {
            at: t(0.0),
            invocation: 0,
            processor: "p".into(),
            grid: true,
            batched: 1,
        });
        sink.record(&TraceEvent::GridSubmitted {
            at: t(4.0),
            invocation: 0,
            name: "j".into(),
        });
        sink.record(&TraceEvent::GridEnqueued {
            at: t(6.0),
            invocation: 0,
            ce: 0,
            attempt: 1,
        });
        sink.record(&TraceEvent::GridStarted {
            at: t(10.0),
            invocation: 0,
            ce: 0,
        });
        sink.record(&TraceEvent::GridFinished {
            at: t(30.0),
            invocation: 0,
            ce: 0,
            success: true,
        });
        sink.record(&TraceEvent::GridDelivered {
            at: t(31.0),
            invocation: 0,
            success: true,
        });
        sink.record(&TraceEvent::JobCompleted {
            at: t(31.0),
            invocation: 0,
            processor: "p".into(),
        });
        let tree = buf.snapshot();
        let text = render(&MetricsRegistry::new(), Some(&tree));
        assert!(
            text.contains("moteur_phase_duration_seconds_sum{phase=\"execution\"} 20 0\n"),
            "{text}"
        );
        assert!(text.contains("moteur_phase_count{phase=\"queuing\"} 1 0\n"));
        // Overhead = 4 + 2 + 4 + 1 = 11; makespan = 31.
        assert!(text.contains("moteur_grid_overhead_total_seconds 11 0\n"));
        assert!(text.contains("moteur_makespan_seconds 31 0\n"));
    }
}
