//! Least-squares fitting of makespan against campaign size — the
//! paper's empirical instrument (§4).
//!
//! §4 characterises each enactment configuration by regressing the
//! observed makespan on the number of input data sets: the **y-
//! intercept** is the fixed cost of running on the grid at all
//! (submission, brokering, queuing of the first wave), the **slope** is
//! the marginal cost per extra data set, and the **intercept/slope
//! ratio** says how many data sets a campaign needs before the variable
//! part dominates the fixed part. [`fit_sweep`] produces exactly those
//! numbers from a set of `(n_data, makespan)` points.

use super::json::JsonObject;

/// One observation of a sweep: campaign size and measured makespan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    pub n_data: usize,
    pub makespan_secs: f64,
}

/// Ordinary-least-squares fit of one configuration's sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanFit {
    /// Fixed overhead: predicted makespan of an empty campaign.
    pub intercept: f64,
    /// Marginal seconds per additional data set.
    pub slope: f64,
    /// Coefficient of determination. A constant series (`ss_tot = 0`,
    /// e.g. DP on an unsaturated grid) fits perfectly by convention:
    /// `1.0` when residuals are zero too, else `0.0`.
    pub r_squared: f64,
    /// The paper's break-even indicator: `intercept / slope`, the
    /// campaign size at which variable cost catches up with fixed cost.
    /// `None` when the slope is (numerically) zero.
    pub intercept_slope_ratio: Option<f64>,
    /// Number of points fitted.
    pub n_points: usize,
}

impl MakespanFit {
    /// Predicted makespan at campaign size `n`.
    pub fn predict(&self, n: usize) -> f64 {
        self.intercept + self.slope * n as f64
    }

    /// Serialise for the bench summary schema.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new()
            .num("intercept", self.intercept)
            .num("slope", self.slope)
            .num("r_squared", self.r_squared);
        match self.intercept_slope_ratio {
            Some(r) => o = o.num("intercept_slope_ratio", r),
            None => o = o.raw("intercept_slope_ratio", "null"),
        }
        o.uint("n_points", self.n_points as u64).finish()
    }
}

/// Fit `makespan = intercept + slope · n_data` over the sweep.
///
/// Returns `None` for fewer than two points or a degenerate sweep (all
/// points at the same `n_data`) — a line is not identifiable there.
pub fn fit_sweep(points: &[SweepPoint]) -> Option<MakespanFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.n_data as f64).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.makespan_secs).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for p in points {
        let dx = p.n_data as f64 - mean_x;
        sxx += dx * dx;
        sxy += dx * (p.makespan_secs - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for p in points {
        let predicted = intercept + slope * p.n_data as f64;
        ss_res += (p.makespan_secs - predicted).powi(2);
        ss_tot += (p.makespan_secs - mean_y).powi(2);
    }
    let r_squared = if ss_tot == 0.0 {
        // Constant makespan: the flat line is an exact fit unless the
        // residuals say otherwise (they cannot, but keep the guard).
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    let intercept_slope_ratio = if slope.abs() < 1e-12 {
        None
    } else {
        Some(intercept / slope)
    };
    Some(MakespanFit {
        intercept,
        slope,
        r_squared,
        intercept_slope_ratio,
        n_points: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(n: usize, m: f64) -> SweepPoint {
        SweepPoint {
            n_data: n,
            makespan_secs: m,
        }
    }

    #[test]
    fn exact_line_recovers_intercept_and_slope() {
        // The paper's Table 2 NOP fit: 20784 + 884·n.
        let points: Vec<SweepPoint> = [12usize, 66, 126]
            .iter()
            .map(|&n| pt(n, 20784.0 + 884.0 * n as f64))
            .collect();
        let fit = fit_sweep(&points).unwrap();
        assert!((fit.intercept - 20784.0).abs() < 1e-6);
        assert!((fit.slope - 884.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        let ratio = fit.intercept_slope_ratio.unwrap();
        assert!((ratio - 20784.0 / 884.0).abs() < 1e-6);
        assert!((fit.predict(100) - (20784.0 + 88_400.0)).abs() < 1e-6);
    }

    #[test]
    fn constant_series_is_flat_with_perfect_r2() {
        // DP on an unsaturated grid: makespan independent of n_data.
        let points = [pt(1, 500.0), pt(8, 500.0), pt(16, 500.0)];
        let fit = fit_sweep(&points).unwrap();
        assert!(fit.slope.abs() < 1e-12);
        assert!((fit.intercept - 500.0).abs() < 1e-9);
        assert_eq!(fit.r_squared, 1.0);
        assert_eq!(fit.intercept_slope_ratio, None);
    }

    #[test]
    fn noisy_line_has_r2_below_one() {
        let points = [pt(1, 10.0), pt(2, 21.0), pt(3, 29.0), pt(4, 42.0)];
        let fit = fit_sweep(&points).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.98, "r2 {}", fit.r_squared);
        assert!(fit.slope > 9.0 && fit.slope < 12.0);
    }

    #[test]
    fn degenerate_sweeps_are_rejected() {
        assert_eq!(fit_sweep(&[]), None);
        assert_eq!(fit_sweep(&[pt(5, 1.0)]), None);
        assert_eq!(fit_sweep(&[pt(5, 1.0), pt(5, 2.0)]), None, "vertical");
    }

    #[test]
    fn json_shape_is_stable() {
        let fit = fit_sweep(&[pt(1, 2.0), pt(2, 4.0)]).unwrap();
        let json = fit.to_json();
        assert!(json.contains("\"intercept\":"));
        assert!(json.contains("\"slope\":2"));
        assert!(json.contains("\"r_squared\":1"));
        assert!(json.contains("\"n_points\":2"));
        let flat = fit_sweep(&[pt(1, 3.0), pt(2, 3.0)]).unwrap();
        assert!(flat.to_json().contains("\"intercept_slope_ratio\":null"));
    }
}
