//! Critical-path analysis over a finished run's invocation records:
//! which chain of invocations determined the makespan, and which
//! services dominate it.
//!
//! The enactor fires an invocation the moment its inputs exist, so the
//! producer that *triggered* an invocation is the latest-finishing
//! record that completed no later than the consumer was submitted. A
//! backward walk from the last-finishing invocation along that relation
//! reconstructs the critical chain without needing the dataflow graph.
//!
//! Alongside the chain, [`analyze`] fits the paper's §5.2 completion
//! model per service — completion time of the i-th data item against i,
//! whose y-intercept estimates latency and slope the pipelining period
//! — so the report carries the same metrics as the makespan model.

use super::json::{array, JsonObject};
use crate::trace::{InvocationRecord, WorkflowResult};
use std::collections::HashMap;

/// One link of the critical chain.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    pub processor: String,
    pub index: String,
    pub submitted_secs: f64,
    pub started_secs: f64,
    pub finished_secs: f64,
    pub retries: u32,
}

impl PathStep {
    pub fn wait_secs(&self) -> f64 {
        self.started_secs - self.submitted_secs
    }

    pub fn exec_secs(&self) -> f64 {
        self.finished_secs - self.started_secs
    }
}

/// Time one service contributes to the critical chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceShare {
    pub processor: String,
    pub steps: usize,
    pub wait_secs: f64,
    pub exec_secs: f64,
}

impl ServiceShare {
    pub fn total_secs(&self) -> f64 {
        self.wait_secs + self.exec_secs
    }
}

/// Least-squares line through a service's completion times (§5.2):
/// `finish(i) ≈ intercept + slope · i` over its invocations in data
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineFit {
    pub processor: String,
    pub invocations: usize,
    pub intercept_secs: f64,
    pub slope_secs: f64,
    pub r_squared: f64,
}

/// The full analysis of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    pub makespan_secs: f64,
    /// Critical chain in execution order (first fired → last finished).
    pub steps: Vec<PathStep>,
    /// Per-service contribution, largest first.
    pub shares: Vec<ServiceShare>,
    /// Per-service completion-time fits (services with ≥ 2 invocations).
    pub fits: Vec<PipelineFit>,
}

impl CriticalPath {
    /// Fraction of the makespan covered by the chain (ideally ≈ 1; a
    /// low value means the walk lost the chain, e.g. on an empty run).
    pub fn coverage(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            return 0.0;
        }
        self.shares
            .iter()
            .map(ServiceShare::total_secs)
            .sum::<f64>()
            / self.makespan_secs
    }
}

fn step_of(r: &InvocationRecord) -> PathStep {
    PathStep {
        processor: r.processor.clone(),
        index: r.index.to_string(),
        submitted_secs: r.submitted.as_secs_f64(),
        started_secs: r.started.as_secs_f64(),
        finished_secs: r.finished.as_secs_f64(),
        retries: r.retries,
    }
}

/// Analyze a finished run.
pub fn analyze(result: &WorkflowResult) -> CriticalPath {
    let records = &result.invocations;
    let mut steps: Vec<PathStep> = Vec::new();
    if let Some(last) = records.iter().max_by(|a, b| {
        a.finished
            .partial_cmp(&b.finished)
            .unwrap_or(std::cmp::Ordering::Equal)
    }) {
        let mut cur = last;
        steps.push(step_of(cur));
        loop {
            let eps = 1e-9;
            let producer = records
                .iter()
                .filter(|r| !std::ptr::eq(*r, cur))
                .filter(|r| r.finished.as_secs_f64() <= cur.submitted.as_secs_f64() + eps)
                .max_by(|a, b| {
                    a.finished
                        .partial_cmp(&b.finished)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            match producer {
                // Only follow the producer that actually gated this
                // submission: its completion coincides with it.
                Some(p)
                    if (p.finished.as_secs_f64() - cur.submitted.as_secs_f64()).abs() < 1e-6 =>
                {
                    steps.push(step_of(p));
                    cur = p;
                }
                _ => break,
            }
        }
        steps.reverse();
    }

    let mut shares: HashMap<String, ServiceShare> = HashMap::new();
    for s in &steps {
        let e = shares
            .entry(s.processor.clone())
            .or_insert_with(|| ServiceShare {
                processor: s.processor.clone(),
                steps: 0,
                wait_secs: 0.0,
                exec_secs: 0.0,
            });
        e.steps += 1;
        e.wait_secs += s.wait_secs();
        e.exec_secs += s.exec_secs();
    }
    let mut shares: Vec<ServiceShare> = shares.into_values().collect();
    shares.sort_by(|a, b| {
        b.total_secs()
            .partial_cmp(&a.total_secs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut seen: Vec<&str> = Vec::new();
    for r in records {
        if !seen.contains(&r.processor.as_str()) {
            seen.push(&r.processor);
        }
    }
    let fits = seen
        .iter()
        .filter_map(|p| {
            let of = result.invocations_of(p);
            fit(p, &of)
        })
        .collect();

    CriticalPath {
        makespan_secs: result.makespan.as_secs_f64(),
        steps,
        shares,
        fits,
    }
}

/// Least squares of finish time against data rank.
fn fit(processor: &str, records: &[&InvocationRecord]) -> Option<PipelineFit> {
    if records.len() < 2 {
        return None;
    }
    let n = records.len() as f64;
    let ys: Vec<f64> = records.iter().map(|r| r.finished.as_secs_f64()).collect();
    let mean_x = (n - 1.0) / 2.0;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (i, y) in ys.iter().enumerate() {
        let dx = i as f64 - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    Some(PipelineFit {
        processor: processor.to_string(),
        invocations: records.len(),
        intercept_secs: intercept,
        slope_secs: slope,
        r_squared,
    })
}

/// Human-readable report of a [`CriticalPath`].
pub fn render(cp: &CriticalPath) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "critical path ({:.1} s makespan)", cp.makespan_secs);
    let _ = writeln!(out, "  per-service contribution:");
    for s in &cp.shares {
        let pct = if cp.makespan_secs > 0.0 {
            100.0 * s.total_secs() / cp.makespan_secs
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "    {:<16} {:>5.1}%  exec {:>8.1} s  wait {:>8.1} s  ({} steps)",
            s.processor, pct, s.exec_secs, s.wait_secs, s.steps
        );
    }
    if !cp.fits.is_empty() {
        let _ = writeln!(
            out,
            "  completion-time fits (finish ≈ intercept + slope·i):"
        );
        for f in &cp.fits {
            let _ = writeln!(
                out,
                "    {:<16} intercept {:>8.1} s  slope {:>7.2} s/item  r² {:.3}  (n={})",
                f.processor, f.intercept_secs, f.slope_secs, f.r_squared, f.invocations
            );
        }
    }
    let _ = writeln!(out, "  chain ({} steps):", cp.steps.len());
    for s in &cp.steps {
        let _ = writeln!(
            out,
            "    {:>9.1} s  {:<16} {:<10} wait {:>7.1} s  exec {:>7.1} s",
            s.submitted_secs,
            s.processor,
            s.index,
            s.wait_secs(),
            s.exec_secs()
        );
    }
    out
}

/// JSON rendering of a [`CriticalPath`] (for `--metrics`-style export).
pub fn to_json(cp: &CriticalPath) -> String {
    let steps = array(cp.steps.iter().map(|s| {
        JsonObject::new()
            .str("processor", &s.processor)
            .str("index", &s.index)
            .num("submitted", s.submitted_secs)
            .num("started", s.started_secs)
            .num("finished", s.finished_secs)
            .finish()
    }));
    let shares = array(cp.shares.iter().map(|s| {
        JsonObject::new()
            .str("processor", &s.processor)
            .uint("steps", s.steps as u64)
            .num("wait_secs", s.wait_secs)
            .num("exec_secs", s.exec_secs)
            .finish()
    }));
    let fits = array(cp.fits.iter().map(|f| {
        JsonObject::new()
            .str("processor", &f.processor)
            .uint("invocations", f.invocations as u64)
            .num("intercept_secs", f.intercept_secs)
            .num("slope_secs", f.slope_secs)
            .num("r_squared", f.r_squared)
            .finish()
    }));
    JsonObject::new()
        .num("makespan_secs", cp.makespan_secs)
        .raw("steps", &steps)
        .raw("shares", &shares)
        .raw("fits", &fits)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::DataIndex;
    use moteur_gridsim::{SimDuration, SimTime};
    use std::collections::HashMap;

    fn rec(proc: &str, i: u32, sub: f64, start: f64, end: f64) -> InvocationRecord {
        InvocationRecord {
            processor: proc.into(),
            index: DataIndex::single(i),
            submitted: SimTime::from_secs_f64(sub),
            started: SimTime::from_secs_f64(start),
            finished: SimTime::from_secs_f64(end),
            retries: 0,
        }
    }

    fn result(makespan: f64, invocations: Vec<InvocationRecord>) -> WorkflowResult {
        WorkflowResult {
            sink_outputs: HashMap::new(),
            sink_counts: HashMap::new(),
            makespan: SimDuration::from_secs_f64(makespan),
            invocations,
            jobs_submitted: 0,
            bytes_transferred: 0,
            quarantined: vec![],
        }
    }

    #[test]
    fn chain_follows_producers_backwards() {
        // A(0→10) feeds B(10→25) feeds C(25→38); D is off-path.
        let r = result(
            38.0,
            vec![
                rec("A", 0, 0.0, 2.0, 10.0),
                rec("D", 0, 0.0, 1.0, 5.0),
                rec("B", 0, 10.0, 12.0, 25.0),
                rec("C", 0, 25.0, 30.0, 38.0),
            ],
        );
        let cp = analyze(&r);
        let chain: Vec<&str> = cp.steps.iter().map(|s| s.processor.as_str()).collect();
        assert_eq!(chain, vec!["A", "B", "C"]);
        assert!(
            (cp.coverage() - 1.0).abs() < 1e-9,
            "coverage {}",
            cp.coverage()
        );
        assert_eq!(cp.shares[0].processor, "B", "B is the longest step");
    }

    #[test]
    fn fit_recovers_linear_pipeline() {
        // finish(i) = 100 + 30 i — a perfect SP pipeline.
        let recs: Vec<InvocationRecord> = (0..5)
            .map(|i| rec("P", i, 0.0, 0.0, 100.0 + 30.0 * i as f64))
            .collect();
        let r = result(220.0, recs);
        let cp = analyze(&r);
        let f = cp.fits.iter().find(|f| f.processor == "P").unwrap();
        assert!((f.intercept_secs - 100.0).abs() < 1e-6, "{f:?}");
        assert!((f.slope_secs - 30.0).abs() < 1e-6, "{f:?}");
        assert!((f.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_benign() {
        let cp = analyze(&result(0.0, vec![]));
        assert!(cp.steps.is_empty());
        assert_eq!(cp.coverage(), 0.0);
        assert!(render(&cp).contains("critical path"));
        assert!(to_json(&cp).starts_with('{'));
    }

    #[test]
    fn render_mentions_every_share() {
        let r = result(
            10.0,
            vec![rec("A", 0, 0.0, 1.0, 6.0), rec("B", 0, 6.0, 7.0, 10.0)],
        );
        let text = render(&analyze(&r));
        assert!(text.contains('A') && text.contains('B'), "{text}");
        assert!(
            text.contains("intercept") || !text.contains("fits"),
            "{text}"
        );
    }
}
